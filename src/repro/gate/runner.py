"""Gate execution: dedupe cells across checks, run, judge, report.

:func:`run_gate` is the single entry point behind the CLI and the
tests.  It collects every cell the enabled checks declare, dedupes
them by content hash, executes the union through
:func:`repro.exec.run_sweep` (process pool + on-disk cache — the
cache is *on* by default for the gate, unlike the benchmarks, because
a warm gate must be near-free), then hands each check a
:class:`GateContext` to reduce its results to banded measurements.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigError
from ..exec.cache import ResultCache
from ..exec.pool import ProgressEvent, run_sweep
from ..exec.spec import CellResult, CellSpec
from .bands import EvaluatedMeasurement, Measurement, evaluate_measurement
from .baselines import load_baselines
from .checks import CHECKS, GateCheck, GateScale, scale_for_mode
from .report import CheckReport, GateReport, git_sha

__all__ = ["GateContext", "run_gate", "select_checks", "baseline_metrics"]


class GateContext:
    """What one check sees while evaluating: results, cache, workload."""

    def __init__(
        self,
        scale: GateScale,
        results: Mapping[str, CellResult],
        cache: ResultCache | None = None,
        workers: int | None = 1,
    ) -> None:
        self.scale = scale
        self._results = dict(results)
        self.cache = cache
        self.workers = workers
        self._workload: Any = None
        self.payload_hits = 0

    def result(self, spec: CellSpec) -> CellResult:
        """The executed result of a declared cell (by content hash)."""
        try:
            return self._results[spec.content_hash]
        except KeyError:
            raise ConfigError(
                f"cell {spec.policy_name} @ {spec.qps:g} qps was not "
                "declared by this check's cells()"
            ) from None

    def workload(self) -> Any:
        """The built canonical workload (lazy — only paid on cache miss).

        Routed through the exec layer's per-process workload memo, so
        a cold gate run that already expanded cells inline reuses the
        copy those cells built instead of building a second one.
        """
        if self._workload is None:
            from ..exec.pool import memoised_workload
            from ..experiments.scenarios import default_workload_spec

            self._workload = memoised_workload(default_workload_spec())
        return self._workload

    def memoise_payload(
        self,
        key: str,
        compute: Callable[[], Any],
        expect: type | None = None,
    ) -> Any:
        """Payload-cache a non-cell computation (e.g. a cluster run).

        ``expect`` guards against stale entries written by an older
        gate version: a payload of the wrong type is recomputed.
        """
        if self.cache is not None:
            payload = self.cache.get_payload(key)
            if payload is not None and (
                expect is None or isinstance(payload, expect)
            ):
                self.payload_hits += 1
                return payload
        payload = compute()
        if self.cache is not None:
            self.cache.put_payload(key, payload)
        return payload


def select_checks(only: Sequence[str] | None = None) -> list[GateCheck]:
    """The enabled checks, validating ``--only`` names."""
    if only is None:
        return list(CHECKS.values())
    unknown = sorted(set(only) - set(CHECKS))
    if unknown:
        raise ConfigError(
            f"unknown gate check(s) {unknown}; available: {sorted(CHECKS)}"
        )
    return [CHECKS[name] for name in CHECKS if name in set(only)]


def run_gate(
    mode: str = "fast",
    only: Sequence[str] | None = None,
    workers: int | None = None,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    baselines: Mapping[str, float] | None = None,
    baselines_path: str | None = None,
    perturb: Mapping[str, float] | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
) -> GateReport:
    """Execute the gate and return its :class:`GateReport`.

    Parameters
    ----------
    mode:
        ``"fast"`` (CI sizing) or ``"full"`` (paper-scale samples).
    only:
        Restrict to a subset of registered check names.
    workers:
        Process-pool width for cell execution (None = the
        ``REPRO_BENCH_WORKERS`` / cpu-count default of the exec layer).
    cache, use_cache:
        An explicit :class:`ResultCache`, or — when ``use_cache`` is
        true and no cache is given — the default on-disk cache.  Pass
        ``use_cache=False`` for a guaranteed-cold run.
    baselines, baselines_path:
        Explicit baseline metrics, or a path to the baseline JSON
        (default ``benchmarks/baselines/gate_baseline.json``).  Missing
        baselines degrade relative bands to their absolute parts.
    perturb:
        ``{metric_id: factor}`` multiplicative perturbations applied to
        measured values before judgement — the self-test hook proving
        the gate actually fails when a number moves.
    """
    started = time.perf_counter()
    scale = scale_for_mode(mode)
    checks = select_checks(only)
    if cache is None and use_cache:
        cache = ResultCache()
    if baselines is None:
        baselines = load_baselines(baselines_path, mode=mode)

    # Union of every declared cell, first-declaration order, deduped
    # by content hash so shared cells simulate (and cache) once.
    cells: list[CellSpec] = []
    seen: set[str] = set()
    for check in checks:
        for spec in check.cells(scale):
            if spec.content_hash not in seen:
                seen.add(spec.content_hash)
                cells.append(spec)

    cells_from_cache = 0
    if cells:
        events: list[ProgressEvent] = []

        def record(event: ProgressEvent) -> None:
            events.append(event)
            if progress is not None:
                progress(event)

        results = run_sweep(
            cells, workers=workers, cache=cache, progress=record
        )
        cells_from_cache = sum(1 for e in events if e.from_cache)
        by_hash = {spec.content_hash: r for spec, r in zip(cells, results)}
    else:
        by_hash = {}

    ctx = GateContext(scale, by_hash, cache=cache, workers=workers)
    check_reports: list[CheckReport] = []
    for check in checks:
        check_started = time.perf_counter()
        try:
            measurements: list[Measurement] = check.evaluate(ctx)
        except Exception as exc:  # a broken check must not mask others
            check_reports.append(
                CheckReport(
                    name=check.name,
                    description=check.description,
                    paper_ref=check.paper_ref,
                    status="error",
                    wall_time_s=time.perf_counter() - check_started,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        evaluated: list[EvaluatedMeasurement] = [
            evaluate_measurement(m, baselines=baselines, perturb=perturb)
            for m in measurements
        ]
        status = "pass" if all(m.passed for m in evaluated) else "fail"
        check_reports.append(
            CheckReport(
                name=check.name,
                description=check.description,
                paper_ref=check.paper_ref,
                status=status,
                wall_time_s=time.perf_counter() - check_started,
                measurements=evaluated,
            )
        )

    return GateReport(
        mode=mode,
        checks=check_reports,
        total_wall_time_s=time.perf_counter() - started,
        cells_total=len(cells),
        cells_executed=len(cells) - cells_from_cache,
        cells_from_cache=cells_from_cache,
        payload_hits=ctx.payload_hits,
        sha=git_sha(),
        baselines_used=bool(baselines),
    )


def baseline_metrics(report: GateReport) -> dict[str, float]:
    """Measured values of every ``baseline_key`` metric in a report.

    This is what ``--update-baselines`` persists: the check
    declarations opt metrics in, the report carries their fresh values.
    """
    return {
        m.metric: m.value
        for check_report in report.checks
        for m in check_report.measurements
        if m.baseline_key
    }
