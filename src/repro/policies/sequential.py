"""Sequential baseline: every request runs on a single thread."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import ParallelismPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = ["SequentialPolicy"]


class SequentialPolicy(ParallelismPolicy):
    """The paper's baseline: no intra-request parallelism at all."""

    name = "Sequential"

    def initial_degree(self, request: "Request", server: "Server") -> int:
        return 1
