"""T2 — Table 2: parallelism-degree distribution at 150 and 600 QPS.

Expected shape: TPC runs nearly all short queries sequentially and
gives long queries high degrees (98 % at 6T when idle, still mostly
high degrees at 600 QPS); AP gives short and long queries the same
degree and collapses toward 1-2T at 600 QPS; Pred is load-insensitive
(fixed 3T for predicted-long at every load, ~18.6 % of long queries
mispredicted to 1T).
"""

from conftest import BENCH_SEED, bench_queries, emit
from repro.experiments import run_search_experiment
from repro.experiments.report import format_table

LOADS = (150.0, 600.0)
POLICIES = ("TPC", "AP", "Pred")


def _distribution_rows(workload, search_table):
    rows = []
    results = {}
    for qps in LOADS:
        for policy in POLICIES:
            result = run_search_experiment(
                workload, policy, qps, bench_queries(), BENCH_SEED,
                target_table=search_table,
            )
            results[(qps, policy)] = result
            dist = result.degree_distribution()
            for group in ("short", "long"):
                rows.append(
                    [int(qps), policy, group]
                    + [round(x, 1) for x in dist[group]]
                )
    return rows, results


def test_table2_degree_distribution(benchmark, workload, search_table):
    rows, results = benchmark.pedantic(
        lambda: _distribution_rows(workload, search_table),
        rounds=1,
        iterations=1,
    )
    emit(
        "table2_degrees",
        format_table(
            ["QPS", "policy", "group", "1T", "2T", "3T", "4T", "5T", "6T"],
            rows,
            title="Table 2 - parallelism degree distribution (%)",
        ),
    )

    def dist(qps, policy):
        return results[(qps, policy)].degree_distribution()

    # TPC: short queries almost always sequential at both loads.
    assert dist(150, "TPC")["short"][0] > 85.0
    assert dist(600, "TPC")["short"][0] > 85.0
    # TPC: long queries predominantly at high degrees when idle.
    assert sum(dist(150, "TPC")["long"][3:]) > 60.0
    # AP: same degree for short and long (no per-query information).
    ap150 = results[(150, "AP")].degree_distribution(use_max_degree=False)
    for s, l in zip(ap150["short"], ap150["long"]):
        assert abs(s - l) < 12.0
    # AP: degrees collapse at 600 QPS versus 150 QPS.
    ap600 = results[(600, "AP")].degree_distribution(use_max_degree=False)
    mean150 = sum((i + 1) * p for i, p in enumerate(ap150["long"])) / 100
    mean600 = sum((i + 1) * p for i, p in enumerate(ap600["long"])) / 100
    assert mean600 < mean150
    # Pred: load-insensitive and bimodal (1T for mispredicted, 3T else).
    pred150 = dist(150, "Pred")
    pred600 = dist(600, "Pred")
    assert pred150["long"][2] > 50.0  # most long queries at 3T
    assert pred150["long"][0] > 2.0  # mispredicted tail exists
    assert abs(pred150["long"][2] - pred600["long"][2]) < 8.0
