"""``python -m repro.obs`` — run one observed experiment cell.

Runs a single-server cell (TPC over a tiny search workload by
default) with the observability layer attached, prints the metric
snapshot, the tail-attribution report and the slowest request
timelines, and writes a Chrome trace-event JSON you can load at
``chrome://tracing`` or https://ui.perfetto.dev.

Exit status: 0 on success, 2 on usage errors or a failed run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..config import PredictorConfig, SearchWorkloadConfig
from ..core.target_table import TargetTable
from ..errors import ReproError
from .attribution import render_tail_report
from .export import render_timelines, write_chrome_trace
from .observe import observe_cell
from .spans import slowest_spans

__all__ = ["main"]

#: Tiny corpus sized for an interactive demo (about a second to build).
_DEMO_SEARCH = SearchWorkloadConfig(
    num_documents=3_000,
    vocabulary_size=1_500,
    mean_doc_length=120,
    hard_term_pool=150,
    easy_skip_top=15,
)

#: Load-dependent target table for the TPC-family policies.
_DEMO_TABLE = TargetTable([(0, 40), (8, 65), (16, 90)])

_TABLE_POLICIES = ("TP", "TPC")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=(
            "Observe one experiment cell: request spans, metrics, "
            "policy-decision attribution, and a Chrome trace export."
        ),
    )
    parser.add_argument(
        "--policy",
        default="TPC",
        metavar="NAME",
        help="policy to observe (default TPC)",
    )
    parser.add_argument(
        "--qps", type=float, default=300.0, help="offered load (default 300)"
    )
    parser.add_argument(
        "--n-requests",
        type=int,
        default=None,
        metavar="N",
        help="requests to simulate (default 4000; 800 with --fast)",
    )
    parser.add_argument(
        "--seed", type=int, default=93, help="experiment seed (default 93)"
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI sizing: fewer requests",
    )
    parser.add_argument(
        "--slowest",
        type=int,
        default=3,
        metavar="N",
        help="how many slowest request timelines to render (default 3)",
    )
    parser.add_argument(
        "--output",
        default="trace_obs.json",
        metavar="PATH",
        help="Chrome trace-event JSON path (default trace_obs.json)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="only write the trace file; no report on stdout",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    n_requests = (
        args.n_requests
        if args.n_requests is not None
        else (800 if args.fast else 4_000)
    )

    from ..exec.spec import CellSpec, WorkloadSpec

    wspec = WorkloadSpec.search(
        seed=11,
        config=_DEMO_SEARCH,
        predictor_config=PredictorConfig(num_trees=60, max_depth=4),
        pool_size=1_200,
    )
    table = _DEMO_TABLE if args.policy in _TABLE_POLICIES else None
    spec = CellSpec.for_experiment(
        wspec,
        args.policy,
        args.qps,
        n_requests=n_requests,
        seed=args.seed,
        target_table=table,
    )

    try:
        cell, obs = observe_cell(spec)
    except ReproError as exc:
        print(f"obs error: {exc}", file=sys.stderr)
        return 2

    doc = obs.chrome_trace(
        process_name=f"{cell.policy_name} @ {args.qps:g} qps"
    )
    with open(args.output, "w", encoding="utf-8") as fp:
        write_chrome_trace(fp, doc)

    if not args.quiet:
        print(
            f"{cell.policy_name} @ {args.qps:g} qps, "
            f"{n_requests} requests (seed {args.seed}): "
            f"p99={cell.summary.p99_ms:.1f} ms "
            f"p99.9={cell.summary.p999_ms:.1f} ms"
        )
        print()
        print("metrics:")
        for name, value in sorted(obs.registry.snapshot().items()):
            print(f"  {name:<28} {value:12.3f}")
        print()
        print(render_tail_report(obs.tail_report()))
        spans = slowest_spans(obs.spans(), args.slowest)
        if spans:
            print()
            print(f"slowest {len(spans)} requests:")
            print()
            print(render_timelines(spans))
        print()
    print(f"chrome trace written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
