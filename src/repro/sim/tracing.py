"""Per-request timeline tracing.

Optional observability layer: attach a :class:`RequestTracer` to a
server and it records a timestamped event timeline for every request —
arrival, dispatch (with chosen degree), every degree change, and
completion or cancellation (with its cause).  Useful for debugging
policies, for the examples, for asserting fine-grained scheduling
behaviour in tests without poking at server internals, and as the
event substrate of the :mod:`repro.obs` span/metrics layer.

Tracing is strictly opt-in: an unattached server runs the exact same
code it always did (:func:`attach_tracer` wraps the lifecycle methods
of one server instance and plugs into its ``dispatch_callback`` hook;
nothing global changes), so the disabled path stays bit-identical.
"""

from __future__ import annotations

import enum
import warnings
from typing import TYPE_CHECKING, Callable, NamedTuple

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .request import Request
    from .server import Server

__all__ = ["TraceEventKind", "TraceEvent", "RequestTracer", "attach_tracer"]


class TraceEventKind(enum.Enum):
    """Kinds of timeline events."""

    ARRIVAL = "arrival"
    DISPATCH = "dispatch"
    DEGREE_CHANGE = "degree_change"
    COMPLETION = "completion"
    #: Withdrawn mid-flight (tied-request cancellation, replica kill):
    #: terminal like COMPLETION, but may follow ARRIVAL directly when a
    #: request is cancelled while still queued.
    CANCELLED = "cancelled"


class TraceEvent(NamedTuple):
    """One timeline entry of one request.

    ``cause`` is only populated on CANCELLED events, naming why the
    request was withdrawn (e.g. ``"hedge-superseded"``, ``"blackout"``);
    None means the caller gave no reason.

    A NamedTuple rather than a dataclass: events are built once per
    traced lifecycle transition, so construction cost is the floor of
    the enabled-path tracing overhead.
    """

    time_ms: float
    rid: int
    kind: TraceEventKind
    degree: int
    cause: str | None = None

    def __str__(self) -> str:
        suffix = f", cause={self.cause}" if self.cause is not None else ""
        return (
            f"[{self.time_ms:9.3f} ms] request {self.rid}: "
            f"{self.kind.value} (degree={self.degree}{suffix})"
        )


class RequestTracer:
    """Collects :class:`TraceEvent` timelines from one server.

    Recording is a bare list append — the hot path pays nothing for
    indexing.  A per-request index is built lazily (and cached) on the
    first timeline query after new events arrive, so :meth:`timeline`
    is O(events of that request) amortised instead of a full scan per
    call — span assembly over large traces stays linear overall.

    When ``capacity`` is set, events beyond it are dropped; the drop
    count is exposed as :attr:`dropped` and the first drop emits a
    one-line :class:`RuntimeWarning` so truncated traces never pass
    silently.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("capacity must be >= 1 or None")
        self.capacity = capacity
        #: Hot-path storage.  The attach_tracer wrappers append plain
        #: 5-tuples here (field order of :class:`TraceEvent`);
        #: :meth:`_materialize` upgrades them to TraceEvent lazily, so
        #: the simulation never pays NamedTuple construction.
        self._events: list[TraceEvent] = []
        self._timelines: dict[int, list[TraceEvent]] = {}
        #: Number of events the lazy index has consumed (index is stale
        #: whenever the event list is longer than this).
        self._indexed = 0
        #: Number of events known to be materialized TraceEvents.
        self._materialized = 0
        self._dropped = 0

    def __len__(self) -> int:
        """Number of recorded (kept) events."""
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded because :attr:`capacity` was reached."""
        return self._dropped

    def _note_drop(self) -> None:
        self._dropped += 1
        if self._dropped == 1:
            warnings.warn(
                f"RequestTracer capacity ({self.capacity}) reached; "
                "dropping further trace events (see tracer.dropped)",
                RuntimeWarning,
                stacklevel=4,
            )

    def record(
        self,
        time_ms: float,
        rid: int,
        kind: TraceEventKind,
        degree: int,
        cause: str | None = None,
    ) -> None:
        """Append one event (drops, counted, once capacity is reached)."""
        self.record_event(TraceEvent(time_ms, rid, kind, degree, cause))

    def record_event(self, event: TraceEvent) -> None:
        """Append a pre-built event (the hook wrappers' entry point)."""
        if self.capacity is not None and len(self._events) >= self.capacity:
            self._note_drop()
            return
        self._events.append(event)

    def _materialize(self) -> list[TraceEvent]:
        """Upgrade any raw event tuples to TraceEvent, in place."""
        events = self._events
        if self._materialized != len(events):
            make = TraceEvent._make
            for i in range(self._materialized, len(events)):
                event = events[i]
                if type(event) is not TraceEvent:
                    events[i] = make(event)
            self._materialized = len(events)
        return events

    def _index(self) -> dict[int, list[TraceEvent]]:
        """The per-rid index, (re)built lazily after new events."""
        self._materialize()
        if self._indexed != len(self._events):
            start = self._indexed
            timelines = self._timelines
            for event in self._events[start:]:
                timeline = timelines.get(event.rid)
                if timeline is None:
                    timelines[event.rid] = [event]
                else:
                    timeline.append(event)
            self._indexed = len(self._events)
        return self._timelines

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """All recorded events in simulation order."""
        return tuple(self._materialize())

    def timeline(self, rid: int) -> list[TraceEvent]:
        """Events of one request, in order (amortised O(own events))."""
        timeline = self._index().get(rid)
        return list(timeline) if timeline is not None else []

    def requests_traced(self) -> set[int]:
        """Ids of all requests with at least one event."""
        return set(self._index())

    def degree_changes(self, rid: int) -> list[tuple[float, int]]:
        """(time, new_degree) pairs of one request's mid-flight changes."""
        return [
            (e.time_ms, e.degree)
            for e in self.timeline(rid)
            if e.kind is TraceEventKind.DEGREE_CHANGE
        ]

    def format_timeline(self, rid: int) -> str:
        """Human-readable timeline of one request."""
        lines = [str(e) for e in self.timeline(rid)]
        return "\n".join(lines) if lines else f"(no events for request {rid})"

    def validate(self) -> None:
        """Check per-request event-order invariants.

        Raises :class:`SimulationError` on a malformed timeline
        (e.g. dispatch before arrival, events after completion).
        """
        order = {
            TraceEventKind.ARRIVAL: 0,
            TraceEventKind.DISPATCH: 1,
            TraceEventKind.DEGREE_CHANGE: 2,
            TraceEventKind.COMPLETION: 3,
            TraceEventKind.CANCELLED: 3,
        }
        last_time: dict[int, float] = {}
        last_stage: dict[int, int] = {}
        done: set[int] = set()
        for event in self._materialize():
            if event.rid in done:
                raise SimulationError(
                    f"request {event.rid} has events after completion"
                )
            if event.time_ms < last_time.get(event.rid, float("-inf")) - 1e-9:
                raise SimulationError(
                    f"request {event.rid} timeline is not monotone"
                )
            stage = order[event.kind]
            previous = last_stage.get(event.rid, -1)
            if event.kind is TraceEventKind.DEGREE_CHANGE:
                if previous < order[TraceEventKind.DISPATCH]:
                    raise SimulationError(
                        f"request {event.rid} changed degree before dispatch"
                    )
            elif stage <= previous:
                raise SimulationError(
                    f"request {event.rid} repeated stage {event.kind.value}"
                )
            last_time[event.rid] = event.time_ms
            last_stage[event.rid] = max(previous, stage)
            if event.kind in (
                TraceEventKind.COMPLETION,
                TraceEventKind.CANCELLED,
            ):
                done.add(event.rid)


def attach_tracer(
    server: "Server",
    capacity: int | None = None,
    tracer: RequestTracer | None = None,
    on_event: "Callable[[TraceEvent, Request], None] | None" = None,
    on_arrival: "Callable[[Request], None] | None" = None,
) -> RequestTracer:
    """Instrument a server with a tracer (wraps its lifecycle hooks).

    Must be called before any request is submitted.  ``tracer`` lets
    several servers of one cluster share a tracer (or lets callers
    supply a pre-configured one).  ``on_event`` is invoked with every
    event *and* its live request — even events the tracer drops at
    capacity.  ``on_arrival`` is invoked once per submitted request
    (with the live request only); it is the cheap hook
    :class:`repro.obs.Observation` uses to capture ground-truth demand
    info without paying a callback per event.
    """
    if server.running or server.waiting or len(server.recorder):
        raise SimulationError("attach_tracer requires a fresh server")
    if server.dispatch_callback is not None:
        raise SimulationError("server already has a dispatch_callback")
    if tracer is None:
        tracer = RequestTracer(capacity)

    original_submit = server.submit
    original_raise = server.raise_degree
    original_complete = server._complete
    original_cancel = server.cancel_request
    # Pre-bound hot-path locals: the wrappers run once per lifecycle
    # transition of every request, so each saved attribute lookup counts
    # against the enabled-path overhead budget.  An uncapped tracer
    # records through the raw list append — no capacity check at all.
    record_event = (
        tracer._events.append
        if tracer.capacity is None
        else tracer.record_event
    )
    engine = server.engine  # server.now is a property; engine.now is flat
    arrival_kind = TraceEventKind.ARRIVAL
    dispatch_kind = TraceEventKind.DISPATCH
    change_kind = TraceEventKind.DEGREE_CHANGE
    completion_kind = TraceEventKind.COMPLETION
    cancelled_kind = TraceEventKind.CANCELLED

    if on_event is None:
        # Fast wrapper set: record plain 5-tuples (TraceEvent field
        # order) and let the tracer materialize NamedTuples lazily on
        # the first query — the hot path never pays construction.
        def submit(request: "Request") -> None:
            # Recorded before the submit call so that an immediate
            # same-instant dispatch lands after the arrival — timelines
            # always read arrival -> dispatch with a plain append.
            record_event((engine.now, request.rid, arrival_kind, 0, None))
            original_submit(request)
            if on_arrival is not None:
                on_arrival(request)

        def on_dispatch(request: "Request") -> None:
            record_event(
                (engine.now, request.rid, dispatch_kind, request.degree, None)
            )

        def raise_degree(request: "Request", new_degree: int) -> int:
            before = request.degree
            granted = original_raise(request, new_degree)
            if granted > before:
                record_event(
                    (engine.now, request.rid, change_kind, granted, None)
                )
            return granted

        def complete(request: "Request") -> None:
            original_complete(request)
            record_event(
                (
                    engine.now,
                    request.rid,
                    completion_kind,
                    request.degree,
                    None,
                )
            )

        def cancel_request(
            request: "Request", cause: str | None = None
        ) -> float:
            degree = request.degree
            work_done = original_cancel(request, cause)
            record_event(
                (
                    engine.now,
                    request.rid,
                    cancelled_kind,
                    degree,
                    request.cancel_cause,
                )
            )
            return work_done

    else:
        # Callback wrapper set: ``on_event`` receives real TraceEvents,
        # so they are built eagerly here.
        def submit(request: "Request") -> None:
            event = TraceEvent(engine.now, request.rid, arrival_kind, 0)
            record_event(event)
            on_event(event, request)
            original_submit(request)
            if on_arrival is not None:
                on_arrival(request)

        def on_dispatch(request: "Request") -> None:
            event = TraceEvent(
                engine.now, request.rid, dispatch_kind, request.degree
            )
            record_event(event)
            on_event(event, request)

        def raise_degree(request: "Request", new_degree: int) -> int:
            before = request.degree
            granted = original_raise(request, new_degree)
            if granted > before:
                event = TraceEvent(
                    engine.now, request.rid, change_kind, granted
                )
                record_event(event)
                on_event(event, request)
            return granted

        def complete(request: "Request") -> None:
            original_complete(request)
            event = TraceEvent(
                engine.now, request.rid, completion_kind, request.degree
            )
            record_event(event)
            on_event(event, request)

        def cancel_request(
            request: "Request", cause: str | None = None
        ) -> float:
            degree = request.degree
            work_done = original_cancel(request, cause)
            event = TraceEvent(
                engine.now,
                request.rid,
                cancelled_kind,
                degree,
                request.cancel_cause,
            )
            record_event(event)
            on_event(event, request)
            return work_done

    server.submit = submit  # type: ignore[method-assign]
    server.dispatch_callback = on_dispatch
    server.raise_degree = raise_degree  # type: ignore[method-assign]
    server._complete = complete  # type: ignore[method-assign]
    server.cancel_request = cancel_request  # type: ignore[method-assign]
    return tracer
