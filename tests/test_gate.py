"""Integration tests for ``repro.gate``: cold/warm execution through
the exec cache, the perturbation self-test, the JSON artifact, and the
CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.exec import ResultCache
from repro.gate import CHECKS, check_names, run_gate, scale_for_mode
from repro.gate.__main__ import main as gate_main
from repro.gate.runner import baseline_metrics, select_checks

#: Generous ceiling for the fast gate with a cold cache (the CI job
#: budget is 30 minutes; a healthy run is well under one).
FAST_COLD_BUDGET_S = 600.0


@pytest.fixture(scope="module")
def gate_cache(tmp_path_factory):
    """A fresh exec cache shared by the cold and warm runs below."""
    return ResultCache(tmp_path_factory.mktemp("gate-exec-cache"))


@pytest.fixture(scope="module")
def cold_report(gate_cache):
    """One cold fast-mode gate run (the expensive fixture)."""
    return run_gate(mode="fast", cache=gate_cache, baselines={}, workers=1)


class TestColdRun:
    def test_fast_mode_passes_under_ci_budget(self, cold_report):
        assert cold_report.status == "pass", cold_report.render_summary()
        assert cold_report.total_wall_time_s < FAST_COLD_BUDGET_S
        # Cold means every cell was simulated, none served from cache.
        assert cold_report.cells_from_cache == 0
        assert cold_report.cells_executed == cold_report.cells_total > 0

    def test_every_registered_check_ran(self, cold_report):
        assert [c.name for c in cold_report.checks] == check_names()
        assert all(c.measurements for c in cold_report.checks)

    def test_report_artifact_roundtrip(self, cold_report, tmp_path):
        path = cold_report.write(tmp_path / "BENCH_gate.json")
        document = json.loads(path.read_text())
        assert document["schema_version"] == 1
        assert document["generated_by"] == "repro.gate"
        assert document["mode"] == "fast"
        assert document["status"] == "pass"
        assert document["counts"]["failed"] == 0
        assert document["timing"]["cells_total"] == cold_report.cells_total
        assert {c["name"] for c in document["checks"]} == set(check_names())
        for check in document["checks"]:
            for m in check["measurements"]:
                assert isinstance(m["passed"], bool)
                assert isinstance(m["value"], float)

    def test_baseline_metrics_extracted(self, cold_report):
        metrics = baseline_metrics(cold_report)
        assert "tpc_p99@450" in metrics
        assert "hotpath_events_run" in metrics
        assert all(isinstance(v, float) for v in metrics.values())


class TestWarmRun:
    def test_warm_rerun_is_served_from_cache(self, gate_cache, cold_report):
        warm = run_gate(
            mode="fast", cache=gate_cache, baselines={}, workers=1
        )
        assert warm.status == "pass"
        assert warm.cells_from_cache == warm.cells_total
        assert warm.cells_executed == 0
        assert warm.payload_hits >= 1  # the cluster probe
        # Near-free: no simulation beyond the always-live perf check.
        assert warm.total_wall_time_s < 0.5 * cold_report.total_wall_time_s

    def test_warm_numbers_identical_to_cold(self, gate_cache, cold_report):
        warm = run_gate(
            mode="fast", cache=gate_cache, baselines={}, workers=1
        )
        for name in ("demand_distribution", "policy_ordering_p99"):
            cold_values = {
                m.metric: m.value for m in cold_report.check(name).measurements
            }
            warm_values = {
                m.metric: m.value for m in warm.check(name).measurements
            }
            assert warm_values == cold_values


class TestPerturbation:
    def test_perturbed_metric_fails_exactly_its_check(
        self, gate_cache, cold_report
    ):
        """The acceptance self-test: +30% on TPC's p99 ratio violates
        the p99 ordering band and nothing else."""
        report = run_gate(
            mode="fast",
            cache=gate_cache,
            baselines={},
            workers=1,
            perturb={"p99_ratio@450:TPC/TP": 1.3},
        )
        assert report.status == "fail"
        statuses = {c.name: c.status for c in report.checks}
        assert statuses["policy_ordering_p99"] == "fail"
        assert all(
            status == "pass"
            for name, status in statuses.items()
            if name != "policy_ordering_p99"
        ), statuses
        violations = report.check("policy_ordering_p99").violations
        assert [v.metric for v in violations] == ["p99_ratio@450:TPC/TP"]
        # The report names the violated band.
        assert "1.08" in violations[0].describe()
        assert violations[0].perturbed

    def test_only_restricts_and_validates_names(self, gate_cache):
        report = run_gate(
            mode="fast",
            only=["perf_budget"],
            cache=gate_cache,
            baselines={},
            workers=1,
        )
        assert [c.name for c in report.checks] == ["perf_budget"]
        assert report.cells_total == 0
        with pytest.raises(ConfigError):
            select_checks(["no_such_check"])


class TestScales:
    def test_modes_are_registered(self):
        fast, full = scale_for_mode("fast"), scale_for_mode("full")
        assert fast.n_requests < full.n_requests
        assert fast.qps_grid == full.qps_grid
        with pytest.raises(ConfigError):
            scale_for_mode("medium")

    def test_checks_declare_dedupable_cells(self):
        scale = scale_for_mode("fast")
        hashes: set[str] = set()
        for check in CHECKS.values():
            for cell in check.cells(scale):
                hashes.add(cell.content_hash)
        # The ordering checks share their 12-cell grid and every other
        # cell-driven check reuses a subset of it.
        assert len(hashes) == 12


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert gate_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in check_names():
            assert name in out

    def test_bad_perturb_is_usage_error(self, capsys):
        assert gate_main(["--perturb", "nonsense"]) == 2

    def test_mutually_exclusive_modes(self):
        with pytest.raises(SystemExit):
            gate_main(["--fast", "--full"])
