"""Analysis utilities: queueing-theory checks and policy comparisons.

Not part of the paper's system, but the tooling a reproduction needs to
*trust* its substrate: Little's-law and utilisation validators for the
simulated server, plus helpers that turn latency sweeps into the
comparative statements the paper makes ("reduces P99 by up to 40 %",
"crossover at ~X QPS").
"""

from .queueing import (
    offered_load_core_equivalents,
    mean_concurrency,
    utilisation,
    verify_littles_law,
)
from .comparison import (
    relative_reduction,
    max_relative_reduction,
    crossover_load,
    dominance_fraction,
)

__all__ = [
    "offered_load_core_equivalents",
    "mean_concurrency",
    "utilisation",
    "verify_littles_law",
    "relative_reduction",
    "max_relative_reduction",
    "crossover_load",
    "dominance_fraction",
]
