"""Unit tests for the gate's judgement layer: bands, measurements,
baselines, and the pure check-evaluation functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gate import (
    Band,
    Measurement,
    demand_measurements,
    load_baselines,
    ordering_measurements,
    save_baselines,
)
from repro.gate.bands import evaluate_measurement
from repro.gate.baselines import merge_baselines
from repro.gate.checks import (
    P99_PAIR_TOLERANCE,
    cluster_measurements,
    run_hotpath_benchmark,
)
from repro.gate.checks import ClusterProbe
from repro.sim.metrics import LatencyRecorder, distribution_stats


def _paperlike_demands(rng: np.random.Generator, n: int = 20_000) -> np.ndarray:
    """A synthetic sample shaped like the paper's demand distribution:
    ~95% short lognormal queries, ~5% long 100-300 ms queries."""
    short = rng.lognormal(mean=np.log(3.3), sigma=0.9, size=n)
    long = rng.uniform(100.0, 300.0, size=n)
    is_long = rng.random(n) < 0.05
    return np.where(is_long, long, short)


class TestBand:
    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError):
            Band()

    def test_absolute_bounds(self):
        band = Band(lo=1.0, hi=2.0)
        assert band.bounds(None) == (1.0, 2.0)

    def test_relative_bounds_fold_in_baseline(self):
        band = Band(rel_lo=0.5, rel_hi=1.5)
        assert band.bounds(100.0) == (50.0, 150.0)
        assert band.bounds(None) == (None, None)

    def test_tighter_bound_wins(self):
        band = Band(lo=10.0, hi=200.0, rel_lo=0.5, rel_hi=1.5)
        # Baseline 100: relative lo 50 beats absolute 10; relative
        # hi 150 beats absolute 200.
        assert band.bounds(100.0) == (50.0, 150.0)
        # Baseline 10: absolute lo 10 beats relative 5; relative hi 15
        # beats absolute 200.
        assert band.bounds(10.0) == (10.0, 15.0)


class TestEvaluateMeasurement:
    def test_pass_and_fail(self):
        m = Measurement("x", 5.0, Band(lo=1.0, hi=10.0))
        assert evaluate_measurement(m).passed
        m = Measurement("x", 50.0, Band(lo=1.0, hi=10.0))
        assert not evaluate_measurement(m).passed

    def test_informational_always_passes(self):
        m = Measurement("x", 1e9, None)
        out = evaluate_measurement(m)
        assert out.passed and out.informational
        assert "recorded" in out.describe()

    def test_missing_baseline_skips_relative_bounds(self):
        m = Measurement("x", 500.0, Band(rel_lo=0.9, rel_hi=1.1))
        out = evaluate_measurement(m, baselines={})
        assert out.passed
        assert "no baseline" in out.note

    def test_baseline_resolves_relative_bounds(self):
        m = Measurement("x", 500.0, Band(rel_lo=0.9, rel_hi=1.1))
        out = evaluate_measurement(m, baselines={"x": 100.0})
        assert not out.passed
        assert out.baseline == 100.0
        assert (out.lo, out.hi) == (pytest.approx(90.0), pytest.approx(110.0))

    def test_perturbation_applies_before_judgement(self):
        m = Measurement("x", 5.0, Band(hi=6.0))
        out = evaluate_measurement(m, perturb={"x": 1.3})
        assert out.perturbed
        assert out.value == pytest.approx(6.5)
        assert not out.passed
        assert "VIOLATED" in out.describe()

    def test_json_rendering_is_plain_python(self):
        m = Measurement("x", np.float64(5.0), Band(hi=np.float64(6.0)))
        out = evaluate_measurement(m)
        assert isinstance(out.value, float)
        assert isinstance(out.passed, bool)


class TestDemandCheck:
    def test_paperlike_sample_passes(self):
        stats = distribution_stats(
            _paperlike_demands(np.random.default_rng(5))
        )
        results = [evaluate_measurement(m) for m in demand_measurements(stats)]
        assert all(r.passed for r in results), [
            r.describe() for r in results if not r.passed
        ]

    def test_doctored_recorder_fails_its_check(self):
        """A LatencyRecorder whose demand sample drifts 2x off the
        paper's distribution must fail the demand_distribution bands."""
        recorder = LatencyRecorder()
        doctored = 2.0 * _paperlike_demands(np.random.default_rng(5))
        recorder.demands_ms.extend(doctored.tolist())
        stats = distribution_stats(recorder.demands_ms)
        results = [evaluate_measurement(m) for m in demand_measurements(stats)]
        by_metric = {r.metric: r for r in results}
        # The check as a whole fails ...
        assert not all(r.passed for r in results)
        # ... and specifically the mean and median bands.
        assert not by_metric["demand_mean_ms"].passed
        assert not by_metric["demand_median_ms"].passed


class TestOrderingCheck:
    def _tails(self, tpc: float, tp: float, ap: float, seq: float):
        return {
            "TPC": {450.0: tpc},
            "TP": {450.0: tp},
            "AP": {450.0: ap},
            "Sequential": {450.0: seq},
        }

    def test_correct_chain_passes(self):
        ms = ordering_measurements(
            "p99",
            self._tails(70.0, 75.0, 120.0, 220.0),
            [450.0],
            P99_PAIR_TOLERANCE,
            "ref",
        )
        assert all(evaluate_measurement(m).passed for m in ms)

    def test_inverted_pair_fails_only_its_ratio(self):
        # TPC 30% slower than TP: the TPC/TP ratio must fail, the
        # other pairs must not.
        ms = ordering_measurements(
            "p99",
            self._tails(97.5, 75.0, 120.0, 220.0),
            [450.0],
            P99_PAIR_TOLERANCE,
            "ref",
        )
        results = {m.metric: evaluate_measurement(m) for m in ms}
        assert not results["p99_ratio@450:TPC/TP"].passed
        assert results["p99_ratio@450:TP/AP"].passed
        assert results["p99_ratio@450:AP/Sequential"].passed


class TestClusterCheck:
    def test_consistent_probe_passes(self):
        probe = ClusterProbe(
            aggregator_p99_ms=75.0,
            isn_p99_ms=63.0,
            isn_percentile_at_aggregator_p99=99.7,
        )
        ms = cluster_measurements(probe, single_isn_p99_ms=72.0)
        assert all(evaluate_measurement(m).passed for m in ms)

    def test_aggregator_faster_than_isns_is_inconsistent(self):
        probe = ClusterProbe(
            aggregator_p99_ms=50.0,
            isn_p99_ms=63.0,
            isn_percentile_at_aggregator_p99=97.0,
        )
        ms = cluster_measurements(probe, single_isn_p99_ms=72.0)
        results = {m.metric: evaluate_measurement(m) for m in ms}
        assert not results["cluster_agg_p99_over_isn_p99"].passed
        assert not results["cluster_isn_pct_at_agg_p99"].passed


class TestHotpath:
    def test_event_count_is_deterministic(self):
        a = run_hotpath_benchmark(1_500, seed=11)
        b = run_hotpath_benchmark(1_500, seed=11)
        assert a.events_run == b.events_run
        assert a.n_requests == b.n_requests == 1_500

    def test_throughputs_are_positive(self):
        result = run_hotpath_benchmark(1_000, seed=11)
        assert result.events_per_s > 0
        assert result.requests_per_s > 0


class TestBaselines:
    def test_missing_file_degrades_to_empty(self, tmp_path):
        assert load_baselines(tmp_path / "absent.json") == {}
        assert load_baselines(tmp_path / "absent.json", mode="fast") == {}

    def test_roundtrip_is_bit_stable(self, tmp_path):
        path = tmp_path / "gate_baseline.json"
        document = merge_baselines(
            {}, "fast", {"tpc_p99@450": 73.844862}, git_sha="abc123"
        )
        save_baselines(document, path)
        first = path.read_bytes()
        loaded = load_baselines(path)
        assert loaded == document
        save_baselines(loaded, path)
        assert path.read_bytes() == first

    def test_mode_view_and_merge_preserves_other_modes(self, tmp_path):
        path = tmp_path / "gate_baseline.json"
        document = merge_baselines({}, "fast", {"x": 1.0})
        document = merge_baselines(document, "full", {"x": 2.0})
        save_baselines(document, path)
        assert load_baselines(path, mode="fast") == {"x": 1.0}
        assert load_baselines(path, mode="full") == {"x": 2.0}
        assert load_baselines(path, mode="unknown") == {}

    def test_corrupt_file_raises_config_error(self, tmp_path):
        path = tmp_path / "gate_baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError):
            load_baselines(path)

    def test_wrong_schema_raises_config_error(self, tmp_path):
        path = tmp_path / "gate_baseline.json"
        path.write_text('{"schema_version": 99, "modes": {}}')
        with pytest.raises(ConfigError):
            load_baselines(path)
