"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append("b"))
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.schedule_at(9.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_fifo(self):
        engine = Engine()
        fired = []
        for name in ("first", "second", "third"):
            engine.schedule_at(3.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(7.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [7.5]
        assert engine.now == 7.5

    def test_schedule_relative_delay(self):
        engine = Engine()
        seen = []
        engine.schedule_at(2.0, lambda: engine.schedule(3.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5.0]

    def test_rejects_past_events(self):
        engine = Engine()
        engine.schedule_at(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.run() == 0

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        h1 = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        h1.cancel()
        assert engine.pending == 1


class TestRunControl:
    def test_run_returns_event_count(self):
        engine = Engine()
        for t in range(5):
            engine.schedule_at(float(t), lambda: None)
        assert engine.run() == 5
        assert engine.events_run == 5

    def test_run_with_max_events_stops_early(self):
        engine = Engine()
        for t in range(5):
            engine.schedule_at(float(t), lambda: None)
        assert engine.run(max_events=2) == 2
        assert engine.pending == 3

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_run_until_executes_due_events_only(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(5.0, lambda: fired.append(5))
        engine.run_until(3.0)
        assert fired == [1]
        assert engine.now == 3.0
        engine.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_without_events(self):
        engine = Engine()
        engine.run_until(42.0)
        assert engine.now == 42.0


class TestHeapHygiene:
    """Live-event accounting and automatic heap compaction."""

    def test_pending_decrements_on_cancel(self):
        engine = Engine()
        handles = [engine.schedule_at(float(t), lambda: None) for t in range(10)]
        assert engine.pending == 10
        for h in handles[:4]:
            h.cancel()
        assert engine.pending == 6

    def test_double_cancel_counted_once(self):
        engine = Engine()
        h = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        h.cancel()
        h.cancel()
        h.cancel()
        assert engine.pending == 1

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        h = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        engine.step()
        h.cancel()  # already fired: must not corrupt the live count
        assert engine.pending == 1
        assert engine.run() == 1

    def test_garbage_tracks_cancelled_entries(self):
        engine = Engine()
        handles = [engine.schedule_at(float(t), lambda: None) for t in range(8)]
        assert engine.garbage == 0
        for h in handles[:3]:
            h.cancel()
        assert engine.garbage == 3
        engine.run()
        assert engine.garbage == 0

    def test_auto_compaction_triggers_and_shrinks_heap(self):
        engine = Engine(compact_min_garbage=4, compact_garbage_ratio=0.5)
        keep = [engine.schedule_at(100.0 + t, lambda: None) for t in range(4)]
        drop = [engine.schedule_at(50.0 + t, lambda: None) for t in range(8)]
        for h in drop:
            h.cancel()
        assert engine.compactions >= 1
        # Compaction purged the garbage present when it fired; only
        # cancellations after the last compaction can remain.
        assert engine.garbage < len(drop)
        assert engine.pending == len(keep)

    def test_compaction_disabled_by_high_threshold(self):
        engine = Engine(compact_min_garbage=10_000)
        for t in range(100):
            engine.schedule_at(float(t) + 1000.0, lambda: None).cancel()
        assert engine.compactions == 0
        assert engine.garbage == 100

    def test_explicit_compact_preserves_firing_order(self):
        engine = Engine(compact_min_garbage=10_000)
        fired = []
        for t in (5.0, 1.0, 9.0, 3.0, 7.0):
            engine.schedule_at(t, lambda t=t: fired.append(t))
        engine.schedule_at(4.0, lambda: None).cancel()
        engine.compact()
        assert engine.compactions == 1
        engine.run()
        assert fired == [1.0, 3.0, 5.0, 7.0, 9.0]

    def test_invalid_compaction_parameters_rejected(self):
        with pytest.raises(SimulationError):
            Engine(compact_min_garbage=-1)
        with pytest.raises(SimulationError):
            Engine(compact_garbage_ratio=-0.5)


class TestCompactionEquivalence:
    """Property: compaction never changes observable behaviour.

    Drives a randomised schedule/cancel workload through two engines —
    one compacting after every cancellation, one never compacting —
    and checks the event firing sequences are identical.
    """

    def _run_workload(self, engine, seed):
        import random

        rng = random.Random(seed)
        fired = []
        live = []

        def make_cb(tag):
            def cb():
                fired.append((round(engine.now, 6), tag))
                # Schedule a few follow-ups and cancel a random victim,
                # mirroring the server's cancel-and-rearm churn.
                for _ in range(rng.randrange(3)):
                    live.append(
                        engine.schedule(rng.uniform(0.1, 20.0), make_cb(len(fired)))
                    )
                if live and rng.random() < 0.6:
                    live.pop(rng.randrange(len(live))).cancel()

            return cb

        for i in range(40):
            live.append(engine.schedule_at(rng.uniform(0.0, 10.0), make_cb(-i)))
        engine.run(max_events=600)
        return fired, engine.events_run

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_always_vs_never_compacting_identical(self, seed):
        eager = Engine(compact_min_garbage=0, compact_garbage_ratio=0.0)
        lazy = Engine(compact_min_garbage=10**9)
        fired_eager, count_eager = self._run_workload(eager, seed)
        fired_lazy, count_lazy = self._run_workload(lazy, seed)
        assert fired_eager == fired_lazy
        assert count_eager == count_lazy
        assert eager.compactions > 0
        assert lazy.compactions == 0
