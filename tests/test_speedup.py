"""Tests for speedup profiles and the grouped speedup book."""

import pytest

from repro.config import DEFAULT_GROUP_BOUNDS_MS
from repro.core.speedup import (
    SpeedupBook,
    SpeedupProfile,
    amdahl_profile,
    demand_group,
)
from repro.errors import ConfigError

from conftest import LONG_PROFILE, MID_PROFILE, SHORT_PROFILE


class TestSpeedupProfile:
    def test_degree_one_is_unity(self):
        assert LONG_PROFILE[1] == 1.0

    def test_indexing_is_one_based(self):
        assert LONG_PROFILE[6] == pytest.approx(4.1)
        with pytest.raises(IndexError):
            LONG_PROFILE[0]
        with pytest.raises(IndexError):
            LONG_PROFILE[7]

    def test_speedup_saturates_beyond_max_degree(self):
        assert LONG_PROFILE.speedup(10) == LONG_PROFILE.speedup(6)

    def test_execution_time_divides_by_speedup(self):
        assert LONG_PROFILE.execution_time(164.0, 6) == pytest.approx(40.0)

    def test_efficiency_decreases_with_degree(self):
        effs = [LONG_PROFILE.efficiency(d) for d in range(1, 7)]
        assert all(b <= a + 1e-12 for a, b in zip(effs, effs[1:]))

    def test_rejects_s1_not_one(self):
        with pytest.raises(ConfigError):
            SpeedupProfile([2.0, 3.0])

    def test_rejects_decreasing(self):
        with pytest.raises(ConfigError):
            SpeedupProfile([1.0, 2.0, 1.5])

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            SpeedupProfile([])

    def test_rejects_wildly_superlinear(self):
        with pytest.raises(ConfigError):
            SpeedupProfile([1.0, 30.0])

    def test_truncated_limits_max_degree(self):
        assert LONG_PROFILE.truncated(3).max_degree == 3
        assert LONG_PROFILE.truncated(3).speedup(3) == LONG_PROFILE.speedup(3)

    def test_equality_and_hash(self):
        assert SpeedupProfile([1.0, 2.0]) == SpeedupProfile([1.0, 2.0])
        assert hash(SpeedupProfile([1.0, 2.0])) == hash(SpeedupProfile([1.0, 2.0]))
        assert SpeedupProfile([1.0, 2.0]) != SpeedupProfile([1.0, 1.5])


class TestAmdahlProfile:
    def test_zero_serial_fraction_is_linear(self):
        profile = amdahl_profile(4, 0.0)
        assert profile.speedup(4) == pytest.approx(4.0)

    def test_serial_fraction_bounds_speedup(self):
        profile = amdahl_profile(16, 0.25)
        assert profile.speedup(16) < 4.0  # Amdahl limit 1/f = 4

    def test_per_thread_loss_reduces_speedup(self):
        lossless = amdahl_profile(6, 0.05)
        lossy = amdahl_profile(6, 0.05, per_thread_loss=0.05)
        assert lossy.speedup(6) < lossless.speedup(6)

    def test_profile_is_monotone_even_with_heavy_loss(self):
        profile = amdahl_profile(8, 0.1, per_thread_loss=0.3)
        values = profile.speedups
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_rejects_bad_serial_fraction(self):
        with pytest.raises(ConfigError):
            amdahl_profile(4, 1.0)


class TestDemandGroup:
    def test_paper_group_boundaries(self):
        assert demand_group(10.0) == 0  # short: < 30 ms
        assert demand_group(50.0) == 1  # mid: 30-80 ms
        assert demand_group(150.0) == 2  # long: > 80 ms

    def test_boundary_values_join_the_higher_group(self):
        assert demand_group(30.0) == 1
        assert demand_group(80.0) == 2
        assert demand_group(29.999) == 0
        assert demand_group(79.999) == 1

    def test_custom_bounds(self):
        assert demand_group(5.0, [10.0]) == 0
        assert demand_group(15.0, [10.0]) == 1


class TestSpeedupBook:
    def test_profile_lookup_by_demand(self, speedup_book):
        assert speedup_book.profile_for(10.0) is SHORT_PROFILE
        assert speedup_book.profile_for(50.0) is MID_PROFILE
        assert speedup_book.profile_for(150.0) is LONG_PROFILE

    def test_group_count_and_bounds(self, speedup_book):
        assert speedup_book.num_groups == 3
        assert speedup_book.bounds_ms == DEFAULT_GROUP_BOUNDS_MS

    def test_rejects_profile_count_mismatch(self):
        with pytest.raises(ConfigError):
            SpeedupBook([SHORT_PROFILE, LONG_PROFILE])

    def test_rejects_mixed_max_degree(self):
        with pytest.raises(ConfigError):
            SpeedupBook(
                [SHORT_PROFILE, MID_PROFILE, SpeedupProfile([1.0, 2.0])]
            )

    def test_from_samples_averages_within_groups(self):
        demands = [10.0, 20.0, 100.0, 200.0]
        profiles = [
            SpeedupProfile([1.0, 1.0]),
            SpeedupProfile([1.0, 1.2]),
            SpeedupProfile([1.0, 1.8]),
            SpeedupProfile([1.0, 2.0]),
        ]
        book = SpeedupBook.from_samples(demands, profiles)
        assert book.profile_of_group(0).speedup(2) == pytest.approx(1.1)
        assert book.profile_of_group(2).speedup(2) == pytest.approx(1.9)

    def test_from_samples_empty_group_inherits_neighbour(self):
        book = SpeedupBook.from_samples(
            [10.0], [SpeedupProfile([1.0, 1.5])]
        )
        # mid and long groups had no samples; they inherit short's.
        assert book.profile_of_group(1).speedup(2) == pytest.approx(1.5)

    def test_from_samples_rejects_misaligned(self):
        with pytest.raises(ConfigError):
            SpeedupBook.from_samples([1.0, 2.0], [SpeedupProfile([1.0])])

    def test_split_groups_doubles_count(self, speedup_book):
        split = speedup_book.split_groups()
        assert split.num_groups == 6
        # Sub-groups inherit the parent profile.
        assert split.profile_for(10.0) == speedup_book.profile_for(10.0)
        assert split.profile_for(150.0) == speedup_book.profile_for(150.0)

    def test_split_groups_preserves_lookup_semantics(self, speedup_book):
        split = speedup_book.split_groups()
        for demand in (5.0, 25.0, 45.0, 70.0, 120.0, 400.0):
            assert split.profile_for(demand) == speedup_book.profile_for(demand)
