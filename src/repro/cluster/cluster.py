"""Cluster experiment: N ISNs behind one aggregator on a shared clock.

Every logical query fans out to all ISNs.  Each ISN receives its own
replica of the request with lognormally jittered demand (document
sharding spreads work evenly but not identically) and schedules it
independently under its own policy instance; the aggregator answers
when the slowest replica completes.  All ISNs share one target table,
matching the paper's observation that evenly-balanced ISNs converge to
the same table (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ClusterConfig, PolicyConfig, ServerConfig
from ..core.target_table import TargetTable
from ..errors import ConfigError, SimulationError
from ..policies.registry import make_policy
from ..rng import RngFactory
from ..search.workload import SearchWorkload
from ..sim.client import poisson_arrival_times
from ..sim.engine import Engine
from ..sim.load import LoadMetric
from ..sim.metrics import LatencyRecorder, percentile
from ..sim.request import Request
from ..sim.server import Server
from .aggregator import Aggregator

__all__ = ["ClusterExperimentResult", "run_cluster_experiment"]


@dataclass
class ClusterExperimentResult:
    """Outcome of one cluster run."""

    policy_name: str
    qps: float
    num_isns: int
    #: Aggregator response time per logical query (ms).
    aggregator_latencies_ms: np.ndarray
    #: Response times of every individual ISN replica (ms).
    isn_latencies_ms: np.ndarray
    #: Per-ISN recorders (index = ISN id).
    isn_recorders: list[LatencyRecorder]

    def aggregator_percentile(self, p: float) -> float:
        """Percentile of the aggregator (user-visible) latency."""
        return percentile(self.aggregator_latencies_ms, p)

    def isn_percentile(self, p: float) -> float:
        """Percentile of individual ISN response times."""
        return percentile(self.isn_latencies_ms, p)

    def isn_percentile_of_latency(self, latency_ms: float) -> float:
        """Which ISN percentile a given latency value sits at.

        Used for Figure 8(b): the paper observes that the P99
        aggregator latency corresponds to roughly the P99.8 latency of
        an individual ISN.
        """
        arr = np.sort(self.isn_latencies_ms)
        rank = np.searchsorted(arr, latency_ms, side="right")
        return 100.0 * rank / len(arr)

    def fraction_slower_than(self, latency_ms: float) -> float:
        """Fraction of aggregator responses slower than ``latency_ms``."""
        return float((self.aggregator_latencies_ms > latency_ms).mean())


def run_cluster_experiment(
    workload: SearchWorkload,
    policy_name: str,
    qps: float,
    n_queries: int,
    seed: int,
    cluster_config: ClusterConfig | None = None,
    server_config: ServerConfig | None = None,
    policy_config: PolicyConfig | None = None,
    target_table: TargetTable | None = None,
    load_metric: LoadMetric = LoadMetric.LONG_THREADS,
    prediction: str = "model",
) -> ClusterExperimentResult:
    """Run one policy on a full partition-aggregate cluster.

    Every ISN gets an independent policy instance and server but they
    share the simulation clock, the target table and the predictor, as
    in the paper's deployment.
    """
    if n_queries < 1:
        raise ConfigError("n_queries must be >= 1")
    ccfg = cluster_config if cluster_config is not None else ClusterConfig()
    scfg = server_config if server_config is not None else ServerConfig()
    rngs = RngFactory(seed)

    engine = Engine()
    aggregator = Aggregator(ccfg.num_isns, ccfg.network_overhead_ms)

    def on_isn_complete(request: Request) -> None:
        aggregator.on_isn_complete(request.rid, engine.now)

    servers: list[Server] = []
    for isn in range(ccfg.num_isns):
        policy = make_policy(
            policy_name,
            speedup_book=workload.speedup_book,
            group_weights=workload.group_weights,
            target_table=target_table,
            policy_config=policy_config,
            load_metric=load_metric,
        )
        servers.append(
            Server(
                scfg,
                policy,
                engine=engine,
                completion_callback=on_isn_complete,
            )
        )

    logical = workload.make_requests(
        n_queries, rngs.get("trace"), prediction=prediction
    )
    arrivals = poisson_arrival_times(n_queries, qps, rngs.get("arrivals"))
    jitter_rng = rngs.get("shard-jitter")
    sigma = ccfg.demand_jitter_sigma

    for request, at in zip(logical, arrivals):
        jitters = (
            jitter_rng.lognormal(-sigma**2 / 2.0, sigma, size=ccfg.num_isns)
            if sigma > 0
            else np.ones(ccfg.num_isns)
        )
        replicas = [
            Request(
                rid=request.rid,
                demand_ms=float(request.demand_ms * jitters[i]),
                predicted_ms=request.predicted_ms,
                speedup=request.speedup,
            )
            for i in range(ccfg.num_isns)
        ]

        def fan_out(
            at_ms: float = float(at),
            reps: list[Request] = replicas,
            qid: int = request.rid,
        ) -> None:
            aggregator.begin(qid, at_ms)
            for server, replica in zip(servers, reps):
                server.submit(replica)

        engine.schedule_at(float(at), fan_out)

    while aggregator.completed < n_queries:
        if not engine.step():
            raise SimulationError(
                f"engine drained with {aggregator.completed}/{n_queries} "
                "queries aggregated"
            )

    return ClusterExperimentResult(
        policy_name=policy_name,
        qps=qps,
        num_isns=ccfg.num_isns,
        aggregator_latencies_ms=np.asarray(aggregator.latencies_ms),
        isn_latencies_ms=np.asarray(aggregator.isn_latencies_ms),
        isn_recorders=[s.recorder for s in servers],
    )
