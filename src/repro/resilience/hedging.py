"""Aggregator-side mitigations: partial wait and hedged re-issue.

A :class:`HedgePolicy` declares what the aggregator does about lagging
replicas instead of waiting for all of them:

* **wait-for-k** — answer once ``wait_for_k`` of the ``n`` replicas
  have reported (partial-wait aggregation; web search tolerates a
  missing shard far better than a missing deadline);
* **hedging** — when a query is still incomplete ``hedge_timeout_ms``
  after arrival, re-issue up to ``max_hedges_per_query`` of its
  lagging shard replicas to secondary ISNs (the least-loaded healthy
  nodes), betting a fresh node beats the straggler;
* **tied requests** — when either member of a hedge pair completes,
  ``tie_cancel`` withdraws the other mid-flight through the engine's
  event-cancel machinery, bounding the extra work a hedge costs.

The default-constructed policy is the paper's wait-for-all aggregator
with no hedging — a guaranteed no-op — so resilience is strictly
opt-in.  Like :class:`~repro.resilience.faults.FaultSpec`, the policy
is frozen plain data and participates in ``repro.exec`` content
hashes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["HedgePolicy"]


@dataclass(frozen=True)
class HedgePolicy:
    """Partial-wait and hedged re-issue configuration (frozen)."""

    #: Replicas to wait for before answering; None means all of them.
    wait_for_k: int | None = None
    #: Outstanding time (ms after query arrival) that triggers a hedged
    #: re-issue of lagging replicas; None disables hedging.
    hedge_timeout_ms: float | None = None
    #: Lagging shard replicas re-issued when the timer fires.
    max_hedges_per_query: int = 1
    #: Cancel the slower member of a hedge pair when the faster one
    #: completes (tied-request cancellation).
    tie_cancel: bool = True

    def __post_init__(self) -> None:
        if self.wait_for_k is not None and self.wait_for_k < 1:
            raise ConfigError(
                f"wait_for_k must be >= 1 or None, got {self.wait_for_k}"
            )
        if self.hedge_timeout_ms is not None and self.hedge_timeout_ms <= 0:
            raise ConfigError(
                f"hedge_timeout_ms must be > 0 or None, got "
                f"{self.hedge_timeout_ms}"
            )
        if self.max_hedges_per_query < 1:
            raise ConfigError(
                f"max_hedges_per_query must be >= 1, got "
                f"{self.max_hedges_per_query}"
            )

    @classmethod
    def wait_for_all(cls) -> "HedgePolicy":
        """The paper's aggregator: wait for every replica, never hedge."""
        return cls()

    @classmethod
    def partial(cls, wait_for_k: int) -> "HedgePolicy":
        """Answer after the first ``wait_for_k`` replicas, no hedging."""
        return cls(wait_for_k=wait_for_k)

    @classmethod
    def hedged(
        cls,
        hedge_timeout_ms: float,
        max_hedges_per_query: int = 1,
        tie_cancel: bool = True,
        wait_for_k: int | None = None,
    ) -> "HedgePolicy":
        """Timeout-triggered hedging (optionally on top of wait-for-k)."""
        return cls(
            wait_for_k=wait_for_k,
            hedge_timeout_ms=hedge_timeout_ms,
            max_hedges_per_query=max_hedges_per_query,
            tie_cancel=tie_cancel,
        )

    @property
    def hedging_enabled(self) -> bool:
        """True when a hedge timer is armed per query."""
        return self.hedge_timeout_ms is not None

    def effective_k(self, num_isns: int) -> int:
        """The replica quorum for an ``num_isns``-wide cluster."""
        if self.wait_for_k is None:
            return num_isns
        if self.wait_for_k > num_isns:
            raise ConfigError(
                f"wait_for_k={self.wait_for_k} exceeds num_isns={num_isns}"
            )
        return self.wait_for_k

    def is_noop(self, num_isns: int) -> bool:
        """True when this policy reproduces wait-for-all exactly."""
        return (
            not self.hedging_enabled
            and self.effective_k(num_isns) == num_isns
        )
