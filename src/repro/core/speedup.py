"""Parallelism-efficiency model: speedup profiles and demand groups.

The paper models a request's parallelization efficiency with a *speedup
profile* ``{S_i | i = 1..P}`` mapping parallelism degree ``i`` to
speedup ``S_i`` (Section 3.1).  Because per-request speedup is hard to
predict, requests are classified into groups by sequential execution
time — short (<30 ms), mid (30-80 ms), long (>80 ms) in Figure 2 — and
the average profile of the group is used for scheduling decisions.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

import numpy as np

from ..config import DEFAULT_GROUP_BOUNDS_MS, validate_group_bounds
from ..errors import ConfigError

__all__ = ["SpeedupProfile", "SpeedupBook", "demand_group", "amdahl_profile"]


class SpeedupProfile:
    """Immutable map from parallelism degree to speedup.

    ``profile[i]`` (1-based degree) returns ``S_i``.  Profiles must
    start at ``S_1 = 1`` and be non-decreasing: adding threads never
    slows a request down in the model (overheads are folded into the
    diminishing returns of the curve, as the paper measures in Fig. 2).
    """

    __slots__ = ("_speedups",)

    def __init__(self, speedups: Sequence[float]) -> None:
        values = tuple(float(s) for s in speedups)
        if not values:
            raise ConfigError("speedup profile must have at least degree 1")
        if abs(values[0] - 1.0) > 1e-9:
            raise ConfigError(f"S_1 must equal 1.0, got {values[0]}")
        for a, b in zip(values, values[1:]):
            if b < a - 1e-9:
                raise ConfigError(f"speedups must be non-decreasing: {values}")
        if any(s > len(values) * 4.0 for s in values):
            raise ConfigError(f"implausible super-linear profile: {values}")
        self._speedups = values

    @property
    def max_degree(self) -> int:
        """The maximum parallelism degree ``P`` this profile covers."""
        return len(self._speedups)

    @property
    def speedups(self) -> tuple[float, ...]:
        """The raw ``(S_1, ..., S_P)`` tuple."""
        return self._speedups

    def __getitem__(self, degree: int) -> float:
        if not 1 <= degree <= len(self._speedups):
            raise IndexError(
                f"degree {degree} outside [1, {len(self._speedups)}]"
            )
        return self._speedups[degree - 1]

    def speedup(self, degree: int) -> float:
        """Speedup at ``degree``; degrees above ``P`` saturate at ``S_P``."""
        if degree < 1:
            raise IndexError(f"degree must be >= 1, got {degree}")
        return self._speedups[min(degree, len(self._speedups)) - 1]

    def execution_time(self, sequential_ms: float, degree: int) -> float:
        """Estimated execution time ``T_i = L / S_i`` of Section 3.1."""
        return sequential_ms / self.speedup(degree)

    def efficiency(self, degree: int) -> float:
        """Parallel efficiency ``S_i / i`` at the given degree."""
        return self.speedup(degree) / degree

    def truncated(self, max_degree: int) -> "SpeedupProfile":
        """A copy limited to ``max_degree`` entries."""
        if max_degree < 1:
            raise ConfigError("max_degree must be >= 1")
        return SpeedupProfile(self._speedups[:max_degree])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpeedupProfile) and self._speedups == other._speedups
        )

    def __hash__(self) -> int:
        return hash(self._speedups)

    def __repr__(self) -> str:
        body = ", ".join(f"{s:.2f}" for s in self._speedups)
        return f"SpeedupProfile([{body}])"


def amdahl_profile(
    max_degree: int, serial_fraction: float, per_thread_loss: float = 0.0
) -> SpeedupProfile:
    """Build an Amdahl-style profile with an optional coordination loss.

    ``S_d = 1 / (f + (1 - f) / d + c * (d - 1))`` where ``f`` is the
    serial fraction and ``c`` a per-extra-thread synchronisation loss.
    Used by the finance server (Section 5.1) and as a convenient
    synthetic profile in tests.
    """
    if not 0 <= serial_fraction < 1:
        raise ConfigError("serial_fraction must be in [0, 1)")
    if per_thread_loss < 0:
        raise ConfigError("per_thread_loss must be >= 0")
    speedups: list[float] = []
    best = 0.0
    for d in range(1, max_degree + 1):
        s = 1.0 / (
            serial_fraction
            + (1.0 - serial_fraction) / d
            + per_thread_loss * (d - 1)
        )
        best = max(best, s)  # keep the profile monotone (never remove threads)
        speedups.append(best)
    return SpeedupProfile(speedups)


def demand_group(
    demand_ms: float, bounds_ms: Sequence[float] = DEFAULT_GROUP_BOUNDS_MS
) -> int:
    """Group index of a sequential demand: 0 = short, ..., len(bounds) = longest."""
    return bisect_right(list(bounds_ms), demand_ms)


class SpeedupBook:
    """Per-group speedup profiles keyed by (predicted) sequential time.

    This is the lookup structure of Section 3.1: given a request's
    predicted sequential execution time, find its demand group and
    return that group's average speedup profile.
    """

    def __init__(
        self,
        profiles: Sequence[SpeedupProfile],
        bounds_ms: Sequence[float] = DEFAULT_GROUP_BOUNDS_MS,
    ) -> None:
        self._bounds = validate_group_bounds(bounds_ms)
        if len(profiles) != len(self._bounds) + 1:
            raise ConfigError(
                f"need {len(self._bounds) + 1} profiles for "
                f"{len(self._bounds)} bounds, got {len(profiles)}"
            )
        degrees = {p.max_degree for p in profiles}
        if len(degrees) != 1:
            raise ConfigError("all group profiles must share max_degree")
        self._profiles = tuple(profiles)

    @property
    def bounds_ms(self) -> tuple[float, ...]:
        """Ascending group boundaries in milliseconds."""
        return self._bounds

    @property
    def num_groups(self) -> int:
        """Number of parallelism-efficiency groups (paper default: 3)."""
        return len(self._profiles)

    @property
    def max_degree(self) -> int:
        """Maximum parallelism degree covered by every profile."""
        return self._profiles[0].max_degree

    @property
    def profiles(self) -> tuple[SpeedupProfile, ...]:
        """Profiles ordered from the shortest to the longest group."""
        return self._profiles

    def group_of(self, demand_ms: float) -> int:
        """Group index for a (predicted) sequential demand."""
        return demand_group(demand_ms, self._bounds)

    def profile_for(self, demand_ms: float) -> SpeedupProfile:
        """Profile of the group the (predicted) demand falls into."""
        return self._profiles[self.group_of(demand_ms)]

    def profile_of_group(self, group: int) -> SpeedupProfile:
        """Profile by explicit group index."""
        return self._profiles[group]

    @classmethod
    def from_samples(
        cls,
        demands_ms: Iterable[float],
        per_request_profiles: Iterable[SpeedupProfile],
        bounds_ms: Sequence[float] = DEFAULT_GROUP_BOUNDS_MS,
        max_degree: int | None = None,
    ) -> "SpeedupBook":
        """Average measured per-request profiles within each demand group.

        This is how the paper obtains Figure 2: execute a query log,
        classify queries by sequential time, and average the measured
        speedups per degree inside each class.
        """
        bounds = validate_group_bounds(bounds_ms)
        demands = list(demands_ms)
        profiles = list(per_request_profiles)
        if len(demands) != len(profiles):
            raise ConfigError("demands and profiles must align")
        if not demands:
            raise ConfigError("cannot build a SpeedupBook from zero samples")
        degree = max_degree or profiles[0].max_degree
        sums = np.zeros((len(bounds) + 1, degree))
        counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        for demand, profile in zip(demands, profiles):
            g = demand_group(demand, bounds)
            sums[g] += [profile.speedup(d) for d in range(1, degree + 1)]
            counts[g] += 1
        group_profiles: list[SpeedupProfile] = []
        for g in range(len(bounds) + 1):
            if counts[g] == 0:
                # An empty group inherits its shorter neighbour's profile
                # (conservative: shorter groups parallelize worse).
                inherited = (
                    group_profiles[-1]
                    if group_profiles
                    else SpeedupProfile([1.0] * degree)
                )
                group_profiles.append(inherited)
                continue
            mean = sums[g] / counts[g]
            mean[0] = 1.0
            mean = np.maximum.accumulate(mean)  # enforce monotonicity
            group_profiles.append(SpeedupProfile(mean.tolist()))
        return cls(group_profiles, bounds)

    def split_groups(self) -> "SpeedupBook":
        """Double the group count by halving every group (Section 4.6).

        Each group splits into two subgroups that share the parent's
        profile; used by the group-count sensitivity study where the
        paper observes <1 % improvement from 3 -> 6 groups.
        """
        new_bounds: list[float] = []
        new_profiles: list[SpeedupProfile] = []
        previous = 0.0
        for bound, profile in zip(self._bounds, self._profiles):
            mid = (previous + bound) / 2.0
            new_bounds.extend([mid, bound])
            new_profiles.extend([profile, profile])
            previous = bound
        # The open-ended longest group splits at 2x its lower bound.
        last_profile = self._profiles[-1]
        new_bounds.append(previous * 2.0)
        new_profiles.extend([last_profile, last_profile])
        return SpeedupBook(new_profiles, new_bounds)

    def __repr__(self) -> str:
        return (
            f"SpeedupBook(groups={self.num_groups}, bounds={self._bounds}, "
            f"max_degree={self.max_degree})"
        )
