"""Predictive parallelism: minimal degree to meet the target (Section 3.1).

Given the predicted sequential execution time ``L``, the request's
speedup profile ``{S_i}`` and the target completion time ``E``, TPC
selects ``d = argmin_{1<=i<=P} {T_i | T_i <= E}`` with ``T_i = L / S_i``
— the smallest degree whose estimated execution time meets the target.
Spending more threads to finish *earlier* than E buys nothing for the
tail and starves other requests, so the minimum is always preferred.
"""

from __future__ import annotations

from .speedup import SpeedupProfile

__all__ = ["select_degree"]


def select_degree(
    predicted_ms: float,
    target_ms: float,
    profile: SpeedupProfile,
    max_degree: int | None = None,
) -> int:
    """Smallest degree meeting the target, or the maximum if none does.

    Parameters
    ----------
    predicted_ms:
        Predicted sequential execution time ``L``.
    target_ms:
        Target completion time ``E`` from the target table.
    profile:
        Group speedup profile retrieved via the predicted time.
    max_degree:
        Optional cap ``P`` (defaults to the profile's max degree).

    Returns
    -------
    The chosen degree ``d``.  When even the maximum degree cannot meet
    ``E`` (a predicted-very-long request under a tight target), the
    maximum degree is used: the request will miss the target either
    way, and the most parallelism gives it the best finish time.
    """
    limit = profile.max_degree if max_degree is None else min(
        max_degree, profile.max_degree
    )
    if limit < 1:
        raise ValueError(f"max_degree must be >= 1, got {max_degree}")
    if predicted_ms <= target_ms:
        return 1
    for degree in range(2, limit + 1):
        if profile.execution_time(predicted_ms, degree) <= target_ms:
            return degree
    return limit
