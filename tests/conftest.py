"""Shared fixtures: cheap workloads, canonical profiles, helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    PredictorConfig,
    SearchWorkloadConfig,
    ServerConfig,
)
from repro.core.speedup import SpeedupBook, SpeedupProfile
from repro.core.target_table import TargetTable
from repro.finance import build_finance_workload
from repro.search import build_search_workload
from repro.sim.request import Request


SHORT_PROFILE = SpeedupProfile([1.0, 1.05, 1.08, 1.11, 1.14, 1.16])
MID_PROFILE = SpeedupProfile([1.0, 1.4, 1.6, 1.8, 1.95, 2.05])
LONG_PROFILE = SpeedupProfile([1.0, 1.8, 2.5, 3.2, 3.7, 4.1])


@pytest.fixture(scope="session")
def speedup_book() -> SpeedupBook:
    """The paper's three-group speedup book (Figure 2 values)."""
    return SpeedupBook([SHORT_PROFILE, MID_PROFILE, LONG_PROFILE])


@pytest.fixture(scope="session")
def target_table() -> TargetTable:
    """A small adaptive target table for policy tests."""
    return TargetTable([(0, 40), (4, 50), (8, 65), (16, 90), (32, 130)])


@pytest.fixture()
def server_config() -> ServerConfig:
    """The paper's ISN hardware model."""
    return ServerConfig()


@pytest.fixture(scope="session")
def tiny_search_config() -> SearchWorkloadConfig:
    """A miniature corpus configuration for fast integration tests."""
    return SearchWorkloadConfig(
        num_documents=3_000,
        vocabulary_size=1_500,
        mean_doc_length=120,
        hard_term_pool=150,
        easy_skip_top=15,
    )


@pytest.fixture(scope="session")
def tiny_search_workload(tiny_search_config):
    """A small but complete search workload (built once per session)."""
    return build_search_workload(
        seed=11,
        config=tiny_search_config,
        predictor_config=PredictorConfig(num_trees=60, max_depth=4),
        pool_size=1_200,
        use_cache=False,
    )


@pytest.fixture(scope="session")
def finance_workload():
    """The Section 5.1 finance workload."""
    return build_finance_workload()


def make_request(
    rid: int,
    demand_ms: float,
    predicted_ms: float | None = None,
    profile: SpeedupProfile = LONG_PROFILE,
) -> Request:
    """Build a request with sensible defaults for unit tests."""
    return Request(
        rid=rid,
        demand_ms=demand_ms,
        predicted_ms=demand_ms if predicted_ms is None else predicted_ms,
        speedup=profile,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(123)
