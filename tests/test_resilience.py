"""Tests for repro.resilience: faults, hedging, partial-wait aggregation."""

import numpy as np
import pytest

from repro.cluster import run_cluster_experiment
from repro.config import ClusterConfig, ServerConfig
from repro.errors import ConfigError, SimulationError
from repro.exec.cache import ResultCache
from repro.exec.pool import run_cell, run_sweep
from repro.exec.spec import CellSpec, WorkloadSpec
from repro.experiments.runner import run_search_experiment
from repro.resilience import (
    FaultKind,
    FaultSpec,
    FaultWindow,
    HedgePolicy,
    sample_fault_spec,
)
from repro.resilience.cluster import ResilientClusterResult
from repro.resilience.scenarios import get_scenario, run_scenario
from repro.rng import RngFactory
from repro.sim.engine import Engine
from repro.sim.request import RequestState
from repro.sim.server import Server

from conftest import make_request
from test_server import FixedDegreePolicy


# ---------------------------------------------------------------------------
# FaultSpec / FaultWindow
# ---------------------------------------------------------------------------

class TestFaultSpec:
    def test_window_validation(self):
        with pytest.raises(ConfigError):
            FaultWindow("bogus", 0, 0.0, 1.0)
        with pytest.raises(ConfigError):
            FaultWindow(FaultKind.SLOWDOWN, 0, 5.0, 1.0)  # t1 < t0
        with pytest.raises(ConfigError):
            FaultWindow(FaultKind.SLOWDOWN, 0, 0.0, 1.0, severity=0.5)
        with pytest.raises(ConfigError):
            FaultWindow(FaultKind.DEGRADED, 0, 0.0, 1.0, severity=2.5)
        with pytest.raises(ConfigError):
            FaultWindow(FaultKind.SLOWDOWN, -1, 0.0, 1.0, severity=2.0)

    def test_windows_canonically_ordered(self):
        a = FaultWindow(FaultKind.SLOWDOWN, 1, 5.0, 9.0, 2.0)
        b = FaultWindow(FaultKind.BLACKOUT, 0, 1.0, 2.0)
        assert FaultSpec((a, b)).windows == FaultSpec((b, a)).windows

    def test_noop_and_queries(self):
        assert FaultSpec.none().is_noop
        spec = FaultSpec.straggler(1, 3.0, t0_ms=10.0, t1_ms=20.0)
        assert not spec.is_noop
        assert spec.demand_multiplier(1, 15.0) == pytest.approx(3.0)
        assert spec.demand_multiplier(1, 20.0) == 1.0  # half-open
        assert spec.demand_multiplier(0, 15.0) == 1.0
        assert spec.worker_limit(1, 15.0) is None

    def test_overlapping_slowdowns_multiply(self):
        spec = FaultSpec(
            (
                FaultWindow(FaultKind.SLOWDOWN, 0, 0.0, 10.0, 2.0),
                FaultWindow(FaultKind.SLOWDOWN, 0, 5.0, 15.0, 3.0),
            )
        )
        assert spec.demand_multiplier(0, 7.0) == pytest.approx(6.0)

    def test_degraded_takes_smallest_cap(self):
        spec = FaultSpec(
            (
                FaultWindow(FaultKind.DEGRADED, 0, 0.0, 10.0, 8.0),
                FaultWindow(FaultKind.DEGRADED, 0, 5.0, 15.0, 4.0),
            )
        )
        assert spec.worker_limit(0, 2.0) == 8  # only the 8-cap open
        assert spec.worker_limit(0, 7.0) == 4  # overlap: smallest wins
        assert spec.worker_limit(0, 20.0) is None

    def test_validate_for_bounds(self):
        spec = FaultSpec.straggler(5, 2.0)
        with pytest.raises(ConfigError):
            spec.validate_for(4)
        spec.validate_for(6)

    def test_rolling_blackout_allowed_simultaneous_rejected(self):
        # Staggered blackouts covering every ISN are fine ...
        rolling = FaultSpec.rolling_blackout(3, 100.0, 200.0)
        rolling.validate_for(3)
        # ... but a spec with every ISN down at once is unservable.
        together = FaultSpec(
            tuple(
                FaultWindow(FaultKind.BLACKOUT, isn, 0.0, 50.0)
                for isn in range(3)
            )
        )
        with pytest.raises(ConfigError):
            together.validate_for(3)

    def test_transition_times_sorted_unique(self):
        spec = FaultSpec.rolling_blackout(2, 100.0, 50.0)
        points = spec.transition_times(FaultKind.BLACKOUT)
        assert points == sorted(set(points))
        assert (0.0, 0) in points and (150.0, 1) in points

    def test_sampling_deterministic(self):
        kwargs = dict(
            num_isns=6, horizon_ms=5_000.0,
            slowdown_probability=0.5, degraded_probability=0.5,
        )
        a = sample_fault_spec(RngFactory(7), **kwargs)
        b = sample_fault_spec(RngFactory(7), **kwargs)
        assert a == b
        c = sample_fault_spec(RngFactory(8), **kwargs)
        assert a != c  # different seed, different campaign

    def test_merged_with(self):
        merged = FaultSpec.straggler(0, 2.0).merged_with(
            FaultSpec.degraded(1, 4, 0.0, 10.0)
        )
        assert len(merged.windows) == 2


# ---------------------------------------------------------------------------
# HedgePolicy
# ---------------------------------------------------------------------------

class TestHedgePolicy:
    def test_default_is_noop(self):
        assert HedgePolicy().is_noop(5)
        assert HedgePolicy.wait_for_all().effective_k(5) == 5

    def test_partial_and_hedged_are_not_noop(self):
        assert not HedgePolicy.partial(3).is_noop(5)
        assert not HedgePolicy.hedged(50.0).is_noop(5)
        assert HedgePolicy.partial(5).is_noop(5)  # k == n is wait-for-all

    def test_validation(self):
        with pytest.raises(ConfigError):
            HedgePolicy(wait_for_k=0)
        with pytest.raises(ConfigError):
            HedgePolicy(hedge_timeout_ms=0.0)
        with pytest.raises(ConfigError):
            HedgePolicy(max_hedges_per_query=0)
        with pytest.raises(ConfigError):
            HedgePolicy.partial(6).effective_k(5)


# ---------------------------------------------------------------------------
# Server cancellation and worker limits
# ---------------------------------------------------------------------------

class TestServerResilienceHooks:
    def test_cancel_running_returns_partial_work(self):
        server = Server(ServerConfig(), FixedDegreePolicy(1), engine=Engine())
        req = make_request(0, 50.0)
        server.submit(req)
        server.engine.run_until(20.0)
        work = server.cancel_request(req)
        assert req.state is RequestState.CANCELLED
        # Degree 1, uncontended: 20 ms wall-clock = 20 ms of work.
        assert work == pytest.approx(20.0, abs=1e-6)
        assert server.total_active_threads == 0
        assert server.cancelled_count == 1
        assert len(server.recorder) == 0  # never recorded as completed

    def test_cancel_queued_returns_zero_and_frees_slot(self):
        server = Server(
            ServerConfig(worker_threads=1, max_parallelism=1),
            FixedDegreePolicy(1),
            engine=Engine(),
        )
        first = make_request(0, 30.0)
        queued = make_request(1, 10.0)
        server.submit(first)
        server.submit(queued)
        assert server.queue_length == 1
        assert server.cancel_request(queued) == 0.0
        assert server.queue_length == 0
        server.run_to_completion(1)

    def test_cancel_completed_rejected(self):
        server = Server(ServerConfig(), FixedDegreePolicy(1), engine=Engine())
        req = make_request(0, 5.0)
        server.submit(req)
        server.run_to_completion(1)
        with pytest.raises(SimulationError):
            server.cancel_request(req)

    def test_cancellation_unblocks_queue(self):
        server = Server(
            ServerConfig(worker_threads=1, max_parallelism=1),
            FixedDegreePolicy(1),
            engine=Engine(),
        )
        hog = make_request(0, 1000.0)
        waiting = make_request(1, 5.0)
        server.submit(hog)
        server.submit(waiting)
        server.cancel_request(hog)
        server.run_to_completion(1)
        assert waiting.state is RequestState.COMPLETED

    def test_worker_limit_gates_dispatch_and_drains(self):
        server = Server(
            ServerConfig(worker_threads=4, max_parallelism=1),
            FixedDegreePolicy(1),
            engine=Engine(),
        )
        reqs = [make_request(i, 40.0) for i in range(4)]
        for r in reqs:
            server.submit(r)
        assert server.running_count == 4
        server.set_worker_limit(2)
        # No preemption: the four running requests keep their workers.
        assert server.running_count == 4
        late = make_request(9, 10.0)
        server.submit(late)
        assert late.state is RequestState.QUEUED  # gated by the cap
        server.run_to_completion(5)
        server.set_worker_limit(None)
        assert server.worker_limit == server.config.worker_threads

    def test_worker_limit_validation(self):
        server = Server(ServerConfig(), FixedDegreePolicy(1), engine=Engine())
        with pytest.raises(SimulationError):
            server.set_worker_limit(0)


# ---------------------------------------------------------------------------
# Cluster-level behaviour
# ---------------------------------------------------------------------------

class TestResilientCluster:
    def test_noop_options_keep_plain_path(
        self, tiny_search_workload, target_table
    ):
        kwargs = dict(
            qps=200.0, n_queries=200, seed=23,
            cluster_config=ClusterConfig(num_isns=3),
            target_table=target_table,
        )
        plain = run_cluster_experiment(tiny_search_workload, "TPC", **kwargs)
        noop = run_cluster_experiment(
            tiny_search_workload, "TPC",
            fault_spec=FaultSpec.none(),
            hedge_policy=HedgePolicy.wait_for_all(),
            **kwargs,
        )
        # No-op resilience options must not even switch the code path.
        assert not isinstance(noop, ResilientClusterResult)
        np.testing.assert_array_equal(
            plain.aggregator_latencies_ms, noop.aggregator_latencies_ms
        )
        np.testing.assert_array_equal(
            plain.isn_latencies_ms, noop.isn_latencies_ms
        )

    def test_single_isn_cluster_matches_plain_experiment(
        self, tiny_search_workload, target_table
    ):
        # One ISN, zero jitter, zero network overhead, no faults: the
        # cluster run degenerates to the plain single-server experiment.
        cluster = run_cluster_experiment(
            tiny_search_workload, "TPC", qps=200.0, n_queries=400, seed=31,
            cluster_config=ClusterConfig(
                num_isns=1, demand_jitter_sigma=0.0, network_overhead_ms=0.0
            ),
            target_table=target_table,
        )
        plain = run_search_experiment(
            tiny_search_workload, "TPC", qps=200.0, n_requests=400, seed=31,
            target_table=target_table,
        )
        np.testing.assert_array_equal(
            np.asarray(cluster.isn_recorders[0].responses_ms),
            np.asarray(plain.recorder.responses_ms),
        )
        np.testing.assert_array_equal(
            np.sort(cluster.isn_latencies_ms),
            np.sort(plain.recorder.responses),
        )

    def test_straggler_hedging_improves_p999(
        self, tiny_search_workload, target_table
    ):
        # Acceptance criterion: on the one-straggler scenario, hedged
        # TPC improves aggregator P99.9 by >= 20 % over wait-for-all.
        fault = FaultSpec.straggler(0, 4.0, t0_ms=0.0, t1_ms=1e7)
        kwargs = dict(
            qps=250.0, n_queries=600, seed=41,
            cluster_config=ClusterConfig(num_isns=4),
            target_table=target_table, fault_spec=fault,
        )
        base = run_cluster_experiment(tiny_search_workload, "TPC", **kwargs)
        hedged = run_cluster_experiment(
            tiny_search_workload, "TPC",
            hedge_policy=HedgePolicy.hedged(60.0), **kwargs,
        )
        p999_base = base.aggregator_percentile(99.9)
        p999_hedged = hedged.aggregator_percentile(99.9)
        assert p999_hedged < 0.8 * p999_base
        stats = hedged.resilience
        assert stats.hedges_issued > 0
        assert stats.hedge_wins > 0
        assert 0.0 < stats.hedge_rate < 1.0
        assert stats.wasted_work_ms > 0.0
        assert stats.wasted_work_fraction < 0.5
        # The unhedged faulted run still reports (empty) accounting.
        assert base.resilience.hedges_issued == 0
        assert base.resilience.wasted_work_ms == 0.0

    def test_resilient_run_deterministic(
        self, tiny_search_workload, target_table
    ):
        fault = FaultSpec.straggler(1, 3.0, t0_ms=0.0, t1_ms=1e7)
        kwargs = dict(
            qps=200.0, n_queries=300, seed=19,
            cluster_config=ClusterConfig(num_isns=3),
            target_table=target_table,
            fault_spec=fault,
            hedge_policy=HedgePolicy.hedged(50.0),
        )
        a = run_cluster_experiment(tiny_search_workload, "TPC", **kwargs)
        b = run_cluster_experiment(
            tiny_search_workload, "TPC", workers=4, **kwargs
        )
        # workers is irrelevant on the coupled path: bit-identical.
        np.testing.assert_array_equal(
            a.aggregator_latencies_ms, b.aggregator_latencies_ms
        )
        np.testing.assert_array_equal(a.isn_latencies_ms, b.isn_latencies_ms)
        assert a.resilience == b.resilience

    def test_wait_for_k_reduces_tail_and_counts_late(
        self, tiny_search_workload, target_table
    ):
        kwargs = dict(
            qps=250.0, n_queries=400, seed=29,
            cluster_config=ClusterConfig(num_isns=4),
            target_table=target_table,
        )
        all_of = run_cluster_experiment(tiny_search_workload, "TPC", **kwargs)
        partial = run_cluster_experiment(
            tiny_search_workload, "TPC",
            hedge_policy=HedgePolicy.partial(3), **kwargs,
        )
        assert isinstance(partial, ResilientClusterResult)
        assert (
            partial.aggregator_percentile(99)
            <= all_of.aggregator_percentile(99)
        )
        stats = partial.resilience
        assert stats.late_completions > 0
        assert stats.k_coverage_mean == pytest.approx(0.75, abs=0.01)

    def test_blackout_strict_wait_for_all_rejected(
        self, tiny_search_workload, target_table
    ):
        with pytest.raises(ConfigError):
            run_cluster_experiment(
                tiny_search_workload, "TPC", qps=100.0, n_queries=50, seed=3,
                cluster_config=ClusterConfig(num_isns=3),
                target_table=target_table,
                fault_spec=FaultSpec.blackout(0, 10.0, 50.0),
            )

    def test_blackout_with_partial_wait_terminates(
        self, tiny_search_workload, target_table
    ):
        result = run_cluster_experiment(
            tiny_search_workload, "TPC", qps=200.0, n_queries=300, seed=23,
            cluster_config=ClusterConfig(num_isns=3),
            target_table=target_table,
            fault_spec=FaultSpec.rolling_blackout(
                3, duration_ms=200.0, stagger_ms=500.0, start_ms=100.0
            ),
            hedge_policy=HedgePolicy.partial(2),
        )
        assert len(result.aggregator_latencies_ms) == 300
        stats = result.resilience
        assert stats.dropped_replicas > 0
        assert stats.k_coverage_mean < 1.0

    def test_hedging_recovers_blacked_out_shard(
        self, tiny_search_workload, target_table
    ):
        # Wait-for-all + blackout is only serviceable because hedging
        # re-issues the dropped shard on a healthy node.
        result = run_cluster_experiment(
            tiny_search_workload, "TPC", qps=100.0, n_queries=150, seed=7,
            cluster_config=ClusterConfig(num_isns=3),
            target_table=target_table,
            fault_spec=FaultSpec.blackout(0, 0.0, 400.0),
            hedge_policy=HedgePolicy.hedged(40.0),
        )
        assert len(result.aggregator_latencies_ms) == 150
        assert result.resilience.dropped_replicas > 0
        assert result.resilience.hedge_wins > 0

    def test_degraded_window_applies(
        self, tiny_search_workload, target_table
    ):
        slow = run_cluster_experiment(
            tiny_search_workload, "TPC", qps=250.0, n_queries=300, seed=13,
            cluster_config=ClusterConfig(num_isns=2),
            target_table=target_table,
            fault_spec=FaultSpec.degraded(0, workers=1, t0_ms=0.0, t1_ms=1e7),
        )
        healthy = run_cluster_experiment(
            tiny_search_workload, "TPC", qps=250.0, n_queries=300, seed=13,
            cluster_config=ClusterConfig(num_isns=2),
            target_table=target_table,
        )
        # A one-worker ISN forces sequential dispatch: its tail (and so
        # the aggregator tail) must be strictly worse than healthy.
        assert (
            slow.aggregator_percentile(99) > healthy.aggregator_percentile(99)
        )


# ---------------------------------------------------------------------------
# exec-layer integration (cluster cells, hashing, caching)
# ---------------------------------------------------------------------------

def _tiny_workload_spec(tiny_search_workload):
    spec = WorkloadSpec.from_workload(tiny_search_workload)
    assert spec is not None, "tiny workload must carry provenance"
    return spec


class TestExecIntegration:
    def test_fault_spec_changes_cell_hash(
        self, tiny_search_workload, target_table
    ):
        wspec = _tiny_workload_spec(tiny_search_workload)
        base = dict(
            workload=wspec, policy_name="TPC", qps=100.0, n_requests=50,
            seed=1, target_table=target_table,
            cluster_config=ClusterConfig(num_isns=2),
        )
        plain = CellSpec.for_experiment(**base)
        faulted = CellSpec.for_experiment(
            fault_spec=FaultSpec.straggler(0, 2.0), **base
        )
        hedged = CellSpec.for_experiment(
            hedge_policy=HedgePolicy.hedged(50.0), **base
        )
        assert len({plain.content_hash, faulted.content_hash,
                    hedged.content_hash}) == 3
        # Equal specs hash equally (frozen value semantics).
        again = CellSpec.for_experiment(
            fault_spec=FaultSpec.straggler(0, 2.0), **base
        )
        assert faulted.content_hash == again.content_hash

    def test_resilience_options_require_cluster(self, tiny_search_workload):
        wspec = _tiny_workload_spec(tiny_search_workload)
        with pytest.raises(ConfigError):
            CellSpec.for_experiment(
                wspec, "TPC", 100.0, 50, 1,
                fault_spec=FaultSpec.straggler(0, 2.0),
            )

    def test_cluster_cell_executes_and_caches(
        self, tiny_search_workload, target_table, tmp_path
    ):
        wspec = _tiny_workload_spec(tiny_search_workload)
        spec = CellSpec.for_experiment(
            wspec, "TPC", 200.0, 150, 5,
            target_table=target_table,
            cluster_config=ClusterConfig(num_isns=2),
            fault_spec=FaultSpec.straggler(0, 3.0),
            hedge_policy=HedgePolicy.hedged(60.0),
        )
        cache = ResultCache(tmp_path)
        cold = run_cell(spec, cache=cache)
        assert len(cold.responses_ms) == 150
        assert cold.extras["hedges_issued"] >= 0
        assert cold.extras["num_isns"] == 2.0
        warm = run_cell(spec, cache=cache)
        assert warm.wall_time_s == 0.0  # served from cache
        np.testing.assert_array_equal(cold.responses_ms, warm.responses_ms)
        assert cold.extras == warm.extras

    def test_cluster_cells_parallel_match_serial(
        self, tiny_search_workload, target_table
    ):
        wspec = _tiny_workload_spec(tiny_search_workload)
        cells = [
            CellSpec.for_experiment(
                wspec, policy, 200.0, 120, 5,
                target_table=target_table,
                cluster_config=ClusterConfig(num_isns=2),
                fault_spec=FaultSpec.straggler(0, 3.0),
                hedge_policy=HedgePolicy.hedged(60.0),
            )
            for policy in ("Sequential", "TPC")
        ]
        serial = run_sweep(cells, workers=1)
        parallel = run_sweep(cells, workers=2)
        for a, b in zip(serial, parallel):
            np.testing.assert_array_equal(a.responses_ms, b.responses_ms)
            assert a.extras == b.extras


# ---------------------------------------------------------------------------
# Scenarios and CLI
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def straggler_result(tiny_search_workload, target_table):
    """One fast one-straggler scenario run shared across tests."""
    return run_scenario(
        "one-straggler",
        fast=True,
        workers=1,
        workload_spec=_tiny_workload_spec(tiny_search_workload),
        target_table=target_table,
    )


class TestScenarios:
    def test_registry_lookup(self):
        assert get_scenario("one-straggler").name == "one-straggler"
        with pytest.raises(ConfigError):
            get_scenario("nope")

    def test_one_straggler_scenario_runs(self, straggler_result):
        result = straggler_result
        assert result.num_isns == 4
        assert set(result.variant_labels) == {"wait-all", "hedge-60ms"}
        for policy in ("Sequential", "Pred", "TPC"):
            for variant in result.variant_labels:
                row = result.row(policy, variant)
                assert row["p999_ms"] > 0
        # Hedging must beat wait-for-all on the straggler for TPC.
        assert result.improvement("TPC", "hedge-60ms") >= 0.2
        hedged = result.row("TPC", "hedge-60ms")
        assert hedged["hedge_rate"] > 0.0
        assert hedged["wasted_work_ms"] > 0.0

    def test_cli_list(self, capsys):
        from repro.resilience.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "healthy-baseline", "one-straggler",
            "rolling-blackout", "overloaded-hedging",
        ):
            assert name in out

    def test_report_roundtrip(self, straggler_result, tmp_path):
        import json

        from repro.resilience.report import (
            build_report,
            render_summary,
            write_report,
        )

        report = build_report([straggler_result])
        assert report["schema_version"] == 1
        assert report["status"] == "ok"
        path = write_report(report, tmp_path / "BENCH_resilience.json")
        loaded = json.loads(path.read_text())
        assert loaded["scenarios"][0]["name"] == "one-straggler"
        rows = loaded["scenarios"][0]["rows"]
        assert {r["policy"] for r in rows} == {"Sequential", "Pred", "TPC"}
        summary = render_summary([straggler_result])
        assert "one-straggler" in summary and "TPC" in summary
