"""The aggregator: fan-out, wait-for-k-of-n, merge.

Tracks every in-flight logical query and records its aggregator-level
response time once enough ISN replicas have completed, plus a fixed
network/merge overhead (the paper measures ~2 ms average of
non-compute time per query, Section 2.2).

By default the aggregator waits for *all* ``num_isns`` replicas — the
paper's Figure 8 configuration, where the slowest ISN sets the
user-visible latency.  ``wait_for_k`` enables partial-wait aggregation
(answer after the first ``k`` replicas, trading result completeness
for tail latency); replicas that report after the answer are tolerated
and counted as late.  Each completion is attributed to the responding
ISN, and a second completion from the same ISN for the same query is a
protocol violation that raises :class:`SimulationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = ["AggregatedQuery", "Aggregator"]


@dataclass
class AggregatedQuery:
    """In-flight bookkeeping of one logical query."""

    qid: int
    arrival_ms: float
    #: Replica completions still needed before the aggregator answers.
    pending: int
    slowest_finish_ms: float = float("-inf")
    isn_responses_ms: list[float] = field(default_factory=list)
    #: ISNs that have already responded for this query.
    seen_isns: set[int] = field(default_factory=set)


class Aggregator:
    """Collects per-ISN completions and emits aggregator latencies."""

    def __init__(
        self,
        num_isns: int,
        network_overhead_ms: float = 2.0,
        wait_for_k: int | None = None,
    ) -> None:
        if num_isns < 1:
            raise SimulationError("num_isns must be >= 1")
        if network_overhead_ms < 0:
            raise SimulationError("network_overhead_ms must be >= 0")
        if wait_for_k is None:
            wait_for_k = num_isns
        if not 1 <= wait_for_k <= num_isns:
            raise SimulationError(
                f"wait_for_k must be in [1, num_isns], got {wait_for_k}"
            )
        self.num_isns = num_isns
        self.network_overhead_ms = float(network_overhead_ms)
        self.wait_for_k = int(wait_for_k)
        self._inflight: dict[int, AggregatedQuery] = {}
        #: ISNs that responded per already-answered query (late/duplicate
        #: detection after partial-wait emission).
        self._emitted: dict[int, set[int]] = {}
        self.latencies_ms: list[float] = []
        #: Per-query list of individual ISN response times (for the
        #: aggregator-vs-ISN percentile comparison of Figure 8(b)).
        self.isn_latencies_ms: list[float] = []
        #: Per emitted query: fraction of replicas in hand at answer time.
        self.k_coverages: list[float] = []
        #: Replica completions that arrived after the answer (k < n only).
        self.late_completions = 0

    @property
    def completed(self) -> int:
        """Logical queries answered so far."""
        return len(self.latencies_ms)

    @property
    def inflight(self) -> int:
        """Logical queries still waiting for at least one ISN."""
        return len(self._inflight)

    def begin(self, qid: int, arrival_ms: float) -> None:
        """Register the fan-out of a new logical query."""
        if qid in self._inflight or qid in self._emitted:
            raise SimulationError(f"query {qid} already in flight")
        self._inflight[qid] = AggregatedQuery(
            qid=qid, arrival_ms=arrival_ms, pending=self.wait_for_k
        )

    def on_isn_complete(self, qid: int, finish_ms: float, isn: int) -> bool:
        """Record the completion of ISN ``isn``'s replica of ``qid``.

        Returns True when this completion reached the wait-for-k quorum
        (the aggregator responds to the user at that moment).  A second
        completion from the same ISN for the same query raises
        :class:`SimulationError` — the transport layer must deliver each
        replica's answer at most once.
        """
        if not 0 <= isn < self.num_isns:
            raise SimulationError(
                f"isn must be in [0, {self.num_isns}), got {isn}"
            )
        late = self._emitted.get(qid)
        if late is not None:
            if isn in late:
                raise SimulationError(
                    f"duplicate completion from ISN {isn} for query {qid}"
                )
            late.add(isn)
            self.late_completions += 1
            return False
        entry = self._inflight.get(qid)
        if entry is None:
            raise SimulationError(f"query {qid} is not in flight")
        if isn in entry.seen_isns:
            raise SimulationError(
                f"duplicate completion from ISN {isn} for query {qid}"
            )
        if finish_ms < entry.arrival_ms:
            raise SimulationError("completion precedes arrival")
        entry.seen_isns.add(isn)
        entry.pending -= 1
        entry.slowest_finish_ms = max(entry.slowest_finish_ms, finish_ms)
        entry.isn_responses_ms.append(finish_ms - entry.arrival_ms)
        if entry.pending > 0:
            return False
        del self._inflight[entry.qid]
        self._emitted[entry.qid] = entry.seen_isns
        latency = (
            entry.slowest_finish_ms - entry.arrival_ms + self.network_overhead_ms
        )
        self.latencies_ms.append(latency)
        self.isn_latencies_ms.extend(entry.isn_responses_ms)
        self.k_coverages.append(len(entry.seen_isns) / self.num_isns)
        return True
