"""F6 — Figure 6: TP (no correction) vs TPC, P99 and P99.9.

Expected shape (Section 4.3): the two match at P99 (prediction is
accurate enough there), while dynamic correction buys TPC a visibly
lower P99.9 — the paper reports 40-65 ms.  Correction also lifts the
fraction of long queries reaching high degrees.
"""

from conftest import emit, qps_grid
from repro.experiments.report import format_table


def test_fig6_tp_vs_tpc(benchmark, main_sweep):
    sweep = benchmark.pedantic(lambda: main_sweep, rounds=1, iterations=1)
    grid = qps_grid()
    rows = [
        [
            int(qps),
            round(sweep["TP"][i].p99_ms, 1),
            round(sweep["TPC"][i].p99_ms, 1),
            round(sweep["TP"][i].p999_ms, 1),
            round(sweep["TPC"][i].p999_ms, 1),
        ]
        for i, qps in enumerate(grid)
    ]
    emit(
        "fig6_tp_vs_tpc",
        format_table(
            ["QPS", "TP p99", "TPC p99", "TP p99.9", "TPC p99.9"],
            rows,
            title="Figure 6 - contribution of dynamic correction",
        ),
    )

    p99_gaps = []
    p999_gaps = []
    for i in range(len(grid)):
        p99_gaps.append(sweep["TP"][i].p99_ms - sweep["TPC"][i].p99_ms)
        p999_gaps.append(sweep["TP"][i].p999_ms - sweep["TPC"][i].p999_ms)
        # TPC never loses to TP (correction can only help).
        assert sweep["TPC"][i].p999_ms <= sweep["TP"][i].p999_ms * 1.05
    # P99.9 improvement is substantial somewhere in the load range
    # (paper: 40-65 ms).
    assert max(p999_gaps) > 15.0
    # P99 improvement is comparatively small: the policies are nearly
    # the same below the misprediction percentile.
    assert max(p99_gaps) < max(p999_gaps)


def test_correction_raises_long_query_degrees(benchmark, main_sweep):
    """Section 4.3: correction increases the share of long queries that
    reach high (>3) parallelism degrees."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    grid = qps_grid()
    mid = len(grid) // 2
    tp = main_sweep["TP"][mid].degree_distribution()
    tpc = main_sweep["TPC"][mid].degree_distribution()
    high_tp = sum(tp["long"][3:])
    high_tpc = sum(tpc["long"][3:])
    assert high_tpc >= high_tp
