"""Tests for the dynamic-correction controller (Section 3.2)."""

import pytest

from repro.core.correction import CorrectionController


class TestCorrectionController:
    def test_raises_by_idle_workers(self):
        ctl = CorrectionController(max_degree=6, recheck_ms=5.0)
        decision = ctl.decide(current_degree=1, idle_workers=3)
        assert decision.new_degree == 4

    def test_clamped_at_max_degree(self):
        ctl = CorrectionController(max_degree=6, recheck_ms=5.0)
        decision = ctl.decide(current_degree=2, idle_workers=20)
        assert decision.new_degree == 6
        assert decision.recheck_after_ms is None  # nothing left to do

    def test_partial_grant_schedules_recheck(self):
        ctl = CorrectionController(max_degree=6, recheck_ms=5.0)
        decision = ctl.decide(current_degree=1, idle_workers=2)
        assert decision.new_degree == 3
        assert decision.recheck_after_ms == 5.0

    def test_no_idle_workers_retries_later(self):
        ctl = CorrectionController(max_degree=6, recheck_ms=5.0)
        decision = ctl.decide(current_degree=2, idle_workers=0)
        assert decision.new_degree is None
        assert decision.recheck_after_ms == 5.0

    def test_negative_idle_workers_treated_as_zero(self):
        ctl = CorrectionController(max_degree=6, recheck_ms=5.0)
        decision = ctl.decide(current_degree=2, idle_workers=-1)
        assert decision.new_degree is None

    def test_already_at_max_stops_checking(self):
        ctl = CorrectionController(max_degree=6, recheck_ms=5.0)
        decision = ctl.decide(current_degree=6, idle_workers=10)
        assert decision.new_degree is None
        assert decision.recheck_after_ms is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CorrectionController(max_degree=0, recheck_ms=5.0)
        with pytest.raises(ValueError):
            CorrectionController(max_degree=6, recheck_ms=0.0)
