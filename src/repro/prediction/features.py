"""Pre-execution query features.

Mirrors the feature families of the predictor in [21]: term features
(IDF / document-frequency statistics of each keyword) and query
features (keyword count, aggregate posting volume).  Everything here is
known *before* the query runs — posting-list lengths are index
metadata.  What is deliberately absent is the number of documents that
will actually match (the intersection size), which drives the scoring
phase's cost: that gap is the structural source of prediction error.
"""

from __future__ import annotations

import numpy as np

from ..search.index import InvertedIndex
from ..search.query import Query

__all__ = ["QUERY_FEATURE_NAMES", "query_features", "query_feature_matrix"]

#: Ordered names of the feature vector produced by :func:`query_features`.
QUERY_FEATURE_NAMES: tuple[str, ...] = (
    "num_keywords",
    "log_total_postings",
    "log_min_df",
    "log_max_df",
    "log_second_max_df",
    "mean_idf",
    "min_idf",
    "sum_idf",
)


def query_features(query: Query, index: InvertedIndex) -> np.ndarray:
    """Feature vector of one query (see :data:`QUERY_FEATURE_NAMES`)."""
    term_ids = np.asarray(query.term_ids, dtype=np.int64)
    dfs = index.document_frequencies[term_ids].astype(np.float64)
    idfs = index.idf_array(term_ids)
    sorted_dfs = np.sort(dfs)[::-1]
    second_max = sorted_dfs[1] if len(sorted_dfs) > 1 else sorted_dfs[0]
    return np.array(
        [
            float(len(term_ids)),
            float(np.log1p(dfs.sum())),
            float(np.log1p(dfs.min())),
            float(np.log1p(dfs.max())),
            float(np.log1p(second_max)),
            float(idfs.mean()),
            float(idfs.min()),
            float(idfs.sum()),
        ]
    )


def query_feature_matrix(
    queries: list[Query], index: InvertedIndex
) -> np.ndarray:
    """Stacked feature matrix for a query list."""
    if not queries:
        return np.empty((0, len(QUERY_FEATURE_NAMES)))
    return np.vstack([query_features(q, index) for q in queries])
