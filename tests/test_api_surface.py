"""Tests of the public API surface and package-level contracts."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_is_semver(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_subpackages_importable(self):
        for sub in (
            "core", "sim", "search", "prediction", "policies",
            "cluster", "finance", "experiments", "analysis",
            "resilience",
        ):
            module = importlib.import_module(f"repro.{sub}")
            assert hasattr(module, "__all__")

    def test_error_hierarchy_rooted(self):
        from repro.errors import (
            CalibrationError,
            ConfigError,
            PredictionError,
            ReproError,
            SchedulingError,
            SimulationError,
            TargetTableError,
            WorkloadError,
        )

        for exc in (
            ConfigError,
            SimulationError,
            SchedulingError,
            WorkloadError,
            CalibrationError,
            PredictionError,
            TargetTableError,
        ):
            assert issubclass(exc, ReproError)
        # Scheduling errors are simulation errors (catchable together).
        assert issubclass(SchedulingError, SimulationError)
        assert issubclass(CalibrationError, WorkloadError)

    def test_public_items_documented(self):
        """Every public symbol re-exported at top level has a docstring."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if name == "__version__":
                continue
            assert getattr(obj, "__doc__", None), f"repro.{name} undocumented"

    def test_module_docstrings_everywhere(self):
        import pathlib

        src = pathlib.Path(repro.__file__).parent
        for path in src.rglob("*.py"):
            relative = str(path.relative_to(src))[:-3]
            parts = [p for p in relative.replace("\\", "/").split("/") if p]
            module_name = ".".join(["repro", *parts]).removesuffix(".__init__")
            module = importlib.import_module(module_name)
            assert module.__doc__, f"{module_name} lacks a module docstring"


class TestScenarioContracts:
    def test_default_tables_are_valid(self):
        from repro.experiments import (
            DEFAULT_FINANCE_TARGET_TABLE,
            DEFAULT_SEARCH_TARGET_TABLE,
        )

        for table in (DEFAULT_SEARCH_TARGET_TABLE, DEFAULT_FINANCE_TARGET_TABLE):
            targets = [table.target_for(x) for x in range(0, 40, 2)]
            assert all(b >= a for a, b in zip(targets, targets[1:]))

    def test_search_table_tightest_when_idle(self):
        from repro.experiments import DEFAULT_SEARCH_TARGET_TABLE as table

        assert table.target_for(0.0) == min(table.targets)

    def test_default_workload_cached(self):
        from repro.experiments.scenarios import default_workload

        assert default_workload.cache_info is not None  # lru_cache wrapped

    def test_policy_registry_matches_figure_sets(self):
        from repro.experiments import FIGURE_POLICIES
        from repro.policies import policy_names

        names = set(policy_names())
        for policies in FIGURE_POLICIES.values():
            assert set(policies) <= names
