"""Load-aware RampUp: incremental parallelism with a load-chosen interval.

Section 4.4 notes that "even when the RampUp policy takes load into
account — i.e., using the best RampUp interval at any given load — the
latency is still higher than TPC", because any non-zero interval defers
the parallelism long queries need.  This policy implements that
strongest RampUp variant: the ramp interval is selected per request
from a (load -> interval) table at dispatch time, small intervals when
the system is idle (ramp fast, capacity is free) and large ones when
busy (ramp lazily, threads are scarce).  It is the closest cousin of
few-to-many incremental parallelism [15] in our policy set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigError
from ..sim.load import LoadMetric, load_value
from .base import ParallelismPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = ["AdaptiveRampUpPolicy"]

#: Default (load, interval) breakpoints: ramp every 5 ms when idle,
#: back off to 20 ms when the machine is crowded.
DEFAULT_INTERVAL_TABLE: tuple[tuple[float, float], ...] = (
    (4.0, 5.0),
    (10.0, 10.0),
    (float("inf"), 20.0),
)


class AdaptiveRampUpPolicy(ParallelismPolicy):
    """RampUp with a per-request, load-selected interval."""

    name = "RampUp-adaptive"

    def __init__(
        self,
        interval_table: Sequence[tuple[float, float]] = DEFAULT_INTERVAL_TABLE,
        load_metric: LoadMetric = LoadMetric.ALL_THREADS,
    ) -> None:
        table = [(float(d), float(iv)) for d, iv in interval_table]
        if not table:
            raise ConfigError("interval_table must be non-empty")
        if any(b[0] <= a[0] for a, b in zip(table, table[1:])):
            raise ConfigError("interval_table loads must be ascending")
        if any(iv <= 0 for _, iv in table):
            raise ConfigError("intervals must be positive")
        self.interval_table = tuple(table)
        self.load_metric = load_metric
        # Per-request chosen interval, keyed by rid (cleared lazily).
        self._intervals: dict[int, float] = {}

    def _interval_for(self, server: "Server") -> float:
        load = load_value(server, self.load_metric)
        for breakpoint_load, interval in self.interval_table:
            if load <= breakpoint_load:
                return interval
        return self.interval_table[-1][1]

    def initial_degree(self, request: "Request", server: "Server") -> int:
        self._intervals[request.rid] = self._interval_for(server)
        return 1

    def first_check_delay(
        self, request: "Request", server: "Server"
    ) -> float | None:
        return self._intervals.get(request.rid, self.interval_table[-1][1])

    def on_check(
        self, request: "Request", server: "Server"
    ) -> tuple[int | None, float | None]:
        max_degree = server.config.max_parallelism
        interval = self._intervals.get(request.rid)
        if request.degree >= max_degree:
            self._intervals.pop(request.rid, None)
            return (None, None)
        new_degree = request.degree + 1
        if new_degree >= max_degree:
            self._intervals.pop(request.rid, None)
            return (new_degree, None)
        return (new_degree, interval)
