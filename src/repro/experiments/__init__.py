"""Experiment harness: single-ISN runs, sweeps, MeasureTail, reports.

Ties the workload substrate, policies and simulator into the paper's
experiments.  ``runner`` executes one (policy, load) cell or a sweep;
``scenarios`` holds the canonical configurations of every figure and
table; ``report`` renders results as the rows the paper prints.
"""

from .runner import (
    ExperimentResult,
    run_search_experiment,
    run_load_sweep,
    make_measure_tail,
    make_measure_tail_batch,
    build_search_target_table,
)
from .scenarios import (
    DEFAULT_QPS_GRID,
    DEFAULT_RPS_GRID_FINANCE,
    DEFAULT_SEARCH_TARGET_TABLE,
    DEFAULT_FINANCE_TARGET_TABLE,
    FIGURE_POLICIES,
    default_workload,
    default_workload_spec,
    default_target_table,
)
from .report import format_table, series_to_rows

__all__ = [
    "ExperimentResult",
    "run_search_experiment",
    "run_load_sweep",
    "make_measure_tail",
    "make_measure_tail_batch",
    "build_search_target_table",
    "DEFAULT_QPS_GRID",
    "DEFAULT_RPS_GRID_FINANCE",
    "DEFAULT_SEARCH_TARGET_TABLE",
    "DEFAULT_FINANCE_TARGET_TABLE",
    "FIGURE_POLICIES",
    "default_workload",
    "default_workload_spec",
    "default_target_table",
    "format_table",
    "series_to_rows",
]
