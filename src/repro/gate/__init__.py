"""Machine-checked fidelity and performance gate (``repro.gate``).

The repository's claim is that its simulated TPC reproduces the
paper's numbers.  This package turns that claim into an executable
contract: a registry of :class:`GateCheck`\\ s declares the paper's
headline metrics as tolerance bands — the Section 2 demand
distribution, the Section 4 policy orderings at fixed loads,
cluster-vs-single-ISN consistency, and wall-clock budgets for the
simulator hot path — and :func:`run_gate` re-derives every metric
from deterministic :class:`~repro.exec.spec.SweepSpec` cells executed
through the :mod:`repro.exec` pool and cache, so a warm re-run is
near-free.

The outcome is a versioned ``BENCH_gate.json`` report (git SHA,
pass/fail per check, measured value vs. band, timings) plus a
human-readable summary.  Baselines for machine-relative bands live
under ``benchmarks/baselines/`` and are refreshed with
``python -m repro.gate --update-baselines``.

Run it locally::

    python -m repro.gate --fast            # the CI configuration
    python -m repro.gate --full            # paper-scale samples
    python -m repro.gate --only policy_ordering_p99
"""

from .bands import Band, EvaluatedMeasurement, Measurement
from .baselines import (
    default_baselines_path,
    load_baselines,
    save_baselines,
)
from .checks import (
    CHECKS,
    GATE_SEED,
    GateCheck,
    GateScale,
    check_names,
    demand_measurements,
    ordering_measurements,
    scale_for_mode,
)
from .report import CheckReport, GateReport
from .runner import GateContext, run_gate

__all__ = [
    "Band",
    "Measurement",
    "EvaluatedMeasurement",
    "GateCheck",
    "GateScale",
    "GateContext",
    "GateReport",
    "CheckReport",
    "CHECKS",
    "GATE_SEED",
    "check_names",
    "scale_for_mode",
    "demand_measurements",
    "ordering_measurements",
    "run_gate",
    "load_baselines",
    "save_baselines",
    "default_baselines_path",
]
