"""End-to-end integration tests asserting the paper's qualitative
results on the miniature workload (fast versions of the benchmarks)."""

import pytest

from repro.experiments import run_load_sweep, run_search_experiment
from repro.core.target_table import TargetTable


SMALL_TT = TargetTable([(0, 25), (3, 30), (6, 40), (10, 60), (16, 65), (28, 70)])


@pytest.fixture(scope="module")
def sweep(tiny_search_workload):
    """One shared sweep of the main policies at a moderate and a high
    load (kept small: these are behavioural, not statistical, tests)."""
    return run_load_sweep(
        tiny_search_workload,
        ["Sequential", "AP", "Pred", "WQ-Linear", "TP", "TPC"],
        [150.0, 600.0],
        n_requests=6000,
        seed=31,
        target_table=SMALL_TT,
    )


class TestFigure4Shape:
    def test_tpc_beats_sequential_everywhere(self, sweep):
        for seq, tpc in zip(sweep["Sequential"], sweep["TPC"]):
            assert tpc.p99_ms < seq.p99_ms * 0.7

    def test_tpc_at_most_best_prior_p99(self, sweep):
        """TPC should be no worse than the best prior policy at P99.

        On the miniature test workload the light-load race is close —
        WQ-Linear's parallelize-everything is near-optimal when the
        machine is idle — so a 15 % tolerance absorbs that; the
        benchmark suite asserts the strict ordering on the full-size
        workload.
        """
        for i in range(2):
            best_prior = min(
                sweep[name][i].p99_ms
                for name in ("Sequential", "AP", "Pred", "WQ-Linear")
            )
            assert sweep["TPC"][i].p99_ms <= best_prior * 1.15

    def test_prediction_beats_prediction_free_at_high_load(self, sweep):
        """At high load, prediction-using policies (TPC, Pred) keep the
        tail low while AP/WQ-Linear degrade (Section 4.2)."""
        high = 1
        assert sweep["TPC"][high].p99_ms < sweep["AP"][high].p99_ms
        assert sweep["Pred"][high].p99_ms < sweep["AP"][high].p99_ms

    def test_pred_is_load_insensitive(self, sweep):
        """Pred ignores load: its tail barely moves from 150 to 600 QPS."""
        low, high = sweep["Pred"]
        assert high.p99_ms < low.p99_ms * 1.4


class TestFigure5Shape:
    def test_pred_poor_at_p999(self, sweep):
        """Mispredicted long queries sink Pred's P99.9 toward
        Sequential while TPC's correction holds it low (Section 4.3)."""
        for i in range(2):
            assert sweep["TPC"][i].p999_ms < sweep["Pred"][i].p999_ms

    def test_tpc_p999_well_below_sequential(self, sweep):
        for i in range(2):
            assert sweep["TPC"][i].p999_ms < sweep["Sequential"][i].p999_ms * 0.75


class TestFigure6Shape:
    def test_tp_and_tpc_similar_at_p99(self, sweep):
        """Prediction is accurate enough for the P99 range: correction
        contributes little there (Figure 6a)."""
        for i in range(2):
            assert sweep["TPC"][i].p99_ms <= sweep["TP"][i].p99_ms * 1.08

    def test_correction_improves_p999(self, sweep):
        """Dynamic correction pays off at the 99.9th percentile
        (Figure 6b)."""
        improvements = [
            sweep["TP"][i].p999_ms - sweep["TPC"][i].p999_ms for i in range(2)
        ]
        assert max(improvements) > 0

    def test_correction_fires_only_on_a_small_fraction(self, sweep):
        for result in sweep["TPC"]:
            rate = result.recorder.correction_rate()
            assert 0.0 < rate < 0.15


class TestTable2Shape:
    def test_tpc_runs_short_queries_sequentially(self, sweep):
        dist = sweep["TPC"][0].degree_distribution()
        assert dist["short"][0] > 85.0  # % of short at degree 1

    def test_tpc_parallelizes_long_queries(self, sweep):
        dist = sweep["TPC"][0].degree_distribution()
        high_degree = sum(dist["long"][3:])  # degrees 4-6
        assert high_degree > 50.0

    def test_ap_gives_same_degree_to_short_and_long(self, sweep):
        dist = sweep["AP"][0].degree_distribution(use_max_degree=False)
        # distributions across degrees should be nearly identical
        for s, l in zip(dist["short"], dist["long"]):
            assert abs(s - l) < 12.0

    def test_ap_degrees_collapse_at_high_load(self, sweep):
        low = sweep["AP"][0].degree_distribution(use_max_degree=False)
        high = sweep["AP"][1].degree_distribution(use_max_degree=False)
        mean_low = sum((i + 1) * p for i, p in enumerate(low["long"])) / 100
        mean_high = sum((i + 1) * p for i, p in enumerate(high["long"])) / 100
        assert mean_high < mean_low


class TestRampUpComparison:
    def test_tpc_beats_rampup_at_moderate_load(self, tiny_search_workload):
        tpc = run_search_experiment(
            tiny_search_workload, "TPC", 450.0, 6000, 31,
            target_table=SMALL_TT,
        )
        for interval in (5.0, 10.0, 20.0):
            ramp = run_search_experiment(
                tiny_search_workload, "RampUp", 450.0, 6000, 31,
                rampup_interval_ms=interval,
            )
            assert tpc.p99_ms <= ramp.p99_ms * 1.05, f"interval={interval}"


class TestPredictorSensitivity:
    def test_tpc_with_real_predictor_close_to_perfect(self, tiny_search_workload):
        """Section 4.6: dynamic correction compensates prediction error,
        keeping TPC near the perfect-predictor bound."""
        real = run_search_experiment(
            tiny_search_workload, "TPC", 450.0, 8000, 13,
            target_table=SMALL_TT, prediction="model",
        )
        perfect = run_search_experiment(
            tiny_search_workload, "TPC", 450.0, 8000, 13,
            target_table=SMALL_TT, prediction="perfect",
        )
        assert real.p99_ms <= perfect.p99_ms * 1.35

    def test_tp_suffers_more_without_correction(self, tiny_search_workload):
        tp_real = run_search_experiment(
            tiny_search_workload, "TP", 450.0, 8000, 13,
            target_table=SMALL_TT, prediction="model",
        )
        tpc_real = run_search_experiment(
            tiny_search_workload, "TPC", 450.0, 8000, 13,
            target_table=SMALL_TT, prediction="model",
        )
        assert tpc_real.p999_ms <= tp_real.p999_ms * 1.02
