"""AP — Adaptive Parallelism [20] (EuroSys'13).

AP chooses each query's degree from the *average* parallelism speedup
of all queries and the instantaneous system load, picking the degree
that minimises the estimated total response time of the queries in the
system.  It uses no per-query prediction, so short and long queries
receive the same degree (Table 2): generous parallelism when the system
is idle, collapsing to sequential execution as concurrency grows.

Cost model
----------
For a candidate degree ``i`` with average speedup profile ``S̄`` and
``n`` queries currently in the system (queued + running):

``cost(i) = (L̄ / S̄(i)) * (1 + w * n * i / C)``

The first factor is this query's own completion time; the second
charges the thread-time ``i * L̄/S̄(i)`` it withholds from the ``n``
other queries across ``C`` hardware threads, weighted by ``w``.  The
degree minimising the cost is selected.  With ``n = 0`` this reduces to
"use the degree with the best average speedup"; with large ``n`` it
reduces to sequential execution — matching the published behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..core.speedup import SpeedupBook, SpeedupProfile
from ..errors import ConfigError
from .base import ParallelismPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = ["AdaptiveParallelismPolicy", "average_profile"]


def average_profile(
    book: SpeedupBook, group_weights: Sequence[float]
) -> SpeedupProfile:
    """Workload-average speedup profile: group profiles weighted by the
    fraction of queries in each group.

    AP is defined over "the average parallelism speedup of all
    queries", so the average is dominated by the short group.
    """
    if len(group_weights) != book.num_groups:
        raise ConfigError(
            f"need {book.num_groups} weights, got {len(group_weights)}"
        )
    total = float(sum(group_weights))
    if total <= 0:
        raise ConfigError("group weights must sum to a positive value")
    speedups = []
    for degree in range(1, book.max_degree + 1):
        s = sum(
            w * p.speedup(degree)
            for w, p in zip(group_weights, book.profiles)
        )
        speedups.append(s / total)
    speedups[0] = 1.0
    return SpeedupProfile(speedups)


class AdaptiveParallelismPolicy(ParallelismPolicy):
    """System-load-driven degree selection with a workload-average
    speedup profile and no per-query prediction."""

    name = "AP"

    def __init__(
        self,
        avg_profile: SpeedupProfile,
        interference_weight: float = 1.0,
    ) -> None:
        if interference_weight < 0:
            raise ConfigError("interference_weight must be >= 0")
        self.avg_profile = avg_profile
        self.interference_weight = float(interference_weight)
        #: Hot-path cache: ``1 / S(d)`` is a constant of the profile,
        #: so it is divided once here instead of once per dispatch.
        self._inverse_speedups = tuple(
            1.0 / avg_profile.speedup(d)
            for d in range(1, avg_profile.max_degree + 1)
        )

    def initial_degree(self, request: "Request", server: "Server") -> int:
        n = server.queue_length + server.running_count
        cores = server.config.hardware_threads
        max_degree = min(server.config.max_parallelism, self.avg_profile.max_degree)
        best_degree = 1
        best_cost = float("inf")
        weighted_n = self.interference_weight * n
        inverse = self._inverse_speedups
        for degree in range(1, max_degree + 1):
            interference = 1.0 + weighted_n * degree / cores
            cost = inverse[degree - 1] * interference
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_degree = degree
        return best_degree
