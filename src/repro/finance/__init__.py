"""Finance-server substrate (Section 5).

An option-pricing server valuing path-dependent Asian options with
Monte Carlo: a real numpy pricer (:mod:`montecarlo`), a structural
cost model (work scales with paths x steps, so sequential time is
accurately estimable before execution), and the bimodal request
workload of Section 5.1 (10 % long requests at 9x the short demand,
maximum parallelism degree 4).
"""

from .option import AsianOption
from .montecarlo import MonteCarloPricer, PricingResult
from .workload import FinanceWorkload, build_finance_workload

__all__ = [
    "AsianOption",
    "MonteCarloPricer",
    "PricingResult",
    "FinanceWorkload",
    "build_finance_workload",
]
