"""Event loop and simulation clock.

A minimal, fast discrete-event engine: callbacks are scheduled at
absolute simulated times (milliseconds), stored in a binary heap, and
executed in time order with FIFO tie-breaking.  Cancellation is lazy —
cancelled handles stay in the heap and are skipped when popped — which
keeps scheduling O(log n) with no removal cost.

Two pieces of heap hygiene keep the lazy scheme from degrading under
reschedule-heavy workloads (the server cancels and re-arms its
completion event on almost every submit/check):

* the heap stores ``(time, seq, handle)`` tuples so ordering is decided
  by C-level tuple comparison instead of a Python ``__lt__`` call, and
* a live-event counter makes :attr:`Engine.pending` O(1) and drives
  automatic *compaction* — when cancelled entries outnumber live ones
  the heap is rebuilt without them, bounding both memory and the
  ``O(log n)`` push cost at ``O(log live)``.

Compaction never changes observable behaviour: the pop order of a heap
is a pure function of the ``(time, seq)`` total order, which filtering
and re-heapifying preserves, and skipped cancelled entries were never
counted in :attr:`Engine.events_run`.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..errors import SimulationError

__all__ = ["Engine", "EventHandle"]

_heappush = heapq.heappush
_heappop = heapq.heappop


class EventHandle:
    """A scheduled event that can be cancelled.

    Attributes
    ----------
    time:
        Absolute simulated time (ms) the event fires at.
    cancelled:
        True once :meth:`cancel` has been called; the engine skips it.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        engine: "Engine | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Callable[[], None] | None = callback
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        A no-op on a handle that already fired (``callback`` is cleared
        on execution) or was already cancelled — either would otherwise
        double-decrement the engine's live-event counter.
        """
        if self.cancelled or self.callback is None:
            return
        self.cancelled = True
        self.callback = None  # break reference cycles early
        engine = self._engine
        if engine is not None:
            engine._on_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class Engine:
    """Discrete-event loop with a millisecond clock starting at 0.

    Parameters
    ----------
    compact_min_garbage:
        Minimum number of cancelled-but-unpopped entries before
        automatic compaction is considered.  Raise to effectively
        disable compaction (tests), lower to force it aggressively.
    compact_garbage_ratio:
        Compaction also requires ``garbage > ratio * live`` so rebuilds
        stay amortised O(1) per cancellation.
    """

    def __init__(
        self,
        compact_min_garbage: int = 64,
        compact_garbage_ratio: float = 1.0,
    ) -> None:
        if compact_min_garbage < 0:
            raise SimulationError("compact_min_garbage must be >= 0")
        if compact_garbage_ratio < 0:
            raise SimulationError("compact_garbage_ratio must be >= 0")
        self.now: float = 0.0
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._events_run = 0
        self._live = 0
        self._compactions = 0
        self.compact_min_garbage = compact_min_garbage
        self.compact_garbage_ratio = compact_garbage_ratio

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still scheduled.  O(1)."""
        return self._live

    @property
    def garbage(self) -> int:
        """Cancelled entries still occupying heap slots."""
        return len(self._heap) - self._live

    @property
    def compactions(self) -> int:
        """Number of automatic/explicit heap compactions performed."""
        return self._compactions

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        now = self.now
        if time < now - 1e-9:
            raise SimulationError(
                f"cannot schedule event in the past: {time:.6f} < now={now:.6f}"
            )
        if time < now:
            time = now
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, self)
        _heappush(self._heap, (time, seq, handle))
        self._live += 1
        return handle

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` ms of simulated time."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        # Inlined schedule_at: now + delay can never round below now for
        # a non-negative delay, so the past-check and clamp are moot.
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, self)
        _heappush(self._heap, (time, seq, handle))
        self._live += 1
        return handle

    def _on_cancel(self) -> None:
        """Bookkeeping hook invoked once per :meth:`EventHandle.cancel`."""
        live = self._live - 1
        self._live = live
        garbage = len(self._heap) - live
        if garbage >= self.compact_min_garbage and (
            garbage > self.compact_garbage_ratio * live
        ):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries and rebuild the heap in place.

        Safe at any point: pop order depends only on the ``(time, seq)``
        total order, which any valid heap of the same entries yields.
        """
        heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._heap = heap
        self._compactions += 1

    def step(self) -> bool:
        """Run the next live event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            time, _seq, handle = _heappop(heap)
            if handle.cancelled:
                continue
            self._live -= 1
            self.now = time
            callback = handle.callback
            handle.callback = None
            self._events_run += 1
            assert callback is not None
            callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run events until the heap drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        executed = 0
        while max_events is None or executed < max_events:
            if not self.step():
                break
            executed += 1
        return executed

    def run_until(self, time: float) -> None:
        """Run all events scheduled at or before ``time``, then advance
        the clock to ``time`` even if no event lands exactly there."""
        while True:
            # Re-read the heap each iteration: a fired callback may have
            # cancelled events and triggered compaction, which rebinds it.
            heap = self._heap
            if not heap:
                break
            head = heap[0]
            if head[2].cancelled:
                _heappop(heap)
                continue
            if head[0] > time:
                break
            self.step()
        self.now = max(self.now, time)
