"""Execution-time prediction substrate.

Reimplements the boosted-tree execution-time predictor of [21] (used by
Pred, TP and TPC): histogram-based CART regression trees combined with
stagewise gradient boosting, trained on pre-execution query features
(keyword count, IDF statistics, posting-list lengths).  Accuracy is
*measured* — L1 error plus precision/recall of the induced long-query
classifier — and matched against the paper's operating point of
Section 2.5 (L1 ~ 14 ms, recall 0.86, precision 0.91 at 80 ms).
"""

from .tree import RegressionTree
from .boosted import GradientBoostedRegressor
from .features import QUERY_FEATURE_NAMES, query_features, query_feature_matrix
from .predictor import ExecutionTimePredictor, PredictorReport
from .oracle import PerfectPredictor, NoisyOraclePredictor
from .linear import RidgeRegressionPredictor

__all__ = [
    "RidgeRegressionPredictor",
    "RegressionTree",
    "GradientBoostedRegressor",
    "QUERY_FEATURE_NAMES",
    "query_features",
    "query_feature_matrix",
    "ExecutionTimePredictor",
    "PredictorReport",
    "PerfectPredictor",
    "NoisyOraclePredictor",
]
