"""Policy interface shared by all parallelism strategies.

A policy is consulted at two points in a request's life:

1. **Dispatch** (:meth:`initial_degree`) — when a worker pulls the
   request off the waiting queue, the policy chooses the starting
   degree from whatever information it uses (prediction, load,
   efficiency).  The server clamps the answer to the idle-worker count
   and the configured maximum.
2. **Runtime checks** (:meth:`first_check_delay` /:meth:`on_check`) —
   optional timers for policies that adjust degree mid-flight (TPC's
   dynamic correction, RampUp's incremental parallelism).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = ["ParallelismPolicy"]


class ParallelismPolicy(ABC):
    """Base class of all parallelism policies."""

    #: Human-readable policy name used in reports and the registry.
    name: str = "base"

    #: Optional decision-attribution sink (duck-typed; see
    #: :class:`repro.obs.attribution.DecisionLog`).  Policies that make
    #: interesting decisions call ``observer.on_dispatch_decision`` /
    #: ``observer.on_correction_check`` when this is not None; the
    #: default None keeps the dispatch path branch-cheap and allocation
    #: free, preserving the zero-overhead-when-disabled contract.
    observer = None

    def bind(self, server: "Server") -> None:
        """Called once when attached to a server.  Default: no-op."""

    @abstractmethod
    def initial_degree(self, request: "Request", server: "Server") -> int:
        """Degree to start ``request`` with (>= 1; server clamps)."""

    def first_check_delay(
        self, request: "Request", server: "Server"
    ) -> float | None:
        """Delay (ms after start) of the first runtime check, or None."""
        return None

    def on_check(
        self, request: "Request", server: "Server"
    ) -> tuple[int | None, float | None]:
        """Runtime check: return ``(new_degree, next_check_delay)``.

        ``new_degree`` above the current degree requests a mid-flight
        increase (never a decrease); ``next_check_delay`` schedules a
        follow-up check.  Either may be None.
        """
        return (None, None)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
