"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append("b"))
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.schedule_at(9.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_fifo(self):
        engine = Engine()
        fired = []
        for name in ("first", "second", "third"):
            engine.schedule_at(3.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(7.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [7.5]
        assert engine.now == 7.5

    def test_schedule_relative_delay(self):
        engine = Engine()
        seen = []
        engine.schedule_at(2.0, lambda: engine.schedule(3.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5.0]

    def test_rejects_past_events(self):
        engine = Engine()
        engine.schedule_at(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.run() == 0

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        h1 = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        h1.cancel()
        assert engine.pending == 1


class TestRunControl:
    def test_run_returns_event_count(self):
        engine = Engine()
        for t in range(5):
            engine.schedule_at(float(t), lambda: None)
        assert engine.run() == 5
        assert engine.events_run == 5

    def test_run_with_max_events_stops_early(self):
        engine = Engine()
        for t in range(5):
            engine.schedule_at(float(t), lambda: None)
        assert engine.run(max_events=2) == 2
        assert engine.pending == 3

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_run_until_executes_due_events_only(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(5.0, lambda: fired.append(5))
        engine.run_until(3.0)
        assert fired == [1]
        assert engine.now == 3.0
        engine.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_without_events(self):
        engine = Engine()
        engine.run_until(42.0)
        assert engine.now == 42.0
