"""Tests for query generation, execution and scoring."""

import numpy as np
import pytest

from repro.config import SearchWorkloadConfig
from repro.errors import WorkloadError
from repro.search.corpus import build_corpus
from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.query import Query, QueryGenerator
from repro.search.scoring import bm25_scores, top_k_documents


@pytest.fixture(scope="module")
def setup():
    cfg = SearchWorkloadConfig(
        num_documents=600,
        vocabulary_size=400,
        mean_doc_length=80,
        hard_term_pool=50,
        easy_skip_top=10,
    )
    corpus = build_corpus(cfg, np.random.default_rng(9))
    index = InvertedIndex(corpus)
    engine = SearchEngine(index, cfg)
    return cfg, index, engine


class TestQueryModel:
    def test_rejects_empty_query(self):
        with pytest.raises(WorkloadError):
            Query(0, ())

    def test_num_keywords(self):
        assert Query(0, (1, 2, 3)).num_keywords == 3


class TestQueryGenerator:
    def test_generates_requested_count(self, setup):
        cfg, _, _ = setup
        gen = QueryGenerator(cfg, np.random.default_rng(1))
        queries = gen.generate(50)
        assert len(queries) == 50
        assert len({q.qid for q in queries}) == 50  # unique ids

    def test_keyword_counts_within_ranges(self, setup):
        cfg, _, _ = setup
        gen = QueryGenerator(cfg, np.random.default_rng(1))
        lo = cfg.easy_keywords[0]
        hi = max(cfg.easy_keywords[1], cfg.hard_keywords[1])
        for q in gen.generate(200):
            assert lo <= q.num_keywords <= hi

    def test_terms_are_unique_within_query(self, setup):
        cfg, _, _ = setup
        gen = QueryGenerator(cfg, np.random.default_rng(2))
        for q in gen.generate(100):
            assert len(set(q.term_ids)) == len(q.term_ids)

    def test_hard_fraction_zero_gives_only_easy(self, setup):
        cfg, _, _ = setup
        cfg0 = SearchWorkloadConfig(
            num_documents=cfg.num_documents,
            vocabulary_size=cfg.vocabulary_size,
            hard_query_fraction=0.0,
        )
        gen = QueryGenerator(cfg0, np.random.default_rng(3))
        for q in gen.generate(100):
            assert q.num_keywords <= cfg0.easy_keywords[1]

    def test_rejects_zero_count(self, setup):
        cfg, _, _ = setup
        gen = QueryGenerator(cfg, np.random.default_rng(1))
        with pytest.raises(WorkloadError):
            gen.generate(0)


class TestExecution:
    def test_work_units_are_positive_and_consistent(self, setup):
        cfg, index, engine = setup
        gen = QueryGenerator(cfg, np.random.default_rng(4))
        for q in gen.generate(30):
            ex = engine.execute(q)
            assert ex.total_units > 0
            assert ex.total_units == pytest.approx(
                ex.serial_units + ex.traversal_units + ex.scoring_units
            )
            assert ex.total_postings == index.total_postings(list(q.term_ids))

    def test_single_keyword_scores_whole_posting_list(self, setup):
        cfg, index, engine = setup
        term = 5
        ex = engine.execute(Query(0, (term,)))
        df = index.document_frequency(term)
        assert ex.matched_documents == df
        assert ex.scored_hits == df

    def test_multi_keyword_matching_requires_majority(self, setup):
        cfg, index, engine = setup
        q = Query(0, (0, 1, 2, 3))  # 4 keywords -> need >= 2 matches
        ex = engine.execute(q)
        assert ex.matched_documents <= ex.total_postings
        # every matched doc contributes at least min_match hits
        assert ex.scored_hits >= 2 * ex.matched_documents

    def test_execution_is_deterministic(self, setup):
        _, _, engine = setup
        q = Query(0, (0, 7, 20))
        a = engine.execute(q)
        b = engine.execute(q)
        assert a.total_units == b.total_units
        assert a.matched_documents == b.matched_documents

    def test_results_computed_only_on_request(self, setup):
        _, _, engine = setup
        q = Query(0, (0, 1))
        assert engine.execute(q).results is None
        res = engine.execute(q, compute_results=True).results
        assert res is not None

    def test_results_ranked_descending(self, setup):
        cfg, _, engine = setup
        q = Query(0, (0, 1))
        results = engine.execute(q, compute_results=True).results
        scores = [s for _, s in results]
        assert all(b <= a for a, b in zip(scores, scores[1:]))
        assert len(results) <= cfg.top_k

    def test_more_keywords_cost_more(self, setup):
        """Queries over the same popular terms cost more with more
        keywords — Section 2.3's ten-vs-two keyword observation."""
        _, _, engine = setup
        two = engine.execute(Query(0, (0, 1))).total_units
        eight = engine.execute(Query(1, tuple(range(8)))).total_units
        assert eight > two * 2


class TestScoring:
    def test_bm25_increases_with_tf(self):
        tfs = np.array([1.0, 5.0])
        idfs = np.array([2.0, 2.0])
        lengths = np.array([100.0, 100.0])
        scores = bm25_scores(tfs, idfs, lengths, 100.0)
        assert scores[1] > scores[0]

    def test_bm25_saturates_in_tf(self):
        tfs = np.array([1.0, 10.0, 100.0])
        idfs = np.ones(3) * 2.0
        lengths = np.ones(3) * 100.0
        s = bm25_scores(tfs, idfs, lengths, 100.0)
        assert (s[1] - s[0]) > (s[2] - s[1])  # diminishing returns

    def test_bm25_penalises_long_documents(self):
        tfs = np.array([2.0, 2.0])
        idfs = np.array([2.0, 2.0])
        lengths = np.array([50.0, 500.0])
        scores = bm25_scores(tfs, idfs, lengths, 100.0)
        assert scores[0] > scores[1]

    def test_bm25_rejects_misaligned(self):
        with pytest.raises(WorkloadError):
            bm25_scores(np.ones(2), np.ones(3), np.ones(2), 100.0)

    def test_top_k_sums_scores_per_document(self):
        docs = np.array([1, 2, 1])
        scores = np.array([1.0, 5.0, 2.0])
        top = top_k_documents(docs, scores, 2)
        assert top[0] == (2, 5.0)
        assert top[1] == (1, 3.0)

    def test_top_k_handles_fewer_docs_than_k(self):
        top = top_k_documents(np.array([1]), np.array([1.0]), 10)
        assert len(top) == 1

    def test_top_k_empty_input(self):
        assert top_k_documents(np.array([]), np.array([]), 5) == []

    def test_top_k_rejects_bad_k(self):
        with pytest.raises(WorkloadError):
            top_k_documents(np.array([1]), np.array([1.0]), 0)


class TestConjunctiveExecution:
    def test_matches_require_all_keywords(self, setup):
        cfg, index, engine = setup
        q = Query(0, (0, 1, 2))
        result = engine.execute_conjunctive(q)
        for doc in result.matched_documents[:20]:
            for term in q.term_ids:
                docs, _ = index.postings(term)
                assert doc in docs

    def test_conjunctive_subset_of_majority(self, setup):
        """Strict AND can never match more documents than majority."""
        _, _, engine = setup
        q = Query(0, (0, 1, 2, 3))
        conj = engine.execute_conjunctive(q)
        majority = engine.execute(q)
        assert conj.match_count <= majority.matched_documents

    def test_more_keywords_never_increase_matches(self, setup):
        _, _, engine = setup
        two = engine.execute_conjunctive(Query(0, (0, 1)))
        four = engine.execute_conjunctive(Query(1, (0, 1, 2, 3)))
        assert four.match_count <= two.match_count

    def test_comparisons_accounted(self, setup):
        _, _, engine = setup
        result = engine.execute_conjunctive(Query(0, (0, 1, 2)))
        assert result.comparisons > 0

    def test_single_keyword_is_whole_posting_list(self, setup):
        _, index, engine = setup
        result = engine.execute_conjunctive(Query(0, (7,)))
        assert result.match_count == index.document_frequency(7)
