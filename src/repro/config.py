"""Frozen configuration objects for every subsystem.

All knobs live here so experiments are declared, not hard-coded.  The
defaults reproduce the paper's setup: a 24-hardware-thread ISN with 28
worker threads, a maximum intra-query parallelism degree of 6 (4 for the
finance server), an 80 ms "long query" threshold, and the three
parallelism-efficiency groups of Figure 2 (<30 ms, 30-80 ms, >80 ms).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .errors import ConfigError

__all__ = [
    "ServerConfig",
    "SearchWorkloadConfig",
    "PredictorConfig",
    "PolicyConfig",
    "TargetTableConfig",
    "ClusterConfig",
    "FinanceConfig",
    "DEFAULT_GROUP_BOUNDS_MS",
]

#: Group boundaries of Figure 2: short (<30 ms), mid (30-80 ms), long (>80 ms).
DEFAULT_GROUP_BOUNDS_MS: tuple[float, ...] = (30.0, 80.0)


@dataclass(frozen=True)
class ServerConfig:
    """Hardware and worker-pool model of one index-serving node (ISN).

    Mirrors the testbed of Section 4.1: two 6-core SMT processors give 24
    hardware threads, the worker pool holds 28 threads (a worker may
    occasionally block on I/O), and the OS time-shares worker threads on
    the available hardware contexts.
    """

    hardware_threads: int = 24
    #: Physical cores behind the SMT contexts (two 6-core sockets).
    physical_cores: int = 12
    #: Marginal throughput of the second SMT context on a core: running
    #: 24 threads on 12 cores yields 12 * (1 + factor) core-equivalents,
    #: not 24.  0.35 is a typical SMT yield for search-style workloads.
    smt_marginal_throughput: float = 0.35
    worker_threads: int = 28
    max_parallelism: int = 6
    #: Extra sequential work (ms) charged each time a request's degree is
    #: raised mid-flight, modelling task re-partitioning/synchronisation.
    rampup_penalty_ms: float = 0.5
    #: Sampling period (ms) of the CPU-utilisation performance counter
    #: (Section 4.6 uses 25 ms via Windows PDH).
    cpu_sample_interval_ms: float = 25.0
    #: Exponential-moving-average weight of a new CPU utilisation sample.
    cpu_ema_alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.hardware_threads < 1:
            raise ConfigError("hardware_threads must be >= 1")
        if not 1 <= self.physical_cores <= self.hardware_threads:
            raise ConfigError(
                "physical_cores must be in [1, hardware_threads]"
            )
        if self.smt_marginal_throughput < 0:
            raise ConfigError("smt_marginal_throughput must be >= 0")
        if self.worker_threads < 1:
            raise ConfigError("worker_threads must be >= 1")
        if not 1 <= self.max_parallelism <= self.worker_threads:
            raise ConfigError(
                "max_parallelism must be in [1, worker_threads], got "
                f"{self.max_parallelism} with {self.worker_threads} workers"
            )
        if self.rampup_penalty_ms < 0:
            raise ConfigError("rampup_penalty_ms must be >= 0")
        if self.cpu_sample_interval_ms <= 0:
            raise ConfigError("cpu_sample_interval_ms must be > 0")
        if not 0 < self.cpu_ema_alpha <= 1:
            raise ConfigError("cpu_ema_alpha must be in (0, 1]")

    def with_(self, **kwargs: object) -> "ServerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def total_throughput(self, active_threads: int) -> float:
        """Aggregate execution rate (core-equivalents) of ``active_threads``.

        The first ``physical_cores`` threads run at full speed; SMT
        siblings add only ``smt_marginal_throughput`` each; threads
        beyond ``hardware_threads`` add nothing (they time-share).
        """
        if active_threads <= self.physical_cores:
            return float(active_threads)
        smt = min(active_threads, self.hardware_threads) - self.physical_cores
        return self.physical_cores + self.smt_marginal_throughput * smt

    @property
    def capacity_core_equivalents(self) -> float:
        """Peak aggregate execution rate of the machine."""
        return self.total_throughput(self.hardware_threads)


@dataclass(frozen=True)
class SearchWorkloadConfig:
    """Synthetic web-search corpus, index and query-mix parameters.

    The defaults are tuned (see ``repro.search.calibrate``) so the
    resulting service-demand distribution matches the paper's published
    statistics: mean 13.47 ms, >85 % of queries under 15 ms, ~4 % of
    queries over 80 ms, and a 99th-percentile demand near 200 ms.
    """

    num_documents: int = 24_000
    vocabulary_size: int = 6_000
    #: Zipf exponent of the term-frequency distribution.
    zipf_exponent: float = 1.1
    #: Mean document length in tokens (lognormal).
    mean_doc_length: int = 180
    doc_length_sigma: float = 0.4
    #: Probability that a generated query is a "hard" query drawn from
    #: the long-query mixture (many keywords over popular terms).
    hard_query_fraction: float = 0.06
    #: Keyword-count ranges of the easy and hard mixtures (inclusive).
    easy_keywords: tuple[int, int] = (1, 4)
    hard_keywords: tuple[int, int] = (4, 12)
    #: Number of most-popular vocabulary ranks hard queries draw from.
    hard_term_pool: int = 300
    #: Easy queries skip this many top ranks (users rarely search bare
    #: stopwords) and sample the remaining ranks with this exponent.
    easy_skip_top: int = 30
    query_zipf_exponent: float = 0.8
    #: Lognormal sigma of the hidden per-query ranking-cost factor:
    #: second-phase ranking work that index statistics cannot see.
    #: This is the structural source of prediction error (Section 2.5).
    hidden_cost_sigma: float = 0.28
    #: A small fraction of queries take a "surprise" ranking path whose
    #: cost departs wildly from what features suggest (deep second-phase
    #: reranking, rewriting).  These produce the genuinely-long-but-
    #: predicted-short queries that dominate the 99.9th percentile.
    surprise_fraction: float = 0.09
    surprise_sigma: float = 1.5
    #: Serial work per query (parsing + top-k rescoring), in work units.
    serial_work_units: float = 900.0
    #: Size of one parallel task in work units (task-pool granularity).
    task_grain_units: float = 600.0
    #: Per-task dispatch overhead, in work units.
    task_overhead_units: float = 30.0
    #: Scoring cost per (matched document, term) hit, relative to a
    #: traversal cost of 1 per posting entry.
    score_cost_per_hit: float = 4.0
    #: Lognormal sigma of per-request demand jitter (same query replayed
    #: twice does not take exactly the same time on a real server).
    execution_noise_sigma: float = 0.08
    #: Top-k results returned per query.
    top_k: int = 10
    #: Calibration targets from Section 2 of the paper.
    target_mean_ms: float = 13.47
    target_short_fraction: float = 0.85
    target_short_threshold_ms: float = 15.0

    def __post_init__(self) -> None:
        if self.num_documents < 1 or self.vocabulary_size < 2:
            raise ConfigError("corpus dimensions must be positive")
        if not 0 <= self.hard_query_fraction <= 1:
            raise ConfigError("hard_query_fraction must be in [0, 1]")
        for lo, hi in (self.easy_keywords, self.hard_keywords):
            if not 1 <= lo <= hi:
                raise ConfigError("keyword ranges must satisfy 1 <= lo <= hi")
        if self.task_grain_units <= 0:
            raise ConfigError("task_grain_units must be > 0")


@dataclass(frozen=True)
class PredictorConfig:
    """Gradient-boosted-tree execution-time predictor hyperparameters.

    Matches the operating point of the predictor of [21] as reported in
    Section 2.5: L1 error near 14 ms with recall ~0.86 and precision
    ~0.91 for the 80 ms long-query threshold.
    """

    num_trees: int = 300
    learning_rate: float = 0.1
    max_depth: int = 5
    min_samples_leaf: int = 8
    subsample: float = 0.8
    #: Fraction of generated queries used for training (rest evaluates).
    train_fraction: float = 0.5
    #: The long-query classification threshold (ms) used for
    #: precision/recall reporting and by the Pred policy.
    long_threshold_ms: float = 80.0
    #: Optional lognormal noise applied to features at prediction time,
    #: to degrade accuracy toward a desired operating point.
    feature_noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.num_trees < 1:
            raise ConfigError("num_trees must be >= 1")
        if not 0 < self.learning_rate <= 1:
            raise ConfigError("learning_rate must be in (0, 1]")
        if self.max_depth < 1:
            raise ConfigError("max_depth must be >= 1")
        if not 0 < self.subsample <= 1:
            raise ConfigError("subsample must be in (0, 1]")
        if not 0 < self.train_fraction < 1:
            raise ConfigError("train_fraction must be in (0, 1)")


@dataclass(frozen=True)
class PolicyConfig:
    """Shared knobs of the parallelism policies of Table 1."""

    #: Long-query threshold (ms) — Pred parallelizes above this.
    long_threshold_ms: float = 80.0
    #: Fixed degree Pred assigns to predicted-long queries (paper: 3 for
    #: web search, 2 for finance).
    pred_fixed_degree: int = 3
    #: RampUp interval (ms) between degree increments.
    rampup_interval_ms: float = 10.0
    #: WQ-Linear: degree = clamp(max_parallelism / (1 + queue/beta)).
    wq_linear_beta: float = 1.0
    #: AP cost model: weight of the delay a query's extra threads impose
    #: on queued queries (calibrated so degrees match Table 2's bands:
    #: 3-6T at 150 QPS collapsing to 1-2T at 600 QPS).
    ap_interference_weight: float = 0.25
    #: TPC: how often (ms) dynamic correction re-checks an over-target
    #: request that could not yet be ramped to the maximum degree.
    correction_recheck_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.long_threshold_ms <= 0:
            raise ConfigError("long_threshold_ms must be > 0")
        if self.pred_fixed_degree < 1:
            raise ConfigError("pred_fixed_degree must be >= 1")
        if self.rampup_interval_ms <= 0:
            raise ConfigError("rampup_interval_ms must be > 0")
        if self.wq_linear_beta <= 0:
            raise ConfigError("wq_linear_beta must be > 0")
        if self.correction_recheck_ms <= 0:
            raise ConfigError("correction_recheck_ms must be > 0")


@dataclass(frozen=True)
class TargetTableConfig:
    """Inputs of Algorithm 1 (BuildTargetTable).

    ``load_grid`` is the ascending list of load-metric breakpoints
    ``d_i``; the final entry implicitly extends to infinity.  Targets are
    initialised to ``initial_target_ms`` (the latency of an unloaded,
    fully parallelized system — the smallest target achievable) and
    greedily increased in steps of ``step_ms``.
    """

    load_grid: tuple[float, ...] = (0.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    initial_target_ms: float = 25.0
    step_ms: float = 5.0
    #: QPS levels MeasureTail sweeps, covering the production load range.
    measure_loads_qps: tuple[float, ...] = (150.0, 400.0, 650.0)
    #: Per-load weights of the tail-latency sum (uniform by default).
    measure_weights: tuple[float, ...] = (1.0, 1.0, 1.0)
    #: The percentile MeasureTail optimises.
    percentile: float = 99.0
    #: Queries simulated per MeasureTail invocation.
    queries_per_measurement: int = 4_000
    #: Safety bound on gradient-descent iterations.
    max_iterations: int = 200

    def __post_init__(self) -> None:
        grid = self.load_grid
        if len(grid) < 1 or any(b > a for a, b in zip(grid[1:], grid)):
            raise ConfigError("load_grid must be non-empty and ascending")
        if self.step_ms <= 0:
            raise ConfigError("step_ms must be > 0")
        if len(self.measure_weights) != len(self.measure_loads_qps):
            raise ConfigError("one weight per measurement load required")
        if not 0 < self.percentile < 100:
            raise ConfigError("percentile must be in (0, 100)")


@dataclass(frozen=True)
class ClusterConfig:
    """Partition-aggregate cluster of Figure 1 / Section 4.5."""

    num_isns: int = 40
    #: Lognormal sigma of per-ISN service-demand jitter for one query
    #: (document sharding makes per-shard work similar but not equal).
    demand_jitter_sigma: float = 0.12
    #: One-way network + merge overhead added at the aggregator (ms),
    #: matching the ~2 ms average non-compute time of Section 2.2.
    network_overhead_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.num_isns < 1:
            raise ConfigError("num_isns must be >= 1")
        if self.demand_jitter_sigma < 0:
            raise ConfigError("demand_jitter_sigma must be >= 0")
        if self.network_overhead_ms < 0:
            raise ConfigError("network_overhead_ms must be >= 0")


@dataclass(frozen=True)
class FinanceConfig:
    """Option-pricing server workload of Section 5.1.

    10 % of requests are long with a service demand 9x that of a short
    request; the maximum parallelism degree is 4; request execution time
    is estimated near-perfectly from the iteration structure.
    """

    long_fraction: float = 0.10
    #: With 10 ms short requests and 10 % long at 9x, 200 RPS carries
    #: 3.6 concurrent requests on average — the paper reports 3.5.
    short_demand_ms: float = 10.0
    long_demand_multiplier: float = 9.0
    max_parallelism: int = 4
    #: Serial fraction of the fork-join Monte Carlo loop.
    serial_fraction: float = 0.03
    #: Per-extra-thread synchronisation loss in the speedup model.
    sync_loss_per_thread: float = 0.01
    #: Fork-join cost per extra thread per averaging iteration (ms):
    #: the loop forks d tasks and joins them every iteration, which is
    #: why parallelizing *short* requests wastes disproportionate CPU.
    join_overhead_ms: float = 0.006
    #: Relative sigma of the (near-perfect) structural time estimate.
    prediction_noise: float = 0.01
    #: Relative sigma of actual demand around the structural model.
    demand_noise: float = 0.02
    #: Fixed degree used by the Pred baseline (paper: 2).
    pred_fixed_degree: int = 2

    def __post_init__(self) -> None:
        if not 0 <= self.long_fraction <= 1:
            raise ConfigError("long_fraction must be in [0, 1]")
        if self.short_demand_ms <= 0 or self.long_demand_multiplier <= 1:
            raise ConfigError("demands must be positive and long > short")
        if self.max_parallelism < 1:
            raise ConfigError("max_parallelism must be >= 1")
        if not 0 <= self.serial_fraction < 1:
            raise ConfigError("serial_fraction must be in [0, 1)")


def validate_group_bounds(bounds: Sequence[float]) -> tuple[float, ...]:
    """Validate ascending group boundaries and return them as a tuple."""
    result = tuple(float(b) for b in bounds)
    if any(b <= a for a, b in zip(result, result[1:])):
        raise ConfigError(f"group bounds must be strictly ascending: {result}")
    if any(b <= 0 for b in result):
        raise ConfigError(f"group bounds must be positive: {result}")
    return result
