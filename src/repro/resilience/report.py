"""``BENCH_resilience.json`` and the human-readable scenario summary.

Follows the conventions of :mod:`repro.gate.report`: the artifact is
versioned (schema), attributed (git SHA, mode), and self-contained —
every (policy, variant) row with its latency percentiles and
mitigation accounting, plus the per-policy tail improvement of each
variant over the scenario's baseline variant.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from ..gate.report import git_sha
from .scenarios import ScenarioResult

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "build_report",
    "write_report",
    "render_summary",
]

REPORT_SCHEMA_VERSION = 1


def _scenario_dict(result: ScenarioResult) -> dict[str, Any]:
    rows = [
        {"policy": policy, "variant": variant, **metrics}
        for (policy, variant), metrics in result.rows.items()
    ]
    baseline = result.variant_labels[0]
    improvements = [
        {
            "policy": policy,
            "variant": variant,
            "baseline": baseline,
            "p999_improvement": result.improvement(policy, variant),
        }
        for (policy, variant) in result.rows
        if variant != baseline
    ]
    return {
        "name": result.name,
        "fast": result.fast,
        "qps": result.qps,
        "n_queries": result.n_queries,
        "num_isns": result.num_isns,
        "fault_windows": [
            {
                "kind": w.kind,
                "isn": w.isn,
                "t0_ms": w.t0_ms,
                "t1_ms": w.t1_ms,
                "severity": w.severity,
            }
            for w in result.fault_spec.windows
        ],
        "variants": list(result.variant_labels),
        "rows": rows,
        "p999_improvements": improvements,
        "timing": {
            "cells_executed": result.cells_executed,
            "cells_from_cache": result.cells_from_cache,
            "wall_time_s": round(result.wall_time_s, 4),
        },
    }


def build_report(results: Sequence[ScenarioResult]) -> dict[str, Any]:
    """Assemble the full JSON document for one or more scenario runs."""
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "generated_by": "repro.resilience",
        "git_sha": git_sha(),
        "mode": "fast" if any(r.fast for r in results) else "full",
        "status": "ok",
        "scenarios": [_scenario_dict(r) for r in results],
    }


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    """Write the artifact (stable key order, trailing newline)."""
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def render_summary(results: Sequence[ScenarioResult]) -> str:
    """Human-readable per-scenario tables, one row per (policy, variant)."""
    lines: list[str] = []
    for result in results:
        mode = "fast" if result.fast else "full"
        lines.append(
            f"scenario {result.name} — {result.num_isns} ISNs @ "
            f"{result.qps:g} QPS, {result.n_queries} queries ({mode}); "
            f"{result.cells_executed} cells simulated, "
            f"{result.cells_from_cache} from cache, "
            f"wall {result.wall_time_s:.1f}s"
        )
        header = (
            f"  {'policy':<12} {'variant':<16} {'p50':>8} {'p99':>8} "
            f"{'p99.9':>8} {'hedge%':>7} {'waste%':>7} {'k-cov':>6}"
        )
        lines.append(header)
        for (policy, variant), row in result.rows.items():
            hedge = 100.0 * row.get("hedge_rate", 0.0)
            waste = 100.0 * row.get("wasted_work_fraction", 0.0)
            kcov = row.get("k_coverage_mean", 1.0)
            lines.append(
                f"  {policy:<12} {variant:<16} {row['p50_ms']:>8.1f} "
                f"{row['p99_ms']:>8.1f} {row['p999_ms']:>8.1f} "
                f"{hedge:>7.1f} {waste:>7.1f} {kcov:>6.2f}"
            )
        baseline = result.variant_labels[0]
        for (policy, variant) in result.rows:
            if variant == baseline:
                continue
            gain = 100.0 * result.improvement(policy, variant)
            lines.append(
                f"  {policy}: {variant} vs {baseline} — "
                f"P99.9 {'improved' if gain >= 0 else 'regressed'} "
                f"{abs(gain):.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
