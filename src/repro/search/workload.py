"""End-to-end search-workload assembly.

``build_search_workload`` performs the full offline pipeline of
Figure 3's offline half, all from first principles:

1. generate the corpus and build the inverted index;
2. generate a pool of queries and *execute* them to measure work;
3. calibrate work units to milliseconds against the paper's statistics;
4. fit the task-pool parallel model to Figure 2 and derive per-query
   speedup profiles plus the 3-group :class:`SpeedupBook`;
5. train the boosted-tree predictor on half the pool and evaluate it on
   the other half (which becomes the replay pool, so the predictor is
   never evaluated on queries it trained on).

The result, :class:`SearchWorkload`, hands the simulation everything it
needs: sampled request traces, group profiles and weights, and the
measured predictor operating point.

Because steps 1-2 cost a few seconds, the expensive intermediates are
cached on disk keyed by a hash of the seed and configuration; set the
``REPRO_CACHE_DIR`` environment variable to relocate the cache or
``use_cache=False`` to disable it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, asdict
from pathlib import Path

import numpy as np

from ..config import PredictorConfig, SearchWorkloadConfig
from ..core.speedup import SpeedupBook, SpeedupProfile
from ..errors import WorkloadError
from ..prediction.features import query_feature_matrix
from ..prediction.predictor import ExecutionTimePredictor, PredictorReport
from ..rng import RngFactory
from ..sim.request import Request
from .calibrate import WorkloadStatistics, calibrate_workload
from .corpus import build_corpus
from .engine import SearchEngine
from .index import InvertedIndex
from .parallel import ParallelExecutionModel, fit_parallel_model
from .query import QueryGenerator

__all__ = ["SearchWorkload", "WorkloadProvenance", "build_search_workload"]


@dataclass(frozen=True)
class WorkloadProvenance:
    """The build inputs a finished workload was assembled from.

    Together with ``SearchWorkload.config`` this is enough to rebuild
    the workload bit-identically in another process — the contract the
    :mod:`repro.exec` layer relies on to ship *recipes* to pool workers
    instead of pickling live indexes.
    """

    seed: int
    pool_size: int
    max_degree: int
    group_bounds_ms: tuple[float, ...] | None
    predictor_config: PredictorConfig
    use_cache: bool


@dataclass
class SearchWorkload:
    """A calibrated, predictor-equipped search workload ready to replay."""

    config: SearchWorkloadConfig
    ms_per_unit: float
    serial_ms: float
    statistics: WorkloadStatistics
    parallel_model: ParallelExecutionModel
    speedup_book: SpeedupBook
    group_weights: tuple[float, ...]
    predictor_report: PredictorReport
    pool_demands_ms: np.ndarray
    pool_predictions_ms: np.ndarray
    pool_profiles: list[SpeedupProfile]
    #: How this workload was built (None for hand-assembled instances);
    #: lets ``repro.exec`` rebuild it inside worker processes.
    provenance: WorkloadProvenance | None = None

    @property
    def pool_size(self) -> int:
        """Number of distinct replayable queries."""
        return len(self.pool_demands_ms)

    def make_requests(
        self,
        n: int,
        rng: np.random.Generator,
        prediction: str = "model",
        oracle_sigma: float = 0.0,
        rid_offset: int = 0,
    ) -> list[Request]:
        """Sample a replay trace of ``n`` requests from the pool.

        ``prediction`` selects the scheduler-visible execution-time
        estimate: ``"model"`` uses the trained boosted-tree predictor,
        ``"perfect"`` the true (jittered) demand, and ``"oracle"`` the
        true demand perturbed by lognormal noise ``oracle_sigma``.
        """
        if n < 1:
            raise WorkloadError(f"n must be >= 1, got {n}")
        if prediction not in ("model", "perfect", "oracle"):
            raise WorkloadError(f"unknown prediction mode {prediction!r}")
        indices = rng.integers(0, self.pool_size, size=n)
        sigma = self.config.execution_noise_sigma
        jitter = (
            rng.lognormal(0.0, sigma, size=n) if sigma > 0 else np.ones(n)
        )
        demands = self.pool_demands_ms[indices] * jitter
        if prediction == "model":
            predictions = self.pool_predictions_ms[indices]
        elif prediction == "perfect":
            predictions = demands
        else:
            predictions = demands * rng.lognormal(0.0, oracle_sigma, size=n)
        return [
            Request(
                rid=rid_offset + i,
                demand_ms=float(demands[i]),
                predicted_ms=float(predictions[i]),
                speedup=self.pool_profiles[indices[i]],
            )
            for i in range(n)
        ]


def build_search_workload(
    seed: int,
    config: SearchWorkloadConfig | None = None,
    predictor_config: PredictorConfig | None = None,
    pool_size: int = 12_000,
    max_degree: int = 6,
    group_bounds_ms: tuple[float, ...] | None = None,
    use_cache: bool = True,
) -> SearchWorkload:
    """Run the full offline pipeline (see module docstring)."""
    cfg = config if config is not None else SearchWorkloadConfig()
    pcfg = predictor_config if predictor_config is not None else PredictorConfig()
    rngs = RngFactory(seed)

    units, features = _measured_pool(seed, cfg, pool_size, use_cache, rngs)

    # Hidden per-query ranking-cost factor: second-phase ranking work
    # that is real on the server but invisible in index statistics.
    # It lengthens the demand tail and bounds predictor accuracy,
    # matching the imperfect operating point of Section 2.5.
    if cfg.hidden_cost_sigma > 0 or cfg.surprise_fraction > 0:
        hidden_rng = rngs.get("hidden-cost")
        sigma = np.full(len(units), cfg.hidden_cost_sigma)
        if cfg.surprise_fraction > 0:
            surprised = hidden_rng.random(len(units)) < cfg.surprise_fraction
            sigma[surprised] = cfg.surprise_sigma
        hidden = hidden_rng.lognormal(-sigma**2 / 2.0, sigma)
        units = units * hidden

    calibration = calibrate_workload(units, cfg)
    scale = calibration.ms_per_unit
    demands = units * scale
    serial_ms = cfg.serial_work_units * scale

    model = fit_parallel_model(
        serial_ms=serial_ms,
        task_grain_ms=cfg.task_grain_units * scale,
        task_overhead_ms=cfg.task_overhead_units * scale,
    )
    profiles = [
        model.profile(float(d), serial_ms, max_degree) for d in demands
    ]
    bounds = group_bounds_ms
    if bounds is None:
        book = SpeedupBook.from_samples(demands, profiles)
    else:
        book = SpeedupBook.from_samples(demands, profiles, bounds)
    weights = _group_weights(book, demands)

    # Train/eval split: even indices train, odd indices become the pool.
    train = np.arange(0, len(demands), 2)
    evaluate = np.arange(1, len(demands), 2)
    predictor = ExecutionTimePredictor(pcfg)
    predictor.fit(
        features[train], demands[train], rng=rngs.get("predictor")
    )
    report = predictor.evaluate(features[evaluate], demands[evaluate])
    predictions = predictor.predict(features[evaluate])

    return SearchWorkload(
        config=cfg,
        ms_per_unit=scale,
        serial_ms=serial_ms,
        statistics=calibration.statistics,
        parallel_model=model,
        speedup_book=book,
        group_weights=weights,
        predictor_report=report,
        pool_demands_ms=demands[evaluate],
        pool_predictions_ms=predictions,
        pool_profiles=[profiles[i] for i in evaluate],
        provenance=WorkloadProvenance(
            seed=seed,
            pool_size=pool_size,
            max_degree=max_degree,
            group_bounds_ms=group_bounds_ms,
            predictor_config=pcfg,
            use_cache=use_cache,
        ),
    )


def _group_weights(
    book: SpeedupBook, demands: np.ndarray
) -> tuple[float, ...]:
    counts = [0] * book.num_groups
    for demand in demands:
        counts[book.group_of(float(demand))] += 1
    total = len(demands)
    return tuple(c / total for c in counts)


def _measured_pool(
    seed: int,
    cfg: SearchWorkloadConfig,
    pool_size: int,
    use_cache: bool,
    rngs: RngFactory,
) -> tuple[np.ndarray, np.ndarray]:
    """Corpus + index + pool execution, with an npz disk cache."""
    cache_path = _cache_path(seed, cfg, pool_size) if use_cache else None
    if cache_path is not None and cache_path.exists():
        data = np.load(cache_path)
        return data["units"], data["features"]

    corpus = build_corpus(cfg, rngs.get("corpus"))
    index = InvertedIndex(corpus)
    generator = QueryGenerator(cfg, rngs.get("queries"))
    queries = generator.generate(pool_size)
    engine = SearchEngine(index, cfg)
    units = np.array(
        [engine.execute(q).total_units for q in queries], dtype=np.float64
    )
    features = query_feature_matrix(queries, index)

    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache_path.with_suffix(".tmp.npz")
        np.savez_compressed(tmp, units=units, features=features)
        os.replace(tmp, cache_path)
    return units, features


def _cache_path(
    seed: int, cfg: SearchWorkloadConfig, pool_size: int
) -> Path:
    base = os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(os.path.expanduser("~"), ".cache", "repro-tpc")
    )
    payload = json.dumps(
        {"seed": seed, "pool": pool_size, "config": asdict(cfg)},
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return Path(base) / f"search-pool-{digest}.npz"
