"""The ISN server model: worker pool, queue, processor sharing.

The server owns a FIFO waiting queue and a fixed pool of worker
threads.  A running request with parallelism degree ``d`` occupies
``d`` workers and progresses at rate ``S(d)`` sequential-work units per
millisecond (its true speedup), scaled by the processor-sharing factor
``min(1, C / T)`` when the total number of active threads ``T`` exceeds
the ``C`` hardware threads — modelling the OS time-sharing of Section
4.1.  Between events the remaining work of every running request is
integrated analytically (rates are piecewise constant), so the
simulation is exact, not time-stepped.

Parallelism policies plug in via three hooks: the degree chosen when a
request starts, an optional first runtime-check delay, and a check
callback that may raise the degree mid-flight (dynamic correction,
RampUp).  Raising a degree charges a configurable ramp-up penalty to
model task re-partitioning and synchronisation overhead.

Hot-path organisation (see DESIGN.md §10): running requests are grouped
into *rate classes* — one per distinct effective speedup value ``S(d)``
— so fluid accrual and the next-completion horizon are O(#classes) per
event instead of O(running requests).  Every float operation matches
the naive per-request formulation bit-for-bit: the per-event service
term ``dt * (S(d) * factor)`` is a single shared multiplication for
the whole class (the same value the per-request loop computed), each
member still absorbs it with one subtraction in cascade order, and the
class-minimum trick relies only on IEEE-754 monotonicity (subtracting
the same term, or dividing by the same positive rate, never reorders
operands).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..errors import SchedulingError, SimulationError
from .engine import Engine, EventHandle
from .metrics import LatencyRecorder
from .request import Request, RequestState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import ServerConfig
    from ..policies.base import ParallelismPolicy

__all__ = ["Server"]

_EPS = 1e-9


class _RateClass:
    """Running requests sharing one effective speedup value ``S(d)``.

    All members progress at the identical rate ``S(d) * factor``, so
    one accrual term per event serves the whole class, and the member
    with the least remaining work (``min_member``) stays the class
    argmin between membership changes: uniform subtraction is monotone,
    it can never reorder two remaining-work values.
    """

    __slots__ = ("speedup", "members", "min_member")

    def __init__(self, speedup: float, first: Request) -> None:
        self.speedup = speedup
        self.members: list[Request] = [first]
        self.min_member: Request = first


class Server:
    """One simulated index-serving node.

    Parameters
    ----------
    config:
        Hardware/worker-pool model.
    policy:
        The parallelism policy making degree decisions.
    engine:
        Event loop this server schedules on (shared in cluster runs).
    recorder:
        Destination for completed-request metrics.
    long_threshold_ms:
        Predicted-time threshold above which a request's threads count
        toward the LongT load metric (Section 4.6).
    """

    def __init__(
        self,
        config: "ServerConfig",
        policy: "ParallelismPolicy",
        engine: Engine | None = None,
        recorder: LatencyRecorder | None = None,
        long_threshold_ms: float = 80.0,
        completion_callback=None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.engine = engine if engine is not None else Engine()
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self.long_threshold_ms = float(long_threshold_ms)
        #: Optional hook invoked with each completed request (used by
        #: the cluster aggregator to observe ISN completions).
        self.completion_callback = completion_callback
        #: Optional hook invoked with each request the moment it is
        #: dispatched (degree already assigned).  This is the tracing
        #: seam of :func:`repro.sim.tracing.attach_tracer`: a single
        #: attribute-is-None test per dispatched request when disabled,
        #: so observability stays effectively free unless attached.
        self.dispatch_callback = None

        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []
        self._busy_workers = 0
        self._long_threads = 0
        self._last_advance = self.engine.now
        self._completion_handle: EventHandle | None = None
        #: Temporary cap on dispatchable workers (degraded-core fault
        #: windows); None means the full configured pool.
        self._worker_limit: int | None = None
        #: Requests withdrawn mid-flight via :meth:`cancel_request`.
        self.cancelled_count = 0
        #: Rate classes of the running set, keyed by effective speedup.
        self._classes: dict[float, _RateClass] = {}
        #: Caches of ``total_throughput(busy)`` and the contention
        #: factor, refreshed whenever ``_busy_workers`` changes.  The
        #: busy count never exceeds the worker pool, so both functions
        #: are tabulated once per server.
        workers = config.worker_threads
        physical = config.physical_cores
        self._throughput_by_busy = tuple(
            config.total_throughput(b) for b in range(workers + 1)
        )
        self._factor_by_busy = tuple(
            1.0 if b <= physical else self._throughput_by_busy[b] / b
            for b in range(workers + 1)
        )
        self._busy_throughput = 0.0
        self._factor = 1.0

        # CPU-utilisation performance counter (sampled EMA, Section 4.6).
        self._cpu_util_ema = 0.0
        self._cpu_busy_integral = 0.0
        self._cpu_window_start = self.engine.now
        self._sampler_handle: EventHandle | None = None

        self._refresh_capacity_cache()
        policy.bind(self)

    # ------------------------------------------------------------------
    # Load-metric surface read by policies (Section 4.6).
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.engine.now

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a worker (WQ-Linear's metric)."""
        return len(self.waiting)

    @property
    def running_count(self) -> int:
        """Number of requests currently executing."""
        return len(self.running)

    @property
    def total_active_threads(self) -> int:
        """AllT: total worker threads currently assigned to requests."""
        return self._busy_workers

    @property
    def active_long_threads(self) -> int:
        """LongT: threads of running requests predicted long (default
        TPC load metric; long threads persist and shape availability)."""
        return self._long_threads

    @property
    def worker_limit(self) -> int:
        """Workers currently dispatchable (may be degraded below config)."""
        if self._worker_limit is None:
            return self.config.worker_threads
        return self._worker_limit

    @property
    def idle_workers(self) -> int:
        """Spare worker threads (TPC's dynamic-correction resource)."""
        return max(0, self.worker_limit - self._busy_workers)

    @property
    def cpu_utilization(self) -> float:
        """CpuUtil: EMA of sampled utilisation, in [0, 1].

        Deliberately laggy — it aggregates a whole sampling window and
        carries EMA history — which is exactly why the paper finds it a
        poor instantaneous-load proxy (Figure 9).
        """
        return self._cpu_util_ema

    @property
    def completed_count(self) -> int:
        """Requests completed so far."""
        return len(self.recorder)

    # ------------------------------------------------------------------
    # Request lifecycle.
    # ------------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Accept a request at the current simulated time."""
        if request.state is not RequestState.CREATED:
            raise SimulationError(f"request {request.rid} already submitted")
        self._advance()
        request.arrival_ms = self.now
        request.state = RequestState.QUEUED
        self.waiting.append(request)
        self._ensure_sampler()
        self._dispatch()
        self._reschedule_completion()

    def _dispatch(self) -> None:
        """Start queued requests while workers are idle (FIFO)."""
        waiting = self.waiting
        initial_degree = self.policy.initial_degree
        max_parallelism = self.config.max_parallelism
        full_pool = self.config.worker_threads
        dispatch_callback = self.dispatch_callback
        while waiting:
            limit = self._worker_limit
            idle = (full_pool if limit is None else limit) - self._busy_workers
            if idle <= 0:
                break
            request = waiting.popleft()
            degree = int(initial_degree(request, self))
            if degree < 1:
                raise SchedulingError(
                    f"{self.policy.name} chose degree {degree} < 1"
                )
            degree = min(degree, max_parallelism, idle)
            request.state = RequestState.RUNNING
            request.start_ms = self.now
            request.degree = degree
            request.initial_degree = degree
            request.max_degree_seen = degree
            self._busy_workers += degree
            self._refresh_capacity_cache()
            if request.predicted_ms > self.long_threshold_ms:
                self._long_threads += degree
            self.running.append(request)
            self._class_join(request)
            if dispatch_callback is not None:
                dispatch_callback(request)
            delay = self.policy.first_check_delay(request, self)
            if delay is not None:
                request.check_handle = self.engine.schedule(
                    max(0.0, float(delay)), lambda r=request: self._on_check(r)
                )

    def _on_check(self, request: Request) -> None:
        """Runtime policy check (dynamic correction / RampUp tick)."""
        request.check_handle = None
        if request.state is not RequestState.RUNNING:
            return
        self._advance()
        new_degree, next_delay = self.policy.on_check(request, self)
        if new_degree is not None and new_degree > request.degree:
            self.raise_degree(request, int(new_degree))
        if next_delay is not None and request.state is RequestState.RUNNING:
            request.check_handle = self.engine.schedule(
                max(0.0, float(next_delay)), lambda r=request: self._on_check(r)
            )
        self._reschedule_completion()

    def raise_degree(self, request: Request, new_degree: int) -> int:
        """Raise a running request's parallelism degree mid-flight.

        The grant is clamped by idle workers and the server-wide maximum
        degree; the ramp-up penalty is charged once per increase.
        Returns the degree actually granted.
        """
        if request.state is not RequestState.RUNNING:
            raise SchedulingError(
                f"cannot change degree of non-running request {request.rid}"
            )
        self._advance()
        granted = min(
            new_degree,
            self.config.max_parallelism,
            request.degree + self.idle_workers,
        )
        if granted <= request.degree:
            return request.degree
        delta = granted - request.degree
        self._class_leave(request)
        self._busy_workers += delta
        self._refresh_capacity_cache()
        if request.predicted_ms > self.long_threshold_ms:
            self._long_threads += delta
        request.degree = granted
        request.max_degree_seen = max(request.max_degree_seen, granted)
        request.degree_changes += 1
        request.remaining_work_ms += self.config.rampup_penalty_ms
        self._class_join(request)
        self._reschedule_completion()
        return granted

    def set_worker_limit(self, limit: int | None) -> None:
        """Cap the dispatchable worker pool (degraded-core fault window).

        Already-running requests keep their workers — the cap only gates
        new dispatches and degree raises — so a limit below the current
        busy count drains naturally instead of preempting.  ``None``
        restores the full configured pool.
        """
        if limit is not None:
            if limit < 1:
                raise SimulationError(f"worker limit must be >= 1, got {limit}")
            limit = min(int(limit), self.config.worker_threads)
        self._advance()
        self._worker_limit = limit
        self._dispatch()
        self._reschedule_completion()

    def cancel_request(self, request: Request, cause: str | None = None) -> float:
        """Withdraw a queued or running request; returns executed work (ms).

        Frees the request's workers immediately and cancels its pending
        runtime-check event through the engine's event-cancel machinery
        (tied-request cancellation, replica kills).  Cancelled requests
        never reach the recorder or the completion callback.  ``cause``
        names why the request was withdrawn (``"hedge-superseded"``,
        ``"blackout"``, ...); it is stored on the request and surfaces
        in traces as the terminal cause.
        """
        if request.state is RequestState.QUEUED:
            try:
                self.waiting.remove(request)
            except ValueError:
                raise SimulationError(
                    f"request {request.rid} is not queued on this server"
                ) from None
            request.state = RequestState.CANCELLED
            request.finish_ms = self.now
            request.cancel_cause = cause
            self.cancelled_count += 1
            return 0.0
        if request.state is not RequestState.RUNNING:
            raise SimulationError(
                f"cannot cancel request {request.rid} in state "
                f"{request.state.value}"
            )
        if request not in self.running:
            raise SimulationError(
                f"request {request.rid} is not running on this server"
            )
        self._advance()
        work_done = max(
            0.0, request.demand_ms - max(request.remaining_work_ms, 0.0)
        )
        self._busy_workers -= request.degree
        self._refresh_capacity_cache()
        if request.predicted_ms > self.long_threshold_ms:
            self._long_threads -= request.degree
        if request.check_handle is not None:
            request.check_handle.cancel()
            request.check_handle = None
        self._class_leave(request)
        self.running.remove(request)
        request.state = RequestState.CANCELLED
        request.finish_ms = self.now
        request.cancel_cause = cause
        self.cancelled_count += 1
        self._dispatch()
        self._reschedule_completion()
        return work_done

    def _complete(self, request: Request) -> None:
        request.state = RequestState.COMPLETED
        request.finish_ms = self.now
        self._busy_workers -= request.degree
        self._refresh_capacity_cache()
        if request.predicted_ms > self.long_threshold_ms:
            self._long_threads -= request.degree
        if request.check_handle is not None:
            request.check_handle.cancel()
            request.check_handle = None
        self._class_leave(request)
        self.running.remove(request)
        self.recorder.record(request)
        if self.completion_callback is not None:
            self.completion_callback(request)

    # ------------------------------------------------------------------
    # Rate-class bookkeeping.
    # ------------------------------------------------------------------

    def _class_join(self, request: Request) -> None:
        """Enter the rate class of the request's current degree."""
        speedup = request.speedup.speedup(request.degree)
        request.service_speedup = speedup
        cls = self._classes.get(speedup)
        if cls is None:
            self._classes[speedup] = _RateClass(speedup, request)
        else:
            cls.members.append(request)
            if request.remaining_work_ms < cls.min_member.remaining_work_ms:
                cls.min_member = request

    def _class_leave(self, request: Request) -> None:
        """Leave the current rate class, re-scanning the min if needed."""
        cls = self._classes[request.service_speedup]
        members = cls.members
        members.remove(request)
        if not members:
            del self._classes[request.service_speedup]
        elif cls.min_member is request:
            best = members[0]
            best_rem = best.remaining_work_ms
            for member in members:
                if member.remaining_work_ms < best_rem:
                    best = member
                    best_rem = member.remaining_work_ms
            cls.min_member = best

    def _refresh_capacity_cache(self) -> None:
        """Recompute the throughput/contention caches after a busy change."""
        busy = self._busy_workers
        self._busy_throughput = self._throughput_by_busy[busy]
        self._factor = self._factor_by_busy[busy]

    # ------------------------------------------------------------------
    # Fluid progress integration.
    # ------------------------------------------------------------------

    def _contention_factor(self) -> float:
        """Processor-sharing slowdown of one thread.

        With ``T`` active threads the machine delivers
        ``total_throughput(T)`` core-equivalents (full speed up to the
        physical core count, diminished SMT-sibling speed beyond, a
        hard ceiling past the hardware-thread count), shared equally.
        The value is cached and refreshed when the busy count changes.
        """
        return self._factor

    def _advance(self) -> None:
        """Integrate remaining work of running requests up to ``now``.

        One accrual term per rate class; each member absorbs it with a
        single subtraction, exactly as the per-request loop would.
        """
        now = self.engine.now
        dt = now - self._last_advance
        if dt <= 0:
            return
        self._cpu_busy_integral += dt * self._busy_throughput
        factor = self._factor
        for cls in self._classes.values():
            rate = cls.speedup * factor
            term = dt * rate
            for member in cls.members:
                member.remaining_work_ms -= term
        self._last_advance = now

    def _reschedule_completion(self) -> None:
        """(Re)schedule the single next-completion event.

        The horizon is the minimum over rate classes of the class-min
        member's time to finish — the same value as the minimum over
        all running requests, because dividing by the shared positive
        class rate preserves the remaining-work ordering.
        """
        handle = self._completion_handle
        if handle is not None:
            handle.cancel()
            self._completion_handle = None
        if not self.running:
            return
        factor = self._factor
        horizon = None
        for cls in self._classes.values():
            remaining = cls.min_member.remaining_work_ms
            if remaining < 0.0:
                remaining = 0.0
            h = remaining / (cls.speedup * factor)
            if horizon is None or h < horizon:
                horizon = h
        self._completion_handle = self.engine.schedule(
            horizon, self._on_completion_event
        )

    def _on_completion_event(self) -> None:
        self._completion_handle = None
        self._advance()
        # A request counts as finished when its remaining work is gone or
        # its time-to-finish drops below 1 ns (guards against the clock
        # no longer resolving the step, which would re-arm forever).
        # The finished test is monotone in remaining work, so the class
        # minima decide in O(#classes) whether anyone finished at all;
        # only a real completion pays the full scan (in running order,
        # which the recorder and completion callbacks observe).
        factor = self._factor
        any_finished = False
        for cls in self._classes.values():
            remaining = cls.min_member.remaining_work_ms
            if (
                remaining <= _EPS
                or remaining / (cls.speedup * factor) <= 1e-6
            ):
                any_finished = True
                break
        if not any_finished:
            # Rates changed between scheduling and firing; just re-arm.
            self._reschedule_completion()
            return
        finished = [
            r
            for r in self.running
            if r.remaining_work_ms <= _EPS
            or r.remaining_work_ms / (r.service_speedup * factor) <= 1e-6
        ]
        for request in finished:
            self._complete(request)
        self._dispatch()
        self._reschedule_completion()

    # ------------------------------------------------------------------
    # CPU-utilisation sampler.
    # ------------------------------------------------------------------

    def _ensure_sampler(self) -> None:
        """(Re)subscribe the CPU sampler on the first submit after idle.

        Paired with the idle shutdown in :meth:`_on_cpu_sample`, this
        keeps a drained server from burning sampler events forever: the
        sampler unsubscribes itself once the server is fully idle and
        is re-armed here by the next arrival.
        """
        if self._sampler_handle is None:
            self._cpu_window_start = self.now
            self._cpu_busy_integral = 0.0
            self._sampler_handle = self.engine.schedule(
                self.config.cpu_sample_interval_ms, self._on_cpu_sample
            )

    def _on_cpu_sample(self) -> None:
        self._sampler_handle = None
        self._advance()
        window = self.now - self._cpu_window_start
        if window > 0:
            sample = self._cpu_busy_integral / (
                window * self.config.capacity_core_equivalents
            )
            alpha = self.config.cpu_ema_alpha
            self._cpu_util_ema = (
                alpha * min(sample, 1.0) + (1 - alpha) * self._cpu_util_ema
            )
        self._cpu_busy_integral = 0.0
        self._cpu_window_start = self.now
        if self.running or self.waiting:
            self._sampler_handle = self.engine.schedule(
                self.config.cpu_sample_interval_ms, self._on_cpu_sample
            )
        else:
            # Fully idle: stop sampling (no event churn in idle tails)
            # and decay the EMA to zero; submit() resubscribes.
            self._cpu_util_ema = 0.0

    # ------------------------------------------------------------------

    def run_to_completion(self, expected: int, max_events: int | None = None) -> None:
        """Drive the engine until ``expected`` requests have completed.

        Convenience for single-server experiments; cluster runs drive a
        shared engine externally.
        """
        budget = max_events
        engine_step = self.engine.step
        recorder = self.recorder
        while len(recorder) < expected:
            if not engine_step():
                raise SimulationError(
                    f"engine drained with {self.completed_count}/{expected} "
                    "requests complete"
                )
            if budget is not None:
                budget -= 1
                if budget <= 0:
                    raise SimulationError("event budget exhausted")

    def __repr__(self) -> str:
        return (
            f"Server(policy={self.policy.name}, queued={self.queue_length}, "
            f"running={self.running_count}, busy={self._busy_workers}/"
            f"{self.config.worker_threads})"
        )
