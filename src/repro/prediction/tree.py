"""Histogram-based CART regression tree (numpy only).

Features are pre-binned into at most 256 quantile bins; each split
search accumulates per-bin sums with ``np.bincount`` and scans the
variance-gain of every bin boundary — the same strategy LightGBM-class
learners use, compact enough to implement and verify from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PredictionError

__all__ = ["FeatureBinner", "RegressionTree"]


class FeatureBinner:
    """Maps raw feature columns to small integer bins by quantile."""

    def __init__(self, max_bins: int = 64) -> None:
        if not 2 <= max_bins <= 256:
            raise PredictionError("max_bins must be in [2, 256]")
        self.max_bins = max_bins
        self._edges: list[np.ndarray] = []

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self._edges)

    def fit(self, features: np.ndarray) -> "FeatureBinner":
        """Learn per-feature quantile bin edges."""
        X = _as_matrix(features)
        self._edges = []
        quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            edges = np.unique(np.quantile(X[:, j], quantiles))
            self._edges.append(edges)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Bin a feature matrix into uint8 codes."""
        if not self._edges:
            raise PredictionError("binner is not fitted")
        X = _as_matrix(features)
        if X.shape[1] != len(self._edges):
            raise PredictionError(
                f"expected {len(self._edges)} features, got {X.shape[1]}"
            )
        binned = np.empty(X.shape, dtype=np.uint8)
        for j, edges in enumerate(self._edges):
            binned[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return binned

    def num_bins(self, feature: int) -> int:
        """Number of distinct bins of one feature."""
        return len(self._edges[feature]) + 1


@dataclass(frozen=True)
class _Node:
    """One tree node; leaves carry a value, internal nodes a split."""

    feature: int
    threshold_bin: int
    left: int
    right: int
    value: float
    is_leaf: bool


class RegressionTree:
    """A depth-bounded least-squares regression tree on binned features."""

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 8) -> None:
        if max_depth < 1:
            raise PredictionError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise PredictionError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._nodes: list[_Node] = []

    @property
    def num_nodes(self) -> int:
        """Total node count after fitting."""
        return len(self._nodes)

    def fit(self, binned: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        """Fit to binned features (uint8) and continuous targets."""
        X = np.asarray(binned)
        y = np.asarray(targets, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise PredictionError("binned features and targets must align")
        if len(y) == 0:
            raise PredictionError("cannot fit a tree on zero samples")
        self._nodes = []
        self._grow(X, y, np.arange(len(y)), depth=0)
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, rows: np.ndarray, depth: int
    ) -> int:
        node_id = len(self._nodes)
        value = float(y[rows].mean())
        self._nodes.append(_Node(-1, -1, -1, -1, value, True))
        if depth >= self.max_depth or len(rows) < 2 * self.min_samples_leaf:
            return node_id
        split = self._best_split(X, y, rows)
        if split is None:
            return node_id
        feature, threshold_bin = split
        go_left = X[rows, feature] <= threshold_bin
        left_rows = rows[go_left]
        right_rows = rows[~go_left]
        left_id = self._grow(X, y, left_rows, depth + 1)
        right_id = self._grow(X, y, right_rows, depth + 1)
        self._nodes[node_id] = _Node(
            feature, threshold_bin, left_id, right_id, value, False
        )
        return node_id

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, rows: np.ndarray
    ) -> tuple[int, int] | None:
        y_rows = y[rows]
        n = len(rows)
        total_sum = y_rows.sum()
        best_gain = 1e-12
        best: tuple[int, int] | None = None
        for feature in range(X.shape[1]):
            codes = X[rows, feature].astype(np.int64)
            counts = np.bincount(codes)
            if len(counts) < 2:
                continue
            sums = np.bincount(codes, weights=y_rows)
            left_counts = np.cumsum(counts)[:-1]
            left_sums = np.cumsum(sums)[:-1]
            right_counts = n - left_counts
            right_sums = total_sum - left_sums
            valid = (left_counts >= self.min_samples_leaf) & (
                right_counts >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = np.where(
                    valid,
                    left_sums**2 / left_counts
                    + right_sums**2 / right_counts
                    - total_sum**2 / n,
                    -np.inf,
                )
            idx = int(np.argmax(gain))
            if gain[idx] > best_gain:
                best_gain = float(gain[idx])
                best = (feature, idx)
        return best

    def predict(self, binned: np.ndarray) -> np.ndarray:
        """Predict for binned features."""
        if not self._nodes:
            raise PredictionError("tree is not fitted")
        X = np.asarray(binned)
        out = np.empty(len(X), dtype=np.float64)
        # Vectorised level-by-level routing.
        node_ids = np.zeros(len(X), dtype=np.int64)
        active = np.arange(len(X))
        while len(active):
            still_internal = []
            for nid in np.unique(node_ids[active]):
                node = self._nodes[nid]
                members = active[node_ids[active] == nid]
                if node.is_leaf:
                    out[members] = node.value
                    continue
                left = X[members, node.feature] <= node.threshold_bin
                node_ids[members[left]] = node.left
                node_ids[members[~left]] = node.right
                still_internal.append(members)
            active = (
                np.concatenate(still_internal) if still_internal else np.empty(0, int)
            )
        return out


def _as_matrix(features: np.ndarray) -> np.ndarray:
    X = np.asarray(features, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise PredictionError(f"features must be 2-D, got shape {X.shape}")
    return X
