"""Dynamic correction: ramp up requests that overrun the target.

Section 3.2: when a request has not completed within its target E —
typically a long request mispredicted as short — TPC raises its
parallelism degree at runtime, up to all currently idle worker threads
or the maximum degree, whichever binds first.  Correction re-checks
periodically while the request remains below the maximum degree, so a
request that found no spare workers at its first overrun still gets
accelerated once workers free up.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CorrectionController", "CorrectionDecision"]


@dataclass(frozen=True)
class CorrectionDecision:
    """Outcome of one correction check.

    ``new_degree`` is None when no increase is possible right now;
    ``recheck_after_ms`` is None when no further checks are needed
    (the request reached the maximum degree).
    """

    new_degree: int | None
    recheck_after_ms: float | None


class CorrectionController:
    """Stateless policy kernel deciding degree increases on overrun.

    Parameters
    ----------
    max_degree:
        Server-wide maximum parallelism degree ``P``.
    recheck_ms:
        Interval between correction attempts while below ``P``.
    """

    def __init__(self, max_degree: int, recheck_ms: float) -> None:
        if max_degree < 1:
            raise ValueError(f"max_degree must be >= 1, got {max_degree}")
        if recheck_ms <= 0:
            raise ValueError(f"recheck_ms must be > 0, got {recheck_ms}")
        self.max_degree = max_degree
        self.recheck_ms = recheck_ms

    def decide(self, current_degree: int, idle_workers: int) -> CorrectionDecision:
        """Decide the new degree for a request that overran its target.

        The degree rises by the number of idle workers, clamped at the
        maximum degree (the paper measures spare resources as idle
        worker threads).  If the request is already at the maximum, no
        further checks are scheduled.
        """
        if current_degree >= self.max_degree:
            return CorrectionDecision(new_degree=None, recheck_after_ms=None)
        granted = min(self.max_degree, current_degree + max(idle_workers, 0))
        if granted <= current_degree:
            # No spare capacity right now; try again shortly.
            return CorrectionDecision(
                new_degree=None, recheck_after_ms=self.recheck_ms
            )
        recheck = None if granted >= self.max_degree else self.recheck_ms
        return CorrectionDecision(new_degree=granted, recheck_after_ms=recheck)
