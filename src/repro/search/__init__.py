"""Web-search substrate: corpus, inverted index, query execution.

Replaces the paper's production Bing index and query log (see
DESIGN.md).  A synthetic Zipf corpus feeds an in-memory inverted
index; queries execute for real (posting traversal, match counting,
BM25 scoring, top-k), and a query's *service demand* is the
deterministic work this execution performs, calibrated to the paper's
published demand statistics.  The task-pool parallel-execution model
derives per-query speedup profiles that reproduce Figure 2.
"""

from .corpus import Corpus, build_corpus
from .index import InvertedIndex
from .query import Query, QueryGenerator
from .engine import SearchEngine, QueryExecution
from .scoring import bm25_scores, top_k_documents
from .parallel import ParallelExecutionModel, fit_parallel_model
from .calibrate import CalibrationResult, calibrate_workload
from .workload import SearchWorkload, build_search_workload

__all__ = [
    "Corpus",
    "build_corpus",
    "InvertedIndex",
    "Query",
    "QueryGenerator",
    "SearchEngine",
    "QueryExecution",
    "bm25_scores",
    "top_k_documents",
    "ParallelExecutionModel",
    "fit_parallel_model",
    "CalibrationResult",
    "calibrate_workload",
    "SearchWorkload",
    "build_search_workload",
]
