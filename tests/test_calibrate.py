"""Tests for workload calibration against Section 2 statistics."""

import numpy as np
import pytest

from repro.config import SearchWorkloadConfig
from repro.errors import CalibrationError
from repro.search.calibrate import calibrate_workload, workload_statistics


class TestStatistics:
    def test_known_sample(self):
        demands = np.array([1.0] * 85 + [50.0] * 11 + [200.0] * 4)
        stats = workload_statistics(demands)
        assert stats.short_fraction == pytest.approx(0.85)
        assert stats.long_fraction == pytest.approx(0.04)
        assert stats.median_ms == 1.0
        assert stats.max_ms == 200.0

    def test_ratios(self):
        demands = np.array([2.0] * 99 + [100.0])
        stats = workload_statistics(demands)
        assert stats.p99_over_median == pytest.approx(stats.p99_ms / 2.0)

    def test_empty_rejected(self):
        with pytest.raises(CalibrationError):
            workload_statistics(np.array([]))

    def test_as_row_contains_paper_fields(self):
        stats = workload_statistics(np.array([1.0, 2.0, 3.0]))
        row = stats.as_row()
        assert "mean_ms" in row
        assert "short_fraction(<15ms)" in row
        assert "p99/median" in row


class TestCalibration:
    def test_scale_matches_mean_exactly(self):
        cfg = SearchWorkloadConfig()
        units = np.random.default_rng(0).exponential(1000.0, size=5000)
        result = calibrate_workload(units, cfg)
        scaled_mean = float((units * result.ms_per_unit).mean())
        assert scaled_mean == pytest.approx(cfg.target_mean_ms)

    def test_statistics_reported_at_calibrated_scale(self):
        cfg = SearchWorkloadConfig()
        units = np.array([100.0, 200.0, 300.0])
        result = calibrate_workload(units, cfg)
        assert result.statistics.mean_ms == pytest.approx(cfg.target_mean_ms)

    def test_rejects_empty(self):
        with pytest.raises(CalibrationError):
            calibrate_workload(np.array([]), SearchWorkloadConfig())

    def test_rejects_nonpositive_units(self):
        with pytest.raises(CalibrationError):
            calibrate_workload(np.array([1.0, 0.0]), SearchWorkloadConfig())
