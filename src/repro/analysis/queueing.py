"""Queueing-theory validators for the simulation substrate.

These helpers cross-check simulator outputs against closed-form
queueing identities, so that any accounting bug in the fluid server
model (lost work, phantom queueing) is caught by theory rather than by
eyeballing latency curves.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..sim.metrics import LatencyRecorder

__all__ = [
    "offered_load_core_equivalents",
    "mean_concurrency",
    "utilisation",
    "verify_littles_law",
]


def offered_load_core_equivalents(
    qps: float, mean_demand_ms: float
) -> float:
    """Average core-equivalents of sequential work offered per second.

    ``lambda * E[S]``: e.g. 450 QPS of 13.47 ms queries offer ~6.1
    core-equivalents of work.
    """
    if qps <= 0 or mean_demand_ms <= 0:
        raise SimulationError("qps and mean demand must be positive")
    return qps * mean_demand_ms / 1000.0


def mean_concurrency(recorder: LatencyRecorder, qps: float) -> float:
    """Little's law estimate of in-system requests: ``L = lambda * W``."""
    if len(recorder) == 0:
        raise SimulationError("empty recorder")
    mean_response_ms = float(np.mean(recorder.responses_ms))
    return qps * mean_response_ms / 1000.0


def utilisation(
    qps: float, mean_demand_ms: float, capacity_core_equivalents: float
) -> float:
    """Base utilisation of the machine, ignoring parallelism overheads."""
    if capacity_core_equivalents <= 0:
        raise SimulationError("capacity must be positive")
    return offered_load_core_equivalents(qps, mean_demand_ms) / (
        capacity_core_equivalents
    )


def verify_littles_law(
    recorder: LatencyRecorder,
    qps: float,
    observed_mean_concurrency: float,
    tolerance: float = 0.15,
) -> None:
    """Assert an observed mean concurrency against Little's law.

    Raises :class:`SimulationError` when the relative deviation exceeds
    ``tolerance`` — the simulator is mis-accounting work or time.
    """
    expected = mean_concurrency(recorder, qps)
    if expected == 0:
        raise SimulationError("degenerate zero-latency run")
    deviation = abs(observed_mean_concurrency - expected) / expected
    if deviation > tolerance:
        raise SimulationError(
            "Little's law violated: observed concurrency "
            f"{observed_mean_concurrency:.3f} vs lambda*W = {expected:.3f} "
            f"({100 * deviation:.1f}% off)"
        )
