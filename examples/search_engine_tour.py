#!/usr/bin/env python3
"""Tour of the web-search substrate: from corpus to tail latency.

Walks through each layer the reproduction builds from scratch —
corpus, inverted index, real query execution with BM25 top-k, the
measured cost model, the task-pool speedup profiles, and the trained
execution-time predictor — ending with the single mispredicted query
that motivates dynamic correction.

Run:  python examples/search_engine_tour.py
"""

import numpy as np

from repro.config import SearchWorkloadConfig
from repro.prediction.features import QUERY_FEATURE_NAMES, query_features
from repro.rng import RngFactory
from repro.search import (
    InvertedIndex,
    QueryGenerator,
    SearchEngine,
    build_corpus,
    build_search_workload,
)


def main() -> None:
    config = SearchWorkloadConfig(num_documents=8_000, vocabulary_size=3_000)
    rngs = RngFactory(2024)

    print("1. Corpus: synthetic Zipf web documents")
    corpus = build_corpus(config, rngs.get("corpus"))
    print(
        f"   {corpus.num_documents} documents, {corpus.total_tokens} tokens, "
        f"vocabulary {corpus.vocabulary_size}"
    )

    print("\n2. Inverted index")
    index = InvertedIndex(corpus)
    dfs = index.document_frequencies
    print(
        f"   posting entries: {int(dfs.sum())}; most popular term appears in "
        f"{int(dfs.max())} documents, median term in {int(np.median(dfs))}"
    )

    print("\n3. Real query execution (matching + BM25 top-k)")
    engine = SearchEngine(index, config)
    generator = QueryGenerator(config, rngs.get("queries"))
    easy, hard = None, None
    for query in generator.generate(200):
        execution = engine.execute(query, compute_results=True)
        if query.num_keywords <= 2 and easy is None:
            easy = (query, execution)
        if query.num_keywords >= 6 and hard is None:
            hard = (query, execution)
        if easy and hard:
            break
    assert easy is not None and hard is not None
    for label, (query, execution) in (("easy", easy), ("hard", hard)):
        top = execution.results[0] if execution.results else None
        print(
            f"   {label}: {query.num_keywords} keywords, "
            f"{execution.total_postings} postings traversed, "
            f"{execution.matched_documents} docs matched, "
            f"{execution.total_units:.0f} work units"
            + (f", best doc {top[0]} (score {top[1]:.2f})" if top else "")
        )
    ratio = hard[1].total_units / easy[1].total_units
    print(f"   hard/easy cost ratio: {ratio:.0f}x — the latency-variability source")

    print("\n4. Pre-execution features feed the predictor")
    feats = query_features(hard[0], index)
    for name, value in zip(QUERY_FEATURE_NAMES, feats):
        print(f"   {name:22s} = {value:.2f}")

    print("\n5. Full calibrated workload (costs -> ms, profiles, predictor)")
    workload = build_search_workload(seed=2024, pool_size=6_000)
    stats = workload.statistics
    print(
        f"   mean {stats.mean_ms:.2f} ms | median {stats.median_ms:.2f} ms | "
        f"p99 {stats.p99_ms:.0f} ms | {100 * stats.long_fraction:.1f}% long"
    )
    for g, name in enumerate(("short", "mid", "long")):
        profile = workload.speedup_book.profile_of_group(g)
        print(f"   {name:5s} group speedup at 6 threads: {profile.speedup(6):.2f}x")
    report = workload.predictor_report
    print(
        f"   predictor: L1 {report.l1_error_ms:.1f} ms, precision "
        f"{report.precision:.2f}, recall {report.recall:.2f}"
    )

    print("\n6. The misprediction that motivates dynamic correction")
    requests = workload.make_requests(5_000, rngs.get("trace"))
    worst = max(
        (r for r in requests if r.predicted_ms <= 80.0),
        key=lambda r: r.demand_ms,
    )
    print(
        f"   request {worst.rid}: predicted {worst.predicted_ms:.0f} ms -> "
        f"scheduled as short, actually {worst.demand_ms:.0f} ms."
    )
    print(
        "   Under Pred it runs sequentially and lands squarely in the P99.9;"
        "\n   under TPC the correction timer fires at E and ramps it to the"
        "\n   maximum degree using idle workers."
    )


if __name__ == "__main__":
    main()
