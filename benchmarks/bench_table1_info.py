"""T1 — Table 1: information used by each parallelism policy."""

from conftest import emit
from repro.experiments.report import format_table
from repro.policies.registry import POLICY_INFO


def test_information_matrix(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            [
                info.name,
                "yes" if info.uses_prediction else "no",
                "yes" if info.uses_system_load else "no",
                "yes" if info.uses_parallelism_efficiency else "no",
            ]
            for info in POLICY_INFO.values()
        ],
        rounds=1,
        iterations=1,
    )
    emit(
        "table1_info",
        format_table(
            ["policy", "predicted exec. time", "system load", "para. efficiency"],
            rows,
            title="Table 1 - information used in parallelism policies",
        ),
    )
    # The paper's exact matrix.
    assert POLICY_INFO["TPC"].uses_prediction
    assert POLICY_INFO["TPC"].uses_system_load
    assert POLICY_INFO["TPC"].uses_parallelism_efficiency
    assert (
        not POLICY_INFO["AP"].uses_prediction
        and POLICY_INFO["AP"].uses_system_load
        and POLICY_INFO["AP"].uses_parallelism_efficiency
    )
    assert (
        POLICY_INFO["Pred"].uses_prediction
        and not POLICY_INFO["Pred"].uses_system_load
        and not POLICY_INFO["Pred"].uses_parallelism_efficiency
    )
    assert (
        not POLICY_INFO["WQ-Linear"].uses_prediction
        and POLICY_INFO["WQ-Linear"].uses_system_load
        and not POLICY_INFO["WQ-Linear"].uses_parallelism_efficiency
    )
