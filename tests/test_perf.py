"""Tests for the perf benchmark harness (repro.perf)."""

import json

import pytest

from repro.errors import ConfigError
from repro.perf import (
    HOTPATH_SEED,
    SCENARIOS,
    build_report,
    compare_to_baseline,
    load_baseline,
    run_scenario,
    scenario,
    update_baseline,
    write_report,
)
from repro.perf.runner import peak_rss_kb
from repro.perf.scenarios import run_engine_only, run_server_under_load


class TestScenarioRegistry:
    def test_registered_scenarios(self):
        assert set(SCENARIOS) == {
            "engine_only",
            "server_under_load",
            "tracing_overhead",
            "end_to_end_cell",
        }
        for spec in SCENARIOS.values():
            assert spec.fast_size < spec.full_size

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            scenario("warp_drive")


class TestScenarios:
    def test_engine_only_deterministic_and_compacting(self):
        a = run_engine_only(2_000)
        b = run_engine_only(2_000)
        assert a["events_run"] == b["events_run"] == 2_000
        assert a["compactions"] >= 1

    def test_server_under_load_matches_gate_benchmark(self):
        # The gate's perf_budget check imports this exact function, so
        # seed and event count must line up with the gate's pinning.
        from repro.gate.checks import GATE_SEED, run_hotpath_benchmark

        assert GATE_SEED == HOTPATH_SEED
        assert run_hotpath_benchmark is not None
        metrics = run_server_under_load(500)
        direct = run_hotpath_benchmark(500)
        assert metrics["events_run"] == float(direct.events_run)

    def test_server_under_load_event_count_deterministic(self):
        a = run_server_under_load(1_000)
        b = run_server_under_load(1_000)
        assert a["events_run"] == b["events_run"]


class TestRunner:
    def test_best_of_repeats(self):
        run = run_scenario(scenario("engine_only"), 1_000, repeats=3)
        assert run.repeats == 3
        assert len(run.all_wall_times_s) == 3
        assert run.metrics["wall_time_s"] == min(run.all_wall_times_s)
        assert run.peak_rss_kb > 0.0

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            run_scenario(scenario("engine_only"), 100, repeats=0)

    def test_profile_dump(self, tmp_path):
        prof = tmp_path / "engine.prof"
        run_scenario(
            scenario("engine_only"), 500, repeats=1, profile_path=str(prof)
        )
        import pstats

        stats = pstats.Stats(str(prof))
        assert stats.total_calls > 0

    def test_peak_rss_positive_on_linux(self):
        assert peak_rss_kb() > 0.0


class TestReportAndBaseline:
    def _report(self, fast=True):
        runs = [
            run_scenario(scenario("engine_only"), 1_000, repeats=1),
            run_scenario(scenario("server_under_load"), 300, repeats=1),
        ]
        return build_report(runs, fast=fast)

    def test_report_schema(self, tmp_path):
        report = self._report()
        assert report["mode"] == "fast"
        entry = report["scenarios"]["server_under_load"]
        assert entry["speedup_vs_pre_pr"] > 0.0
        assert entry["pre_pr_events_per_s"] > 0.0
        assert entry["peak_rss_kb"] > 0.0
        out = tmp_path / "BENCH_perf.json"
        write_report(report, out)
        assert json.loads(out.read_text())["schema"] == 1

    def test_baseline_roundtrip_and_mode_isolation(self, tmp_path):
        path = tmp_path / "perf_baseline.json"
        assert load_baseline(path) is None
        fast = self._report(fast=True)
        update_baseline(fast, path)
        full = self._report(fast=False)
        update_baseline(full, path)
        baseline = load_baseline(path)
        assert set(baseline["modes"]) == {"fast", "full"}
        # Updating one mode must not clobber the other.
        update_baseline(self._report(fast=True), path)
        assert "full" in load_baseline(path)["modes"]

    def test_no_regression_against_own_baseline(self, tmp_path):
        path = tmp_path / "perf_baseline.json"
        report = self._report()
        update_baseline(report, path)
        assert compare_to_baseline(report, load_baseline(path)) == []

    def test_regression_detected(self, tmp_path):
        path = tmp_path / "perf_baseline.json"
        report = self._report()
        update_baseline(report, path)
        baseline = load_baseline(path)
        entry = baseline["modes"]["fast"]["engine_only"]
        entry["throughput"] = entry["throughput"] * 100.0
        failures = compare_to_baseline(report, baseline, threshold=0.30)
        assert len(failures) == 1
        assert "engine_only" in failures[0]

    def test_missing_baseline_entries_skipped(self):
        report = self._report()
        assert compare_to_baseline(report, None) == []
        assert compare_to_baseline(report, {"modes": {}}) == []
        # Size mismatch: not comparable, skipped.
        baseline = {
            "modes": {
                "fast": {
                    "engine_only": {
                        "throughput_key": "events_per_s",
                        "throughput": 10.0**12,
                        "size": 999,
                    }
                }
            }
        }
        assert compare_to_baseline(report, baseline) == []

    def test_corrupt_baseline_rejected(self, tmp_path):
        path = tmp_path / "perf_baseline.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_baseline(path)


class TestCli:
    def test_cli_smoke_update_and_gate(self, tmp_path):
        from repro.perf.__main__ import main

        baseline = tmp_path / "perf_baseline.json"
        output = tmp_path / "BENCH_perf.json"
        args = [
            "--fast",
            "--only",
            "engine_only",
            "--repeats",
            "1",
            "--output",
            str(output),
            "--baseline",
            str(baseline),
        ]
        assert main(args + ["--update-baselines"]) == 0
        assert baseline.exists()
        assert main(args) == 0
        report = json.loads(output.read_text())
        assert "engine_only" in report["scenarios"]

    def test_cli_fails_on_regression(self, tmp_path):
        from repro.perf.__main__ import main

        baseline = tmp_path / "perf_baseline.json"
        output = tmp_path / "BENCH_perf.json"
        args = [
            "--fast",
            "--only",
            "engine_only",
            "--repeats",
            "1",
            "--output",
            str(output),
            "--baseline",
            str(baseline),
        ]
        assert main(args + ["--update-baselines"]) == 0
        doc = json.loads(baseline.read_text())
        entry = doc["modes"]["fast"]["engine_only"]
        entry["throughput"] = entry["throughput"] * 100.0
        baseline.write_text(json.dumps(doc))
        assert main(args) == 1
