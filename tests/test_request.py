"""Tests for the Request lifecycle record."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.request import Request, RequestState

from conftest import LONG_PROFILE, make_request


class TestConstruction:
    def test_initial_state(self):
        req = make_request(1, 50.0, 60.0)
        assert req.state is RequestState.CREATED
        assert req.remaining_work_ms == 50.0
        assert req.degree == 0
        assert not req.corrected
        assert req.target_ms is None
        assert math.isnan(req.arrival_ms)

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(SimulationError):
            Request(0, 0.0, 1.0, LONG_PROFILE)

    def test_rejects_negative_prediction(self):
        with pytest.raises(SimulationError):
            Request(0, 1.0, -1.0, LONG_PROFILE)


class TestLifecycleGuards:
    def test_response_requires_completion(self):
        req = make_request(0, 10.0)
        with pytest.raises(SimulationError):
            _ = req.response_ms

    def test_queueing_requires_start(self):
        req = make_request(0, 10.0)
        req.state = RequestState.QUEUED
        with pytest.raises(SimulationError):
            _ = req.queueing_ms

    def test_execution_requires_completion(self):
        req = make_request(0, 10.0)
        req.state = RequestState.RUNNING
        with pytest.raises(SimulationError):
            _ = req.execution_ms

    def test_running_for_requires_running(self):
        req = make_request(0, 10.0)
        with pytest.raises(SimulationError):
            req.running_for(5.0)
        req.state = RequestState.RUNNING
        req.start_ms = 2.0
        assert req.running_for(5.0) == pytest.approx(3.0)

    def test_derived_times_consistent(self):
        req = make_request(0, 10.0)
        req.state = RequestState.COMPLETED
        req.arrival_ms = 1.0
        req.start_ms = 3.0
        req.finish_ms = 15.0
        assert req.response_ms == pytest.approx(14.0)
        assert req.queueing_ms == pytest.approx(2.0)
        assert req.execution_ms == pytest.approx(12.0)
        assert req.response_ms == pytest.approx(
            req.queueing_ms + req.execution_ms
        )

    def test_repr_mentions_state_and_degree(self):
        req = make_request(3, 10.0)
        req.degree = 4
        text = repr(req)
        assert "rid=3" in text and "degree=4" in text
