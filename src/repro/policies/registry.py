"""Policy registry: build any policy of the evaluation by name.

Centralises policy construction for the experiment harness and the
benchmarks, and records the information-use matrix of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..config import PolicyConfig
from ..core.speedup import SpeedupBook
from ..core.target_table import TargetTable
from ..errors import ConfigError
from ..sim.load import LoadMetric
from .adaptive_rampup import AdaptiveRampUpPolicy
from .ap import AdaptiveParallelismPolicy, average_profile
from .base import ParallelismPolicy
from .pred import PredPolicy
from .rampup import RampUpPolicy
from .sequential import SequentialPolicy
from .tp import TPPolicy
from .tpc import TPCPolicy
from .wq_linear import WQLinearPolicy

if TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Sequence

__all__ = ["PolicyInfo", "POLICY_INFO", "make_policy", "policy_names"]


@dataclass(frozen=True)
class PolicyInfo:
    """One row of Table 1: which information a policy consumes."""

    name: str
    uses_prediction: bool
    uses_system_load: bool
    uses_parallelism_efficiency: bool


#: Table 1 of the paper (extended with the additional baselines).
POLICY_INFO: dict[str, PolicyInfo] = {
    "TPC": PolicyInfo("TPC", True, True, True),
    "TP": PolicyInfo("TP", True, True, True),
    "AP": PolicyInfo("AP", False, True, True),
    "Pred": PolicyInfo("Pred", True, False, False),
    "WQ-Linear": PolicyInfo("WQ-Linear", False, True, False),
    "RampUp": PolicyInfo("RampUp", False, False, False),
    "RampUp-Adaptive": PolicyInfo("RampUp-Adaptive", False, True, False),
    "Sequential": PolicyInfo("Sequential", False, False, False),
}


def policy_names() -> list[str]:
    """All registered policy names."""
    return list(POLICY_INFO)


def make_policy(
    name: str,
    speedup_book: SpeedupBook,
    group_weights: "Sequence[float]",
    target_table: TargetTable | None = None,
    policy_config: PolicyConfig | None = None,
    load_metric: LoadMetric = LoadMetric.LONG_THREADS,
    rampup_interval_ms: float | None = None,
    pred_fixed_degree: int | None = None,
) -> ParallelismPolicy:
    """Construct a policy by registry name.

    Parameters
    ----------
    name:
        One of :func:`policy_names` (``"RampUp"`` accepts an interval
        via ``rampup_interval_ms``).
    speedup_book:
        Per-group parallelism-efficiency profiles of the workload.
    group_weights:
        Fraction of queries in each demand group (AP's average profile).
    target_table:
        Required for the TP/TPC families.
    policy_config:
        Shared policy knobs; defaults to :class:`PolicyConfig`.
    """
    cfg = policy_config if policy_config is not None else PolicyConfig()
    if name == "Sequential":
        return SequentialPolicy()
    if name == "Pred":
        degree = (
            pred_fixed_degree
            if pred_fixed_degree is not None
            else cfg.pred_fixed_degree
        )
        return PredPolicy(cfg.long_threshold_ms, degree)
    if name == "WQ-Linear":
        return WQLinearPolicy(cfg.wq_linear_beta)
    if name == "AP":
        avg = average_profile(speedup_book, list(group_weights))
        return AdaptiveParallelismPolicy(avg, cfg.ap_interference_weight)
    if name == "RampUp":
        interval = (
            rampup_interval_ms
            if rampup_interval_ms is not None
            else cfg.rampup_interval_ms
        )
        return RampUpPolicy(interval)
    if name == "RampUp-Adaptive":
        return AdaptiveRampUpPolicy()
    if name in ("TP", "TPC"):
        if target_table is None:
            raise ConfigError(f"{name} requires a target table")
        if name == "TP":
            return TPPolicy(target_table, speedup_book, load_metric)
        return TPCPolicy(
            target_table,
            speedup_book,
            load_metric,
            correction_recheck_ms=cfg.correction_recheck_ms,
        )
    raise ConfigError(
        f"unknown policy {name!r}; known: {', '.join(POLICY_INFO)}"
    )
