"""Tests for time-varying arrival processes."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.arrivals import (
    RateProfile,
    diurnal_profile,
    nonhomogeneous_arrival_times,
)


class TestRateProfile:
    def test_rate_lookup_cycles(self):
        profile = RateProfile((100.0, 300.0), segment_ms=1000.0)
        assert profile.rate_at(0.0) == 100.0
        assert profile.rate_at(1500.0) == 300.0
        assert profile.rate_at(2500.0) == 100.0  # wrapped

    def test_peak_and_mean(self):
        profile = RateProfile((100.0, 300.0), 1000.0)
        assert profile.peak_qps == 300.0
        assert profile.mean_qps == 200.0

    def test_guards(self):
        with pytest.raises(WorkloadError):
            RateProfile((), 1000.0)
        with pytest.raises(WorkloadError):
            RateProfile((0.0,), 1000.0)
        with pytest.raises(WorkloadError):
            RateProfile((100.0,), 0.0)
        with pytest.raises(WorkloadError):
            RateProfile((100.0,), 10.0).rate_at(-1.0)


class TestDiurnalProfile:
    def test_low_high_low_shape(self):
        profile = diurnal_profile(100.0, 500.0, segments=8)
        rates = profile.rates_qps
        assert rates[0] == pytest.approx(100.0, rel=0.01)
        assert max(rates) == pytest.approx(500.0, rel=0.05)
        mid = len(rates) // 2
        assert rates[mid] > rates[0]
        assert rates[mid] > rates[-1]

    def test_rejects_too_few_segments(self):
        with pytest.raises(WorkloadError):
            diurnal_profile(100.0, 200.0, segments=1)


class TestNonhomogeneousArrivals:
    def test_times_increasing_and_sized(self):
        profile = RateProfile((200.0, 400.0), 500.0)
        times = nonhomogeneous_arrival_times(
            500, profile, np.random.default_rng(0)
        )
        assert len(times) == 500
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_rate_modulation_visible(self):
        """Twice as many arrivals land in the high-rate segments."""
        profile = RateProfile((100.0, 300.0), segment_ms=1000.0)
        times = nonhomogeneous_arrival_times(
            20_000, profile, np.random.default_rng(1)
        )
        in_high = ((times % 2000.0) >= 1000.0).mean()
        assert in_high == pytest.approx(0.75, abs=0.02)  # 300/(100+300)

    def test_constant_profile_matches_homogeneous_rate(self):
        profile = RateProfile((250.0,), 1000.0)
        times = nonhomogeneous_arrival_times(
            20_000, profile, np.random.default_rng(2)
        )
        mean_gap = float(np.diff(times).mean())
        assert mean_gap == pytest.approx(4.0, rel=0.05)

    def test_rejects_zero_count(self):
        profile = RateProfile((100.0,), 1000.0)
        with pytest.raises(WorkloadError):
            nonhomogeneous_arrival_times(0, profile, np.random.default_rng(0))
