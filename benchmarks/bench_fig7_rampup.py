"""F7 — Figure 7: TPC vs RampUp with 5/10/20 ms intervals, P99.

Expected shape (Section 4.4): RampUp's small intervals win at light
load but pay heavy parallelism overhead at high load; large intervals
defer acceleration and lose everywhere to early, predicted
parallelism.  TPC beats the *best* RampUp interval at every load.
"""

from conftest import BENCH_SEED, bench_queries, emit, exec_kwargs, qps_grid
from repro.experiments import run_load_sweep
from repro.experiments.report import format_table

INTERVALS = (5.0, 10.0, 20.0)


def _run(workload, search_table):
    grid = qps_grid()
    tpc = run_load_sweep(
        workload, ["TPC"], grid,
        n_requests=bench_queries(), seed=BENCH_SEED,
        target_table=search_table,
        **exec_kwargs(),
    )
    series = {"TPC": [r.p99_ms for r in tpc["TPC"]]}
    for interval in INTERVALS:
        sweep = run_load_sweep(
            workload, ["RampUp"], grid,
            n_requests=bench_queries(), seed=BENCH_SEED,
            rampup_interval_ms=interval,
            **exec_kwargs(),
        )
        series[f"RampUp-{interval:g}ms"] = [r.p99_ms for r in sweep["RampUp"]]
    return series


def test_fig7_tpc_vs_rampup(benchmark, workload, search_table):
    series = benchmark.pedantic(
        lambda: _run(workload, search_table), rounds=1, iterations=1
    )
    grid = qps_grid()
    names = list(series)
    rows = [
        [int(qps)] + [round(series[n][i], 1) for n in names]
        for i, qps in enumerate(grid)
    ]
    emit(
        "fig7_rampup",
        format_table(
            ["QPS", *names], rows,
            title="Figure 7 - P99 latency (ms): TPC vs RampUp",
        ),
    )

    for i in range(len(grid)):
        best_rampup = min(series[f"RampUp-{iv:g}ms"][i] for iv in INTERVALS)
        # TPC beats even the best interval at (almost) every load.
        assert series["TPC"][i] <= best_rampup * 1.08, f"load index {i}"
    # Aggressive ramping (5 ms) visibly overtakes lazy ramping (20 ms)
    # at light load and the ordering flips under pressure.
    assert series["RampUp-5ms"][0] < series["RampUp-20ms"][0]
