"""Sequential query execution against the inverted index.

Execution mirrors an ISN's two phases (Section 2.1):

1. **Traversal/matching** — walk the posting list of every keyword and
   count, per document, how many keywords it contains.  Documents
   matching at least half the keywords survive (a simple stand-in for
   conjunctive processing with dynamic pruning).  Cost: 1 work unit per
   posting entry traversed.
2. **Scoring** — BM25-score every surviving (document, term) hit and
   keep the top-k.  Cost: ``score_cost_per_hit`` units per scored hit.

A query's *service demand* is the total work units performed; the
traversal part is computable from pre-execution features (posting
lengths), while the scoring part depends on how many documents actually
match — information unavailable before execution, which is what makes
execution-time prediction realistically imperfect (Section 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SearchWorkloadConfig
from .index import InvertedIndex
from .intersection import intersect_many
from .query import Query
from .scoring import bm25_scores, top_k_documents

__all__ = ["QueryExecution", "ConjunctiveExecution", "SearchEngine"]


@dataclass(frozen=True)
class QueryExecution:
    """Measured outcome of one sequential query execution."""

    qid: int
    num_keywords: int
    total_postings: int
    matched_documents: int
    scored_hits: int
    traversal_units: float
    scoring_units: float
    serial_units: float
    results: tuple[tuple[int, float], ...] | None

    @property
    def parallel_units(self) -> float:
        """Work units belonging to the parallelizable phase."""
        return self.traversal_units + self.scoring_units

    @property
    def total_units(self) -> float:
        """Total sequential work units (serial + parallelizable)."""
        return self.serial_units + self.parallel_units


@dataclass(frozen=True)
class ConjunctiveExecution:
    """Outcome of strict-AND query processing (all keywords required)."""

    qid: int
    num_keywords: int
    matched_documents: tuple[int, ...]
    comparisons: int

    @property
    def match_count(self) -> int:
        """Number of documents containing every keyword."""
        return len(self.matched_documents)


class SearchEngine:
    """Executes queries against one index fragment and meters the work."""

    def __init__(
        self, index: InvertedIndex, config: SearchWorkloadConfig
    ) -> None:
        self.index = index
        self.config = config

    def execute(self, query: Query, compute_results: bool = False) -> QueryExecution:
        """Run one query; optionally materialise the top-k results.

        ``compute_results=False`` still performs the matching for real
        (so costs are measured, not estimated) but skips building the
        ranked result list — useful when generating large traces.
        """
        term_ids = np.asarray(query.term_ids, dtype=np.int64)
        k = len(term_ids)
        min_match = 1 if k == 1 else (k + 1) // 2

        posting_docs = []
        posting_tfs = []
        posting_terms = []
        for term in term_ids:
            docs, tfs = self.index.postings(int(term))
            posting_docs.append(docs)
            posting_tfs.append(tfs)
            posting_terms.append(np.full(len(docs), term, dtype=np.int64))
        all_docs = (
            np.concatenate(posting_docs) if posting_docs else np.empty(0, np.int32)
        )
        total_postings = int(all_docs.size)

        if total_postings == 0:
            matched = 0
            scored_hits = 0
            results: tuple[tuple[int, float], ...] | None = (
                () if compute_results else None
            )
        else:
            order = np.argsort(all_docs, kind="stable")
            sorted_docs = all_docs[order]
            boundary = np.empty(len(sorted_docs), dtype=bool)
            boundary[0] = True
            boundary[1:] = sorted_docs[1:] != sorted_docs[:-1]
            starts = np.flatnonzero(boundary)
            run_lengths = np.diff(np.append(starts, len(sorted_docs)))
            survivors = run_lengths >= min_match
            matched = int(survivors.sum())
            scored_hits = int(run_lengths[survivors].sum())
            if compute_results and matched:
                results = self._score_survivors(
                    order,
                    starts,
                    run_lengths,
                    survivors,
                    sorted_docs,
                    posting_tfs,
                    posting_terms,
                )
            else:
                results = () if compute_results else None

        traversal_units = float(total_postings)
        scoring_units = float(scored_hits) * self.config.score_cost_per_hit
        return QueryExecution(
            qid=query.qid,
            num_keywords=k,
            total_postings=total_postings,
            matched_documents=matched,
            scored_hits=scored_hits,
            traversal_units=traversal_units,
            scoring_units=scoring_units,
            serial_units=float(self.config.serial_work_units),
            results=results,
        )

    def execute_conjunctive(self, query: Query) -> ConjunctiveExecution:
        """Strict-AND processing via k-way galloping intersection.

        The paper's Section 2.3 singles out multi-keyword intersection
        as a long-query mechanism; this path exposes it directly (the
        default execution uses majority matching, a stand-in for
        disjunctive processing with dynamic pruning).  The returned
        ``comparisons`` count is the intersection work performed.
        """
        postings = [
            self.index.postings(int(term))[0] for term in query.term_ids
        ]
        matched, comparisons = intersect_many(postings)
        return ConjunctiveExecution(
            qid=query.qid,
            num_keywords=query.num_keywords,
            matched_documents=tuple(int(d) for d in matched),
            comparisons=comparisons,
        )

    def _score_survivors(
        self,
        order: np.ndarray,
        starts: np.ndarray,
        run_lengths: np.ndarray,
        survivors: np.ndarray,
        sorted_docs: np.ndarray,
        posting_tfs: list[np.ndarray],
        posting_terms: list[np.ndarray],
    ) -> tuple[tuple[int, float], ...]:
        all_tfs = np.concatenate(posting_tfs)[order]
        all_terms = np.concatenate(posting_terms)[order]
        # Expand survivor runs back into per-hit masks.
        hit_mask = np.repeat(survivors, run_lengths)
        docs = sorted_docs[hit_mask]
        tfs = all_tfs[hit_mask]
        terms = all_terms[hit_mask]
        idfs = self.index.idf_array(terms)
        lengths = self.index.doc_lengths[docs].astype(np.float64)
        scores = bm25_scores(tfs, idfs, lengths, self.index.avg_doc_length)
        return tuple(top_k_documents(docs, scores, self.config.top_k))
