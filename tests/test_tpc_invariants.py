"""End-to-end invariants of the TPC policy under randomized workloads."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ServerConfig
from repro.core.target_table import TargetTable
from repro.policies import TPCPolicy, TPPolicy
from repro.sim.engine import Engine
from repro.sim.client import OpenLoopClient
from repro.sim.server import Server

from conftest import LONG_PROFILE, MID_PROFILE, SHORT_PROFILE, make_request


TABLE = TargetTable([(0, 35), (4, 45), (8, 60), (16, 90), (32, 130)])


def run_tpc(demands_preds, qps=400.0, seed=0, policy_cls=TPCPolicy,
            speedup_book=None):
    from repro.core.speedup import SpeedupBook

    book = speedup_book or SpeedupBook(
        [SHORT_PROFILE, MID_PROFILE, LONG_PROFILE]
    )
    policy = policy_cls(TABLE, book)
    server = Server(ServerConfig(), policy, engine=Engine())
    reqs = []
    for i, (demand, pred) in enumerate(demands_preds):
        profile = book.profile_for(demand)
        reqs.append(make_request(i, demand, pred, profile))
    rng = np.random.default_rng(seed)
    OpenLoopClient([server]).schedule_trace(server.engine, reqs, qps, rng)
    server.run_to_completion(len(reqs))
    return server, reqs


demand_pred_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=300.0),
        st.floats(min_value=0.5, max_value=300.0),
    ),
    min_size=5,
    max_size=60,
)


@settings(max_examples=20, deadline=None)
@given(demand_pred_lists)
def test_every_request_gets_a_target(pairs):
    server, reqs = run_tpc(pairs)
    for req in reqs:
        assert req.target_ms is not None
        assert req.target_ms in TABLE.targets


@settings(max_examples=20, deadline=None)
@given(demand_pred_lists)
def test_corrected_requests_ran_past_target(pairs):
    """A request is only marked corrected if it executed for at least
    its target E before the degree increase."""
    server, reqs = run_tpc(pairs)
    for req in reqs:
        if req.corrected:
            assert req.execution_ms >= req.target_ms - 1e-6
            assert req.max_degree_seen > req.initial_degree


@settings(max_examples=20, deadline=None)
@given(demand_pred_lists)
def test_uncorrected_requests_keep_initial_degree(pairs):
    server, reqs = run_tpc(pairs)
    for req in reqs:
        if not req.corrected:
            assert req.max_degree_seen == req.initial_degree


@settings(max_examples=15, deadline=None)
@given(demand_pred_lists)
def test_tpc_never_slower_than_tp_for_any_request_population(pairs):
    """Across random workloads, TPC's max response never exceeds TP's
    by more than the ramp-up penalty overhead allows."""
    tp_server, _ = run_tpc(pairs, policy_cls=TPPolicy)
    tpc_server, _ = run_tpc(pairs, policy_cls=TPCPolicy)
    tp_max = max(tp_server.recorder.responses_ms)
    tpc_max = max(tpc_server.recorder.responses_ms)
    # Correction can only shorten the worst request (tiny slack for the
    # penalty charged on degree increases of already-short requests).
    assert tpc_max <= tp_max * 1.10 + 2.0


def test_short_predictions_below_target_start_sequential():
    server, reqs = run_tpc(
        [(20.0, 20.0), (25.0, 10.0), (200.0, 30.0)], qps=10.0
    )
    for req in reqs:
        if req.predicted_ms <= req.target_ms:
            assert req.initial_degree == 1


def test_predicted_long_start_parallel():
    server, reqs = run_tpc([(200.0, 200.0)], qps=1.0)
    assert reqs[0].initial_degree > 1
    assert not reqs[0].corrected or reqs[0].max_degree_seen == 6
