"""Tests for the repro.exec execution layer (specs, pool, cache).

The load-bearing properties:

* specs are frozen, picklable values with stable content hashes, and
  any field change produces a new hash (cache invalidation);
* a parallel sweep is bit-identical to the serial one — parallelism
  changes wall-clock time, never numbers;
* a fully cached re-run performs zero simulation work.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.config import (
    FinanceConfig,
    PredictorConfig,
    SearchWorkloadConfig,
)
from repro.core.target_table import TargetTable
from repro.errors import ConfigError
from repro.exec import (
    CellSpec,
    ResultCache,
    SweepSpec,
    WorkloadSpec,
    default_cache,
    resolve_worker_count,
    run_cell,
    run_sweep,
)
from repro.exec import pool as pool_mod


TINY_SEARCH = SearchWorkloadConfig(
    num_documents=3_000,
    vocabulary_size=1_500,
    mean_doc_length=120,
    hard_term_pool=150,
    easy_skip_top=15,
)
TINY_PREDICTOR = PredictorConfig(num_trees=60, max_depth=4)
TINY_TABLE = TargetTable([(0, 40), (8, 65), (16, 90)])


def tiny_workload_spec() -> WorkloadSpec:
    """Recipe identical to the ``tiny_search_workload`` fixture."""
    return WorkloadSpec.search(
        seed=11,
        config=TINY_SEARCH,
        predictor_config=TINY_PREDICTOR,
        pool_size=1_200,
        use_workload_cache=False,
    )


def tiny_cell(policy: str = "TPC", qps: float = 300.0, **kwargs) -> CellSpec:
    return CellSpec.for_experiment(
        tiny_workload_spec(), policy, qps, n_requests=200, seed=5,
        target_table=TINY_TABLE, **kwargs,
    )


@pytest.fixture(scope="module")
def small_sweep() -> SweepSpec:
    return SweepSpec.grid(
        tiny_workload_spec(), ["TPC", "AP"], [250.0, 450.0],
        n_requests=200, seed=7, target_table=TINY_TABLE,
    )


@pytest.fixture(scope="module")
def serial_results(small_sweep):
    """The reference: every cell executed inline in this process."""
    return run_sweep(small_sweep, workers=1)


@pytest.fixture(scope="module")
def parallel_run(small_sweep):
    """The same sweep over a 2-worker process pool, with progress."""
    events = []
    results = run_sweep(small_sweep, workers=2, progress=events.append)
    return results, events


class TestSpecHash:
    def test_hash_is_stable_across_instances(self):
        assert tiny_cell().content_hash == tiny_cell().content_hash

    def test_every_field_change_changes_the_hash(self):
        base = tiny_cell()
        variants = [
            tiny_cell(qps=301.0),
            tiny_cell(policy="AP"),
            dataclasses.replace(base, seed=6),
            dataclasses.replace(base, n_requests=201),
            dataclasses.replace(base, target_entries=((0.0, 41.0),)),
            dataclasses.replace(base, oracle_sigma=0.1),
            dataclasses.replace(
                base, workload=WorkloadSpec.search(seed=12, config=TINY_SEARCH)
            ),
        ]
        hashes = {base.content_hash} | {v.content_hash for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_omitted_configs_normalise_to_defaults(self):
        # Two specs that build identical workloads hash identically,
        # whether the default configs are spelled out or omitted.
        a = WorkloadSpec.search(seed=1)
        b = WorkloadSpec.search(
            seed=1,
            config=SearchWorkloadConfig(),
            predictor_config=PredictorConfig(),
        )
        assert a.content_hash == b.content_hash
        assert (
            WorkloadSpec.finance().content_hash
            == WorkloadSpec.finance(FinanceConfig()).content_hash
        )

    def test_sweep_hash_covers_all_cells(self, small_sweep):
        reordered = SweepSpec(tuple(reversed(small_sweep.cells)))
        assert reordered.content_hash != small_sweep.content_hash

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(kind="bogus")
        with pytest.raises(ConfigError):
            tiny_cell(qps=0.0)
        with pytest.raises(ConfigError):
            CellSpec.for_experiment(
                tiny_workload_spec(), "TPC", 100.0, n_requests=0, seed=1
            )
        with pytest.raises(ConfigError):
            SweepSpec(())


class TestPickleRoundTrip:
    def test_cell_spec(self):
        spec = tiny_cell()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.content_hash == spec.content_hash
        assert clone.target_table.entries == TINY_TABLE.entries

    def test_sweep_spec(self, small_sweep):
        clone = pickle.loads(pickle.dumps(small_sweep))
        assert clone == small_sweep
        assert len(clone) == 4


class TestFromWorkload:
    def test_search_provenance_round_trips(self, tiny_search_workload):
        spec = WorkloadSpec.from_workload(tiny_search_workload)
        assert spec == tiny_workload_spec()

    def test_finance_round_trips(self, finance_workload):
        spec = WorkloadSpec.from_workload(finance_workload)
        assert spec == WorkloadSpec.finance(finance_workload.config)

    def test_hand_assembled_workload_has_no_spec(self, tiny_search_workload):
        bare = dataclasses.replace(tiny_search_workload, provenance=None)
        assert WorkloadSpec.from_workload(bare) is None


class TestResolveWorkerCount:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "7")
        assert resolve_worker_count(3) == 3

    def test_env_var_used_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "5")
        assert resolve_worker_count(None) == 5

    def test_default_is_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        assert resolve_worker_count(None) >= 1

    def test_nonpositive_counts_rejected(self, monkeypatch):
        with pytest.raises(ConfigError):
            resolve_worker_count(0)
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "-1")
        with pytest.raises(ConfigError):
            resolve_worker_count(None)


class TestRunSweep:
    def test_results_arrive_in_spec_order(self, small_sweep, serial_results):
        assert len(serial_results) == len(small_sweep)
        for spec, result in zip(small_sweep, serial_results):
            assert result.spec_hash == spec.content_hash
            assert result.policy_name == spec.policy_name
            assert result.qps == spec.qps
            assert len(result.responses_ms) == spec.n_requests

    def test_parallel_is_bit_identical_to_serial(
        self, serial_results, parallel_run
    ):
        parallel, _ = parallel_run
        for s, p in zip(serial_results, parallel):
            assert s.summary == p.summary
            np.testing.assert_array_equal(s.responses_ms, p.responses_ms)
            np.testing.assert_array_equal(s.queueing_ms, p.queueing_ms)
            np.testing.assert_array_equal(s.executions_ms, p.executions_ms)
            np.testing.assert_array_equal(s.demands_ms, p.demands_ms)
            np.testing.assert_array_equal(s.predictions_ms, p.predictions_ms)
            np.testing.assert_array_equal(s.initial_degrees, p.initial_degrees)
            np.testing.assert_array_equal(s.max_degrees, p.max_degrees)
            np.testing.assert_array_equal(s.corrected, p.corrected)

    def test_progress_fires_once_per_cell(self, small_sweep, parallel_run):
        _, events = parallel_run
        assert [e.completed for e in events] == [1, 2, 3, 4]
        assert all(e.total == len(small_sweep) for e in events)
        assert all(not e.from_cache for e in events)
        assert all(e.wall_time_s > 0.0 for e in events)
        assert {e.spec for e in events} == set(small_sweep.cells)

    def test_result_adapts_to_experiment_result(self, serial_results):
        adapted = serial_results[0].to_experiment_result()
        assert adapted.summary == serial_results[0].summary
        assert len(adapted.recorder) == len(serial_results[0].responses_ms)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, small_sweep, serial_results):
        cache = ResultCache(tmp_path)
        spec = small_sweep.cells[0]
        assert cache.get(spec) is None
        assert cache.misses == 1
        cache.put(spec, serial_results[0])
        hit = cache.get(spec)
        assert hit is not None
        assert cache.hits == 1
        np.testing.assert_array_equal(
            hit.responses_ms, serial_results[0].responses_ms
        )

    def test_spec_change_invalidates(self, tmp_path, small_sweep,
                                     serial_results):
        cache = ResultCache(tmp_path)
        spec = small_sweep.cells[0]
        cache.put(spec, serial_results[0])
        changed = dataclasses.replace(spec, seed=spec.seed + 1)
        assert cache.get(changed) is None

    def test_unwritable_directory_does_not_lose_results(
        self, small_sweep, serial_results
    ):
        # A failed write must not discard the simulation work: put
        # degrades to a no-op (like get degrades to a miss).
        cache = ResultCache("/proc/nonexistent-cache-dir")
        assert cache.put(small_sweep.cells[0], serial_results[0]) is None
        assert cache.get(small_sweep.cells[0]) is None

    def test_corrupt_entry_degrades_to_miss(self, tmp_path, small_sweep):
        cache = ResultCache(tmp_path)
        path = cache.path_for(small_sweep.cells[0])
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(small_sweep.cells[0]) is None

    def test_cached_rerun_does_zero_simulation_work(
        self, tmp_path, small_sweep, serial_results, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        for spec, result in zip(small_sweep, serial_results):
            cache.put(spec, result)

        def boom(spec):
            raise AssertionError("simulation ran despite a full cache")

        monkeypatch.setattr(pool_mod, "_execute_cell", boom)
        events = []
        cached = run_sweep(
            small_sweep, workers=2, cache=cache, progress=events.append
        )
        assert all(e.from_cache for e in events)
        assert all(e.wall_time_s == 0.0 for e in events)
        assert cache.hits == len(small_sweep)
        for s, c in zip(serial_results, cached):
            assert s.summary == c.summary
            np.testing.assert_array_equal(s.responses_ms, c.responses_ms)

    def test_run_cell_consults_cache(self, tmp_path, small_sweep,
                                     serial_results, monkeypatch):
        cache = ResultCache(tmp_path)
        calls = []

        def fake_execute(spec):
            calls.append(spec)
            return pickle.loads(pickle.dumps(serial_results[0]))

        monkeypatch.setattr(pool_mod, "_execute_cell", fake_execute)
        spec = small_sweep.cells[0]
        run_cell(spec, cache=cache)
        run_cell(spec, cache=cache)
        assert len(calls) == 1

    def test_clear_removes_entries(self, tmp_path, small_sweep,
                                   serial_results):
        cache = ResultCache(tmp_path)
        cache.put(small_sweep.cells[0], serial_results[0])
        cache.put(small_sweep.cells[1], serial_results[1])
        assert cache.clear() == 2
        assert cache.get(small_sweep.cells[0]) is None

    def test_default_cache_is_opt_in(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_CACHE", raising=False)
        assert default_cache() is None
        monkeypatch.setenv("REPRO_EXEC_CACHE", "1")
        monkeypatch.setenv("REPRO_EXEC_CACHE_DIR", str(tmp_path))
        cache = default_cache()
        assert cache is not None
        assert cache.directory == tmp_path
