"""Tests for policy extensions: load-aware RampUp and TPC ablation knobs."""

import pytest

from repro.config import ServerConfig
from repro.errors import ConfigError
from repro.policies import AdaptiveRampUpPolicy, TPCPolicy, make_policy
from repro.policies.registry import POLICY_INFO
from repro.sim.engine import Engine
from repro.sim.load import LoadMetric
from repro.sim.server import Server

from conftest import LONG_PROFILE, make_request
from test_server import FixedDegreePolicy


def make_server(policy, **kwargs):
    cfg = ServerConfig(**kwargs) if kwargs else ServerConfig()
    return Server(cfg, policy, engine=Engine())


class TestAdaptiveRampUp:
    def test_idle_system_uses_fastest_interval(self):
        policy = AdaptiveRampUpPolicy()
        server = make_server(policy)
        req = make_request(0, 100.0)
        assert policy.initial_degree(req, server) == 1
        assert policy.first_check_delay(req, server) == 5.0

    def test_busy_system_uses_slowest_interval(self):
        policy = AdaptiveRampUpPolicy()
        server = make_server(FixedDegreePolicy(2))
        for i in range(10):
            server.submit(make_request(i, 500.0))
        # 20 active threads -> beyond the 10-thread breakpoint.
        req = make_request(99, 100.0)
        policy.initial_degree(req, server)
        assert policy.first_check_delay(req, server) == 20.0

    def test_ramp_increments_until_max(self):
        policy = AdaptiveRampUpPolicy()
        server = make_server(policy)
        req = make_request(0, 300.0, profile=LONG_PROFILE)
        server.submit(req)
        server.run_to_completion(1)
        assert req.max_degree_seen == server.config.max_parallelism
        assert req.response_ms < 300.0

    def test_interval_state_cleaned_up(self):
        policy = AdaptiveRampUpPolicy()
        server = make_server(policy)
        req = make_request(0, 300.0, profile=LONG_PROFILE)
        server.submit(req)
        server.run_to_completion(1)
        assert req.rid not in policy._intervals

    def test_rejects_bad_tables(self):
        with pytest.raises(ConfigError):
            AdaptiveRampUpPolicy(interval_table=[])
        with pytest.raises(ConfigError):
            AdaptiveRampUpPolicy(interval_table=[(5.0, 5.0), (3.0, 10.0)])
        with pytest.raises(ConfigError):
            AdaptiveRampUpPolicy(interval_table=[(5.0, 0.0)])

    def test_registered_in_registry(self, speedup_book):
        info = POLICY_INFO["RampUp-Adaptive"]
        assert info.uses_system_load and not info.uses_prediction
        policy = make_policy("RampUp-Adaptive", speedup_book, [1, 0, 0])
        assert isinstance(policy, AdaptiveRampUpPolicy)


class TestTPCCorrectionDelayFactor:
    def test_delayed_trigger_fires_later(self, speedup_book, target_table):
        base = TPCPolicy(target_table, speedup_book)
        late = TPCPolicy(
            target_table, speedup_book, correction_delay_factor=2.0
        )
        server = make_server(base)
        req = make_request(0, 200.0, predicted_ms=10.0)
        req.target_ms = 40.0
        req.degree = 1
        assert base.first_check_delay(req, server) == 40.0
        assert late.first_check_delay(req, server) == 80.0

    def test_late_correction_hurts_mispredicted_latency(
        self, speedup_book, target_table
    ):
        def run(factor):
            policy = TPCPolicy(
                target_table, speedup_book, correction_delay_factor=factor
            )
            server = make_server(policy)
            req = make_request(
                0, 200.0, predicted_ms=10.0, profile=LONG_PROFILE
            )
            server.submit(req)
            server.run_to_completion(1)
            return req.response_ms

        assert run(1.0) < run(2.0) < run(4.0)

    def test_rejects_nonpositive_factor(self, speedup_book, target_table):
        with pytest.raises(ValueError):
            TPCPolicy(target_table, speedup_book, correction_delay_factor=0)


class TestTPCResourceSignal:
    def test_idle_hardware_signal(self, speedup_book, target_table):
        policy = TPCPolicy(
            target_table, speedup_book, resource_signal="idle_hardware"
        )
        server = make_server(policy)
        # Occupy 20 of 24 hardware threads via another policy's requests.
        filler = make_server(FixedDegreePolicy(5))
        assert policy._spare_resources(server) == 24  # idle machine
        for i in range(4):
            server.submit(make_request(i, 500.0, predicted_ms=500.0))
        # Requests admitted at degree <= max; hardware slots shrink.
        assert (
            policy._spare_resources(server)
            == server.config.hardware_threads - server.total_active_threads
        )

    def test_idle_workers_is_default(self, speedup_book, target_table):
        policy = TPCPolicy(target_table, speedup_book)
        server = make_server(policy)
        assert policy._spare_resources(server) == server.idle_workers

    def test_rejects_unknown_signal(self, speedup_book, target_table):
        with pytest.raises(ValueError):
            TPCPolicy(target_table, speedup_book, resource_signal="magic")
