"""TP: target-driven predictive parallelism *without* correction.

TP is the ablation of Section 4.3 (Figure 6): identical to TPC at
dispatch time — it reads the instantaneous load, looks up the target
completion time E, and picks the smallest degree whose predicted
execution time meets E — but never adjusts a request at runtime.  TP
matches TPC at the 99th percentile (prediction is accurate enough
there) and loses 40-65 ms at the 99.9th, which isolates the value of
dynamic correction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.predictive import select_degree
from ..core.speedup import SpeedupBook
from ..core.target_table import TargetTable
from ..sim.load import LoadMetric, load_value
from .base import ParallelismPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = ["TPPolicy"]


class TPPolicy(ParallelismPolicy):
    """Predictive parallelism against a load-dependent target."""

    name = "TP"

    def __init__(
        self,
        target_table: TargetTable,
        speedup_book: SpeedupBook,
        load_metric: LoadMetric = LoadMetric.LONG_THREADS,
    ) -> None:
        self.target_table = target_table
        self.speedup_book = speedup_book
        self.load_metric = load_metric

    def current_target(self, server: "Server") -> float:
        """Target E for the server's instantaneous load."""
        return self.target_table.target_for(
            load_value(server, self.load_metric)
        )

    def initial_degree(self, request: "Request", server: "Server") -> int:
        target_ms = self.current_target(server)
        request.target_ms = target_ms
        profile = self.speedup_book.profile_for(request.predicted_ms)
        degree = select_degree(
            request.predicted_ms,
            target_ms,
            profile,
            server.config.max_parallelism,
        )
        observer = self.observer
        if observer is not None:
            observer.on_dispatch_decision(
                request,
                server,
                degree,
                target_ms=target_ms,
                load=load_value(server, self.load_metric),
            )
        return degree
