#!/usr/bin/env python3
"""One straggling ISN, with and without request hedging.

A partition-aggregate cluster waits for its slowest shard, so a single
slow node — a compacting, throttled or overloaded ISN — sets the
user-visible tail for *every* query.  This example injects one 4x
straggler into a TPC cluster and compares three aggregator policies:

1. wait-for-all (the paper's Figure 8 aggregator): the straggler's
   tail becomes the cluster's tail;
2. hedged re-issue: shards still missing after a timeout are re-sent
   to the least-loaded healthy ISN, first answer wins, the loser is
   cancelled (tied requests);
3. wait-for-k: answer from k = n-1 shards, tolerate one late node.

Run:  python examples/cluster_resilience.py  [--isns 8] [--queries 2000]
"""

import argparse

from repro import default_target_table, default_workload
from repro.cluster import run_cluster_experiment
from repro.config import ClusterConfig
from repro.experiments.report import format_table
from repro.resilience import FaultSpec, HedgePolicy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--isns", type=int, default=8,
                        help="number of index-serving nodes")
    parser.add_argument("--queries", type=int, default=2_000,
                        help="logical queries to replay")
    parser.add_argument("--qps", type=float, default=300.0,
                        help="offered load in queries per second")
    parser.add_argument("--slowdown", type=float, default=4.0,
                        help="demand multiplier of the straggling ISN")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="hedge timeout in milliseconds")
    args = parser.parse_args()

    workload = default_workload()
    table = default_target_table()
    ccfg = ClusterConfig(num_isns=args.isns)
    horizon_ms = 1000.0 * args.queries / args.qps
    fault = FaultSpec.straggler(
        0, args.slowdown, t0_ms=0.0, t1_ms=horizon_ms * 4.0
    )

    variants = [
        ("wait-for-all", HedgePolicy.wait_for_all()),
        (f"hedge @{args.timeout:g}ms", HedgePolicy.hedged(args.timeout)),
        (f"wait-for-{args.isns - 1}", HedgePolicy.partial(args.isns - 1)),
    ]

    print(
        f"Replaying {args.queries} queries at {args.qps:g} QPS across "
        f"{args.isns} ISNs under TPC;\nISN 0 runs {args.slowdown:g}x slow "
        "for the whole run."
    )
    rows = []
    p999 = {}
    for label, hedge in variants:
        result = run_cluster_experiment(
            workload,
            "TPC",
            args.qps,
            args.queries,
            seed=3,
            cluster_config=ccfg,
            target_table=table,
            fault_spec=fault,
            hedge_policy=hedge,
        )
        p999[label] = result.aggregator_percentile(99.9)
        stats = result.resilience
        rows.append(
            [
                label,
                round(result.aggregator_percentile(50), 1),
                round(result.aggregator_percentile(99), 1),
                round(result.aggregator_percentile(99.9), 1),
                f"{100 * stats.hedge_rate:.1f}%",
                f"{100 * stats.wasted_work_fraction:.1f}%",
            ]
        )

    print()
    print(
        format_table(
            ["aggregation", "P50", "P99", "P99.9", "hedged", "wasted"],
            rows,
            title="Aggregator latency under one straggler (ms)",
        )
    )

    base_label = variants[0][0]
    hedge_label = variants[1][0]
    delta = 1.0 - p999[hedge_label] / p999[base_label]
    print(
        f"\nHedging cuts the aggregator P99.9 from "
        f"{p999[base_label]:.1f} ms to {p999[hedge_label]:.1f} ms "
        f"({100 * delta:.1f}% better): the timeout re-issues exactly the "
        "shards stuck behind the\nstraggler, and tied-request "
        "cancellation keeps the extra work bounded."
    )


if __name__ == "__main__":
    main()
