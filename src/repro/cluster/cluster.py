"""Cluster experiment: N ISNs behind one aggregator on a shared clock.

Every logical query fans out to all ISNs.  Each ISN receives its own
replica of the request with lognormally jittered demand (document
sharding spreads work evenly but not identically) and schedules it
independently under its own policy instance; the aggregator answers
when the slowest replica completes.  All ISNs share one target table,
matching the paper's observation that evenly-balanced ISNs converge to
the same table (Section 3.3).

Because ISNs never interact — each server's events touch only its own
state, and the aggregator is a pure max over replica completion times —
the experiment decomposes exactly into one independent simulation per
ISN.  With ``workers > 1`` the per-ISN runs fan out across the
:mod:`repro.exec` process pool (all shared randomness — trace,
arrivals, the demand-jitter matrix — is drawn once up front), and the
reassembled result is bit-identical to the shared-engine path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..config import ClusterConfig, PolicyConfig, ServerConfig
from ..core.speedup import SpeedupBook
from ..core.target_table import TargetTable
from ..errors import ConfigError, SimulationError
from ..exec.pool import resolve_worker_count, run_tasks
from ..policies.registry import make_policy
from ..rng import RngFactory
from ..search.workload import SearchWorkload
from ..sim.client import poisson_arrival_times
from ..sim.engine import Engine
from ..sim.load import LoadMetric
from ..sim.metrics import LatencyRecorder, percentile
from ..sim.request import Request
from ..sim.server import Server
from .aggregator import Aggregator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.faults import FaultSpec
    from ..resilience.hedging import HedgePolicy

__all__ = ["ClusterExperimentResult", "run_cluster_experiment"]


@dataclass
class ClusterExperimentResult:
    """Outcome of one cluster run."""

    policy_name: str
    qps: float
    num_isns: int
    #: Aggregator response time per logical query (ms).
    aggregator_latencies_ms: np.ndarray
    #: Response times of every individual ISN replica (ms).
    isn_latencies_ms: np.ndarray
    #: Per-ISN recorders (index = ISN id).
    isn_recorders: list[LatencyRecorder]

    def aggregator_percentile(self, p: float) -> float:
        """Percentile of the aggregator (user-visible) latency."""
        return percentile(self.aggregator_latencies_ms, p)

    def isn_percentile(self, p: float) -> float:
        """Percentile of individual ISN response times."""
        return percentile(self.isn_latencies_ms, p)

    def isn_percentile_of_latency(self, latency_ms: float) -> float:
        """Which ISN percentile a given latency value sits at.

        Used for Figure 8(b): the paper observes that the P99
        aggregator latency corresponds to roughly the P99.8 latency of
        an individual ISN.
        """
        arr = np.sort(self.isn_latencies_ms)
        rank = np.searchsorted(arr, latency_ms, side="right")
        return 100.0 * rank / len(arr)

    def fraction_slower_than(self, latency_ms: float) -> float:
        """Fraction of aggregator responses slower than ``latency_ms``."""
        return float((self.aggregator_latencies_ms > latency_ms).mean())


@dataclass(frozen=True)
class _IsnTask:
    """Everything one worker needs to simulate a single ISN."""

    isn: int
    server_config: ServerConfig
    policy_name: str
    policy_config: PolicyConfig | None
    load_metric: LoadMetric
    target_entries: tuple[tuple[float, float], ...] | None
    speedup_book: SpeedupBook
    group_weights: tuple[float, ...]
    #: Per-request (rid, demand_ms, predicted_ms, profile) replicas.
    replicas: tuple
    arrivals_ms: tuple[float, ...]


def _run_single_isn(task: _IsnTask) -> tuple[np.ndarray, LatencyRecorder]:
    """Simulate one ISN in isolation; returns (finish times, recorder).

    ``finish[i]`` is the absolute completion time of the replica of the
    i-th submitted query.  Per-ISN behaviour is identical to the
    shared-engine run: a server's events depend only on its own state,
    and relative ordering of one server's equal-time events is the
    insertion order in both layouts.
    """
    engine = Engine()
    table = (
        TargetTable(task.target_entries)
        if task.target_entries is not None
        else None
    )
    policy = make_policy(
        task.policy_name,
        speedup_book=task.speedup_book,
        group_weights=task.group_weights,
        target_table=table,
        policy_config=task.policy_config,
        load_metric=task.load_metric,
    )
    n = len(task.replicas)
    finishes = np.full(n, np.nan, dtype=np.float64)
    order = {rid: i for i, (rid, _, _, _) in enumerate(task.replicas)}

    def on_complete(request: Request) -> None:
        finishes[order[request.rid]] = engine.now

    server = Server(
        task.server_config,
        policy,
        engine=engine,
        completion_callback=on_complete,
    )
    for (rid, demand, predicted, profile), at in zip(
        task.replicas, task.arrivals_ms
    ):
        replica = Request(
            rid=rid,
            demand_ms=demand,
            predicted_ms=predicted,
            speedup=profile,
        )

        def submit(req: Request = replica) -> None:
            server.submit(req)

        engine.schedule_at(float(at), submit)
    server.run_to_completion(n)
    if np.isnan(finishes).any():
        raise SimulationError(f"ISN {task.isn} dropped replicas")
    return finishes, server.recorder


def run_cluster_experiment(
    workload: SearchWorkload,
    policy_name: str,
    qps: float,
    n_queries: int,
    seed: int,
    cluster_config: ClusterConfig | None = None,
    server_config: ServerConfig | None = None,
    policy_config: PolicyConfig | None = None,
    target_table: TargetTable | None = None,
    load_metric: LoadMetric = LoadMetric.LONG_THREADS,
    prediction: str = "model",
    workers: int | None = 1,
    progress: Callable[[int, int], None] | None = None,
    fault_spec: "FaultSpec | None" = None,
    hedge_policy: "HedgePolicy | None" = None,
) -> ClusterExperimentResult:
    """Run one policy on a full partition-aggregate cluster.

    Every ISN gets an independent policy instance and server but they
    share the simulation clock, the target table and the predictor, as
    in the paper's deployment.  ``workers`` (None = the
    ``REPRO_BENCH_WORKERS`` / cpu-count default) selects how many
    processes the per-ISN simulations fan out over; results are
    bit-identical at any worker count.  ``progress`` receives
    ``(isns_completed, num_isns)`` in parallel mode.

    ``fault_spec`` injects per-ISN fault windows and ``hedge_policy``
    enables partial-wait aggregation and hedged re-issue (see
    :mod:`repro.resilience`).  Either option couples the ISNs (hedges
    move work between nodes, faults are wall-clock windows on the
    shared clock), so the run then uses the shared-engine path
    regardless of ``workers`` and returns a
    :class:`~repro.resilience.cluster.ResilientClusterResult`.  With
    both left at their no-op defaults this function behaves exactly as
    before.
    """
    if n_queries < 1:
        raise ConfigError("n_queries must be >= 1")
    ccfg = cluster_config if cluster_config is not None else ClusterConfig()
    scfg = server_config if server_config is not None else ServerConfig()
    rngs = RngFactory(seed)

    # All shared randomness is drawn up front, in the exact stream
    # order of the original single-engine implementation, so both
    # execution layouts see identical traces, arrivals and jitters.
    logical = workload.make_requests(
        n_queries, rngs.get("trace"), prediction=prediction
    )
    arrivals = poisson_arrival_times(n_queries, qps, rngs.get("arrivals"))
    jitter_rng = rngs.get("shard-jitter")
    sigma = ccfg.demand_jitter_sigma
    jitters = [
        (
            jitter_rng.lognormal(-sigma**2 / 2.0, sigma, size=ccfg.num_isns)
            if sigma > 0
            else np.ones(ccfg.num_isns)
        )
        for _ in range(n_queries)
    ]

    resilient = (fault_spec is not None and not fault_spec.is_noop) or (
        hedge_policy is not None and not hedge_policy.is_noop(ccfg.num_isns)
    )
    if resilient:
        from ..resilience.cluster import run_shared_resilient

        return run_shared_resilient(
            workload, policy_name, qps,
            ccfg, scfg, policy_config, target_table, load_metric,
            logical, arrivals, jitters,
            fault_spec=fault_spec, hedge_policy=hedge_policy,
        )

    effective_workers = resolve_worker_count(workers)
    if effective_workers > 1 and ccfg.num_isns > 1:
        return _run_decomposed(
            workload, policy_name, qps, n_queries,
            ccfg, scfg, policy_config, target_table, load_metric,
            logical, arrivals, jitters, effective_workers, progress,
        )

    engine = Engine()
    aggregator = Aggregator(ccfg.num_isns, ccfg.network_overhead_ms)

    servers: list[Server] = []
    for isn in range(ccfg.num_isns):
        policy = make_policy(
            policy_name,
            speedup_book=workload.speedup_book,
            group_weights=workload.group_weights,
            target_table=target_table,
            policy_config=policy_config,
            load_metric=load_metric,
        )

        def on_isn_complete(request: Request, isn: int = isn) -> None:
            aggregator.on_isn_complete(request.rid, engine.now, isn)

        servers.append(
            Server(
                scfg,
                policy,
                engine=engine,
                completion_callback=on_isn_complete,
            )
        )

    for request, at, jitter in zip(logical, arrivals, jitters):
        replicas = [
            Request(
                rid=request.rid,
                demand_ms=float(request.demand_ms * jitter[i]),
                predicted_ms=request.predicted_ms,
                speedup=request.speedup,
            )
            for i in range(ccfg.num_isns)
        ]

        def fan_out(
            at_ms: float = float(at),
            reps: list[Request] = replicas,
            qid: int = request.rid,
        ) -> None:
            aggregator.begin(qid, at_ms)
            for server, replica in zip(servers, reps):
                server.submit(replica)

        engine.schedule_at(float(at), fan_out)

    while aggregator.completed < n_queries:
        if not engine.step():
            raise SimulationError(
                f"engine drained with {aggregator.completed}/{n_queries} "
                "queries aggregated"
            )

    return ClusterExperimentResult(
        policy_name=policy_name,
        qps=qps,
        num_isns=ccfg.num_isns,
        aggregator_latencies_ms=np.asarray(aggregator.latencies_ms),
        isn_latencies_ms=np.asarray(aggregator.isn_latencies_ms),
        isn_recorders=[s.recorder for s in servers],
    )


def _run_decomposed(
    workload: SearchWorkload,
    policy_name: str,
    qps: float,
    n_queries: int,
    ccfg: ClusterConfig,
    scfg: ServerConfig,
    policy_config: PolicyConfig | None,
    target_table: TargetTable | None,
    load_metric: LoadMetric,
    logical,
    arrivals: np.ndarray,
    jitters: list[np.ndarray],
    workers: int,
    progress: Callable[[int, int], None] | None,
) -> ClusterExperimentResult:
    """Fan the per-ISN simulations across the exec process pool."""
    entries = target_table.entries if target_table is not None else None
    arrival_tuple = tuple(float(a) for a in arrivals)
    tasks = [
        _IsnTask(
            isn=isn,
            server_config=scfg,
            policy_name=policy_name,
            policy_config=policy_config,
            load_metric=load_metric,
            target_entries=entries,
            speedup_book=workload.speedup_book,
            group_weights=tuple(workload.group_weights),
            replicas=tuple(
                (
                    request.rid,
                    float(request.demand_ms * jitters[q][isn]),
                    request.predicted_ms,
                    request.speedup,
                )
                for q, request in enumerate(logical)
            ),
            arrivals_ms=arrival_tuple,
        )
        for isn in range(ccfg.num_isns)
    ]
    runs = run_tasks(_run_single_isn, tasks, workers=workers, progress=progress)
    finishes = np.stack([f for f, _ in runs])  # (num_isns, n_queries)
    recorders = [rec for _, rec in runs]

    arrivals_arr = np.asarray(arrivals, dtype=np.float64)
    responses = finishes - arrivals_arr[np.newaxis, :]  # per-replica latency
    slowest = finishes.max(axis=0)
    # The shared-engine aggregator emits each query when its last
    # replica completes: ascending slowest-finish order (qid breaks the
    # measure-zero ties).
    emit_order = np.lexsort((np.arange(n_queries), slowest))
    aggregator_latencies = (
        slowest[emit_order]
        - arrivals_arr[emit_order]
        + ccfg.network_overhead_ms
    )
    # Within one query, replica responses arrive in completion-time
    # order (ISN index breaks exact ties, matching fan-out order).
    isn_latencies: list[float] = []
    for q in emit_order:
        col_order = np.lexsort((np.arange(ccfg.num_isns), finishes[:, q]))
        isn_latencies.extend(responses[col_order, q].tolist())

    return ClusterExperimentResult(
        policy_name=policy_name,
        qps=qps,
        num_isns=ccfg.num_isns,
        aggregator_latencies_ms=aggregator_latencies,
        isn_latencies_ms=np.asarray(isn_latencies, dtype=np.float64),
        isn_recorders=recorders,
    )
