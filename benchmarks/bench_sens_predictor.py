"""S1 — Section 4.6 sensitivity: prediction accuracy.

The paper mimics a perfect predictor with pre-collected sequential
times and finds: TPC(real) within 4.0 % of TPC(perfect) at P99 and
7.8 % at P99.9 on average across loads, while TP (no correction) is
44.1 % worse than the perfect bound — dynamic correction absorbs
prediction error.
"""

import numpy as np

from conftest import BENCH_SEED, bench_queries, emit, qps_grid
from repro.experiments import run_search_experiment
from repro.experiments.report import format_table


def _series(workload, search_table, policy, prediction):
    return [
        run_search_experiment(
            workload, policy, qps, bench_queries(), BENCH_SEED,
            target_table=search_table, prediction=prediction,
        )
        for qps in qps_grid()
    ]


def test_predictor_accuracy_sensitivity(benchmark, workload, search_table):
    def run():
        return {
            "TPC(real)": _series(workload, search_table, "TPC", "model"),
            "TPC(perfect)": _series(workload, search_table, "TPC", "perfect"),
            "TP(real)": _series(workload, search_table, "TP", "model"),
            "TP(perfect)": _series(workload, search_table, "TP", "perfect"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    grid = qps_grid()
    rows = [
        [int(qps)]
        + [round(results[k][i].p99_ms, 1) for k in results]
        + [round(results[k][i].p999_ms, 1) for k in results]
        for i, qps in enumerate(grid)
    ]
    emit(
        "sens_predictor",
        format_table(
            ["QPS"]
            + [f"{k} p99" for k in results]
            + [f"{k} p99.9" for k in results],
            rows,
            title="Section 4.6 - real vs perfect predictor",
        ),
    )

    def mean_gap(a, b, attr):
        return float(
            np.mean(
                [
                    getattr(x, attr) / getattr(y, attr) - 1.0
                    for x, y in zip(results[a], results[b])
                ]
            )
        )

    # TPC with the real predictor stays close to the perfect bound
    # (paper: 4.0 % at P99, 7.8 % at P99.9).
    assert mean_gap("TPC(real)", "TPC(perfect)", "p99_ms") < 0.15
    assert mean_gap("TPC(real)", "TPC(perfect)", "p999_ms") < 0.25
    # Without correction the same prediction errors cost far more at
    # the very high tail (paper: 44.1 %).
    tp_gap = mean_gap("TP(real)", "TP(perfect)", "p999_ms")
    tpc_gap = mean_gap("TPC(real)", "TPC(perfect)", "p999_ms")
    assert tp_gap > tpc_gap * 1.5


def test_oracle_noise_sweep(benchmark, workload, search_table):
    """Extension: degrade the predictor smoothly and watch TPC's P99.9
    stay flat (correction compensates) while TP's grows."""
    sigmas = (0.0, 0.25, 0.5, 1.0)
    qps = 450.0

    def run():
        table = {}
        for policy in ("TP", "TPC"):
            table[policy] = [
                run_search_experiment(
                    workload, policy, qps, bench_queries(), BENCH_SEED,
                    target_table=search_table,
                    prediction="oracle", oracle_sigma=s,
                ).p999_ms
                for s in sigmas
            ]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [s, round(table["TP"][i], 1), round(table["TPC"][i], 1)]
        for i, s in enumerate(sigmas)
    ]
    emit(
        "sens_oracle_noise",
        format_table(
            ["oracle sigma", "TP p99.9", "TPC p99.9"],
            rows,
            title="Extension - P99.9 vs predictor noise @450 QPS",
        ),
    )
    # TP deteriorates with noise much faster than TPC.
    tp_growth = table["TP"][-1] / table["TP"][0]
    tpc_growth = table["TPC"][-1] / table["TPC"][0]
    assert tp_growth > tpc_growth
