"""Asian option contract model.

An (arithmetic-average, fixed-strike) Asian option's payoff depends on
the mean of the underlying price over the averaging dates, which makes
it path-dependent: pricing requires simulating whole price paths, the
CPU-bound workload of the paper's finance server.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["AsianOption"]


@dataclass(frozen=True)
class AsianOption:
    """An arithmetic-average Asian option under Black-Scholes dynamics.

    Parameters
    ----------
    spot:
        Current underlying price ``S_0``.
    strike:
        Strike ``K`` applied to the path average.
    maturity_years:
        Time to expiry ``T`` in years.
    rate:
        Continuously compounded risk-free rate ``r``.
    volatility:
        Lognormal volatility ``sigma``.
    is_call:
        Call pays ``max(avg - K, 0)``; put pays ``max(K - avg, 0)``.
    """

    spot: float = 100.0
    strike: float = 100.0
    maturity_years: float = 1.0
    rate: float = 0.03
    volatility: float = 0.25
    is_call: bool = True

    def __post_init__(self) -> None:
        if self.spot <= 0 or self.strike <= 0:
            raise ConfigError("spot and strike must be positive")
        if self.maturity_years <= 0:
            raise ConfigError("maturity must be positive")
        if self.volatility <= 0:
            raise ConfigError("volatility must be positive")

    def payoff(self, path_average: float) -> float:
        """Payoff for a realised path average."""
        if self.is_call:
            return max(path_average - self.strike, 0.0)
        return max(self.strike - path_average, 0.0)
