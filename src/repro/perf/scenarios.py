"""Benchmark scenarios for the simulation hot path.

Scenarios at increasing integration depth:

``engine_only``
    A schedule/cancel storm on a bare :class:`~repro.sim.engine.Engine`
    — every callback re-arms itself and cancels a decoy event, the
    exact access pattern the server's completion rescheduling produces.
    Exercises push, pop, lazy skip and automatic heap compaction with
    no server logic in the way.
``server_under_load``
    The synthetic hot-path benchmark the fidelity gate budgets: hand
    made requests with lognormal demands over a three-group speedup
    book, scheduled by AP at 500 qps.  No workload build, no predictor
    — the wall clock is pure simulator.  This module is the single
    home of that benchmark; :mod:`repro.gate.checks` imports it from
    here so the gate's ``perf_budget`` check and ``python -m
    repro.perf`` time the identical code.
``tracing_overhead``
    The hot-path benchmark run bare and then with the
    :mod:`repro.obs` observability layer attached — budgets the
    enabled-path penalty of tracing (the disabled path is covered by
    the goldens staying bit-identical).
``end_to_end_cell``
    One :func:`repro.exec.run_cell` over a tiny search workload —
    corpus build, predictor training and simulation included — the
    shape every figure benchmark pays per cell.

Event counts are bit-deterministic given ``(size, seed)``; only wall
time varies across machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..config import PredictorConfig, SearchWorkloadConfig, ServerConfig
from ..errors import ConfigError

__all__ = [
    "HOTPATH_SEED",
    "PRE_PR_EVENTS_PER_S",
    "HotpathResult",
    "run_hotpath_benchmark",
    "ScenarioSpec",
    "SCENARIOS",
    "run_engine_only",
    "run_server_under_load",
    "run_tracing_overhead",
    "run_end_to_end_cell",
    "scenario",
]

#: Seed of the hot-path benchmark; equals the gate seed so the gate's
#: ``perf_budget`` check and the perf harness measure the same trace.
HOTPATH_SEED = 93

#: ``server_under_load`` events/sec per mode on the development machine
#: *before* the hot-path optimisation pass (per-request fluid accrual,
#: Python-``__lt__`` heap, no compaction): n=6 000 (fast) and n=20 000
#: (full).  Reports divide by this to show speedup-vs-pre-PR; it is
#: machine-specific and informational, never a pass/fail bound.
PRE_PR_EVENTS_PER_S = {"fast": 40_770.0, "full": 42_539.0}


@dataclass(frozen=True)
class HotpathResult:
    """Outcome of the synthetic simulator hot-path benchmark."""

    n_requests: int
    events_run: int
    wall_time_s: float

    @property
    def events_per_s(self) -> float:
        """Engine callbacks executed per wall-clock second."""
        return self.events_run / self.wall_time_s

    @property
    def requests_per_s(self) -> float:
        """Simulated requests completed per wall-clock second."""
        return self.n_requests / self.wall_time_s


def run_hotpath_benchmark(
    n_requests: int, seed: int = HOTPATH_SEED, observation=None
) -> HotpathResult:
    """Time the discrete-event hot path on a synthetic workload.

    Builds the cheapest faithful exercise of the simulator — hand-made
    requests with lognormal demands over a three-group speedup book,
    scheduled by AP (load feedback and mid-flight degree decisions, no
    predictor) — so callers can budget events/sec without paying the
    multi-second search-workload build.  The event count is
    bit-deterministic given ``(n_requests, seed)``; only the wall
    clock varies across machines.

    ``observation`` (a :class:`repro.obs.Observation`) attaches the
    observability layer before the run — the knob behind the
    ``tracing_overhead`` scenario, which budgets exactly this delta.
    """
    from ..core.speedup import SpeedupBook, SpeedupProfile
    from ..policies.registry import make_policy
    from ..rng import RngFactory
    from ..sim.client import OpenLoopClient
    from ..sim.engine import Engine
    from ..sim.request import Request
    from ..sim.server import Server

    book = SpeedupBook(
        [
            SpeedupProfile([1.0, 1.05, 1.08, 1.11, 1.14, 1.16]),
            SpeedupProfile([1.0, 1.4, 1.6, 1.8, 1.95, 2.05]),
            SpeedupProfile([1.0, 1.8, 2.5, 3.2, 3.7, 4.1]),
        ]
    )
    rngs = RngFactory(seed)
    demands = rngs.get("trace").lognormal(1.3, 1.3, size=n_requests)
    requests = [
        Request(i, float(d), float(d), book.profiles[book.group_of(float(d))])
        for i, d in enumerate(demands)
    ]
    policy = make_policy(
        "AP", speedup_book=book, group_weights=[0.6, 0.3, 0.1]
    )
    engine = Engine()
    server = Server(ServerConfig(), policy, engine=engine)
    if observation is not None:
        observation.attach(server)
    client = OpenLoopClient([server])
    started = time.perf_counter()
    client.schedule_trace(engine, requests, 500.0, rngs.get("arrivals"))
    server.run_to_completion(n_requests)
    return HotpathResult(
        n_requests=n_requests,
        events_run=engine.events_run,
        wall_time_s=max(time.perf_counter() - started, 1e-9),
    )


def run_engine_only(size: int, seed: int = HOTPATH_SEED) -> dict[str, float]:
    """Schedule/cancel storm on a bare engine.

    Each fired event re-arms itself and cancels a previously scheduled
    decoy — mirroring the server's cancel-and-rearm completion pattern
    that motivates lazy cancellation plus compaction.  Roughly half of
    all scheduled events are cancelled, so the run also counts heap
    compactions.
    """
    from collections import deque

    from ..rng import RngFactory
    from ..sim.engine import Engine

    rng = RngFactory(seed).get("engine_only")
    tick_delays = rng.uniform(0.1, 1.0, size=size + 16)
    # Decoys sit far in the future, so cancelling them leaves garbage
    # in the heap (the server's completion re-arm does the same) and
    # automatic compaction actually triggers.
    decoy_delays = rng.uniform(100.0, 200.0, size=size + 16)
    engine = Engine()
    decoys: deque = deque()
    fired = 0

    def tick() -> None:
        nonlocal fired
        fired += 1
        if fired >= size:
            while decoys:
                decoys.popleft().cancel()
            return
        decoys.append(engine.schedule(float(decoy_delays[fired]), _noop))
        if len(decoys) > 8:
            decoys.popleft().cancel()
        engine.schedule(float(tick_delays[fired]), tick)

    def _noop() -> None:
        pass

    engine.schedule(0.0, tick)
    started = time.perf_counter()
    engine.run()
    wall = max(time.perf_counter() - started, 1e-9)
    return {
        "size": float(size),
        "events_run": float(engine.events_run),
        "wall_time_s": wall,
        "events_per_s": engine.events_run / wall,
        "compactions": float(engine.compactions),
    }


def run_server_under_load(
    size: int, seed: int = HOTPATH_SEED
) -> dict[str, float]:
    """The gate's hot-path benchmark as a perf scenario."""
    result = run_hotpath_benchmark(size, seed)
    return {
        "size": float(size),
        "events_run": float(result.events_run),
        "wall_time_s": result.wall_time_s,
        "events_per_s": result.events_per_s,
        "requests_per_s": result.requests_per_s,
    }


def run_tracing_overhead(
    size: int, seed: int = HOTPATH_SEED
) -> dict[str, float]:
    """Observability-layer cost on the hot path: observed vs bare.

    Runs the ``server_under_load`` benchmark twice — once bare, once
    with a full :class:`repro.obs.Observation` attached (tracer,
    metrics, span substrate) — and reports the events/sec penalty of
    the enabled path.  The disabled path is covered elsewhere (goldens
    and gate event counts are bit-identical without an observation);
    this scenario budgets the *enabled* path, which the obs layer keeps
    under a 15 % penalty.  Both runs execute the identical event trace
    (``events_run`` matches by construction).
    """
    from ..obs.observe import Observation

    # Interleave bare/observed repeats and keep the best of each, so
    # the penalty compares the two variants' noise floors instead of
    # whatever the machine was doing during one particular run.
    run_hotpath_benchmark(min(size, 2_000), seed)  # warm-up
    baseline: HotpathResult | None = None
    observed: HotpathResult | None = None
    observation = Observation()
    for _ in range(3):
        bare = run_hotpath_benchmark(size, seed)
        if baseline is None or bare.events_per_s > baseline.events_per_s:
            baseline = bare
        observation = Observation()
        traced = run_hotpath_benchmark(size, seed, observation=observation)
        if observed is None or traced.events_per_s > observed.events_per_s:
            observed = traced
    assert baseline is not None and observed is not None
    if observed.events_run != baseline.events_run:
        raise ConfigError(
            "tracing changed the event trace: "
            f"{observed.events_run} != {baseline.events_run} events"
        )
    penalty = 1.0 - observed.events_per_s / baseline.events_per_s
    return {
        "size": float(size),
        "events_run": float(observed.events_run),
        "wall_time_s": observed.wall_time_s,
        "events_per_s": observed.events_per_s,
        "baseline_events_per_s": baseline.events_per_s,
        "penalty_fraction": penalty,
        "events_traced": float(len(observation.tracer.events)),
    }


#: Tiny search corpus for the end-to-end scenario: big enough to train
#: the predictor and shape a demand distribution, small enough to build
#: in about a second.
_TINY_SEARCH = SearchWorkloadConfig(
    num_documents=3_000,
    vocabulary_size=1_500,
    mean_doc_length=120,
    hard_term_pool=150,
    easy_skip_top=15,
)


def run_end_to_end_cell(
    size: int, seed: int = HOTPATH_SEED
) -> dict[str, float]:
    """One uncached ``run_cell`` over a tiny search workload.

    Measures the full per-cell pipeline — corpus generation, predictor
    training, trace sampling, simulation — the cost every figure
    benchmark pays per grid point.  The workload disk cache is disabled
    in the spec and the in-process memo is evicted up front, so every
    repeat pays the cold build.
    """
    from ..core.target_table import TargetTable
    from ..exec.pool import forget_workload, run_cell
    from ..exec.spec import CellSpec, WorkloadSpec

    wspec = WorkloadSpec.search(
        seed=11,
        config=_TINY_SEARCH,
        predictor_config=PredictorConfig(num_trees=60, max_depth=4),
        pool_size=1_200,
        use_workload_cache=False,
    )
    spec = CellSpec.for_experiment(
        wspec,
        "TPC",
        300.0,
        n_requests=size,
        seed=seed,
        target_table=TargetTable([(0, 40), (8, 65), (16, 90)]),
    )
    forget_workload(wspec)
    started = time.perf_counter()
    result = run_cell(spec)
    wall = max(time.perf_counter() - started, 1e-9)
    return {
        "size": float(size),
        "wall_time_s": wall,
        "requests_per_s": size / wall,
        "sim_wall_time_s": result.wall_time_s,
        "p99_ms": result.summary.p99_ms,
    }


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered benchmark scenario."""

    name: str
    description: str
    runner: Callable[[int, int], Mapping[str, float]]
    fast_size: int
    full_size: int
    #: Key of the throughput metric the baseline gate compares.
    throughput_key: str = "events_per_s"
    #: Extra metadata attached to reports.
    notes: dict[str, float] = field(default_factory=dict)

    def size_for(self, fast: bool) -> int:
        return self.fast_size if fast else self.full_size


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="engine_only",
            description="schedule/cancel storm on a bare Engine",
            runner=run_engine_only,
            fast_size=30_000,
            full_size=120_000,
        ),
        ScenarioSpec(
            name="server_under_load",
            description="gate hot-path benchmark (AP policy, 500 qps)",
            runner=run_server_under_load,
            fast_size=6_000,
            full_size=20_000,
        ),
        ScenarioSpec(
            name="tracing_overhead",
            description="observed vs bare hot path (obs-layer penalty)",
            runner=run_tracing_overhead,
            fast_size=6_000,
            full_size=20_000,
        ),
        ScenarioSpec(
            name="end_to_end_cell",
            description="one cold run_cell over a tiny search workload",
            runner=run_end_to_end_cell,
            fast_size=300,
            full_size=1_000,
            throughput_key="requests_per_s",
        ),
    )
}


def scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown perf scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
