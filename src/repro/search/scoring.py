"""BM25 scoring and top-k selection.

The ISN's second phase scores matched documents and returns the top-k
most relevant (Section 2.1).  Scoring cost scales with the number of
matched documents — work that is *not* knowable from pre-execution
features, which is exactly where realistic prediction error comes from.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = ["bm25_scores", "top_k_documents"]

_K1 = 1.2
_B = 0.75


def bm25_scores(
    tfs: np.ndarray,
    idfs: np.ndarray,
    doc_lengths: np.ndarray,
    avg_doc_length: float,
) -> np.ndarray:
    """Per-(doc, term) BM25 contributions.

    All arrays are aligned element-wise: entry ``i`` is term frequency,
    term IDF and owning-document length of one posting hit.
    """
    if not (len(tfs) == len(idfs) == len(doc_lengths)):
        raise WorkloadError("tfs, idfs and doc_lengths must align")
    if avg_doc_length <= 0:
        raise WorkloadError("avg_doc_length must be > 0")
    tf = tfs.astype(np.float64)
    norm = _K1 * (1.0 - _B + _B * doc_lengths / avg_doc_length)
    return idfs * tf * (_K1 + 1.0) / (tf + norm)


def top_k_documents(
    doc_ids: np.ndarray, scores: np.ndarray, k: int
) -> list[tuple[int, float]]:
    """Top-``k`` (doc id, score) pairs, best first.

    ``doc_ids`` may repeat (one entry per matching term); scores of the
    same document are summed before selection.
    """
    if k < 1:
        raise WorkloadError(f"k must be >= 1, got {k}")
    if len(doc_ids) != len(scores):
        raise WorkloadError("doc_ids and scores must align")
    if len(doc_ids) == 0:
        return []
    unique_docs, inverse = np.unique(doc_ids, return_inverse=True)
    totals = np.zeros(len(unique_docs), dtype=np.float64)
    np.add.at(totals, inverse, scores)
    k = min(k, len(unique_docs))
    top = np.argpartition(totals, -k)[-k:]
    top = top[np.argsort(totals[top])[::-1]]
    return [(int(unique_docs[i]), float(totals[i])) for i in top]
