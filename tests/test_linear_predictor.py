"""Tests for the ridge-regression predictor baseline."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction import RidgeRegressionPredictor
from repro.prediction.predictor import ExecutionTimePredictor
from repro.config import PredictorConfig


def exponential_regression(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 3, size=(n, 3))
    y = np.exp(0.8 * X[:, 0] - 0.3 * X[:, 1]) * rng.lognormal(0, 0.15, n)
    return X, y


class TestRidgePredictor:
    def test_recovers_loglinear_relationship(self):
        X, y = exponential_regression()
        model = RidgeRegressionPredictor(l2=0.1).fit(X, y)
        l1 = model.l1_error(X, y)
        baseline = float(np.abs(y - y.mean()).mean())
        assert l1 < 0.4 * baseline

    def test_predictions_positive(self):
        X, y = exponential_regression(n=300)
        model = RidgeRegressionPredictor().fit(X, y)
        assert (model.predict(X) > 0).all()

    def test_single_row_prediction(self):
        X, y = exponential_regression(n=100)
        model = RidgeRegressionPredictor().fit(X, y)
        single = model.predict(X[0])
        assert single.shape == (1,)

    def test_constant_feature_handled(self):
        rng = np.random.default_rng(1)
        X = np.hstack([rng.uniform(size=(200, 1)), np.ones((200, 1))])
        y = np.exp(X[:, 0])
        model = RidgeRegressionPredictor().fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_regularisation_shrinks_weights(self):
        X, y = exponential_regression(n=500)
        loose = RidgeRegressionPredictor(l2=0.0).fit(X, y)
        tight = RidgeRegressionPredictor(l2=1000.0).fit(X, y)
        assert np.linalg.norm(tight._weights[:-1]) < np.linalg.norm(
            loose._weights[:-1]
        )

    def test_guards(self):
        with pytest.raises(PredictionError):
            RidgeRegressionPredictor(l2=-1)
        with pytest.raises(PredictionError):
            RidgeRegressionPredictor().predict(np.ones((2, 2)))
        with pytest.raises(PredictionError):
            RidgeRegressionPredictor().fit(np.ones((5, 2)), np.zeros(5))


class TestBoostedBeatsLinear:
    def test_trees_beat_ridge_on_search_features(self, tiny_search_workload):
        """The [21]-over-[26] claim: the boosted-tree model out-predicts
        the linear baseline on the same search features."""
        # Rebuild features/demands from the workload pool pieces: use
        # the predictions as proxy — instead, fit both on a synthetic
        # nonlinear response mimicking the cost structure.
        rng = np.random.default_rng(8)
        n = 4000
        X = rng.uniform(0, 4, size=(n, 4))
        # Multiplicative interaction linear-in-logs models miss:
        y = (np.exp(X[:, 0]) + 20 * (X[:, 1] > 2.5) * X[:, 2]) * rng.lognormal(
            0, 0.1, n
        )
        train, test = np.arange(0, n, 2), np.arange(1, n, 2)
        ridge = RidgeRegressionPredictor(l2=1.0).fit(X[train], y[train])
        trees = ExecutionTimePredictor(
            PredictorConfig(num_trees=120, max_depth=4)
        ).fit(X[train], y[train], rng=rng)
        ridge_l1 = ridge.l1_error(X[test], y[test])
        trees_l1 = float(
            np.abs(trees.predict(X[test]) - y[test]).mean()
        )
        assert trees_l1 < ridge_l1 * 0.9
