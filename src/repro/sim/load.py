"""System-load metrics (Section 4.6, Figure 9).

TPC retrieves its target completion time from the target table using an
instantaneous system-load value.  The paper compares three estimators:

* ``LONG_THREADS`` (LongT, the default) — number of active threads
  running long queries.  Long-query threads persist in the system, so
  they best describe the resources a newly scheduled query will face.
* ``ALL_THREADS`` (AllT) — all active threads, short-query threads
  included; slightly noisier because short queries are transient.
* ``CPU_UTIL`` (CpuUtil) — a sampled, EMA-smoothed performance counter;
  lags the true load and degrades with it, as Figure 9 shows.

All metrics are expressed in *equivalent active threads* so a single
target table serves every estimator: CpuUtil is scaled by the hardware
thread count.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .server import Server

__all__ = ["LoadMetric", "load_value"]


class LoadMetric(enum.Enum):
    """Instantaneous-system-load estimator used by TPC."""

    LONG_THREADS = "long_threads"
    ALL_THREADS = "all_threads"
    CPU_UTIL = "cpu_util"
    QUEUE_LENGTH = "queue_length"


def load_value(server: "Server", metric: LoadMetric) -> float:
    """Read the given load metric, in equivalent-active-thread units."""
    if metric is LoadMetric.LONG_THREADS:
        return float(server.active_long_threads)
    if metric is LoadMetric.ALL_THREADS:
        return float(server.total_active_threads)
    if metric is LoadMetric.CPU_UTIL:
        return server.cpu_utilization * server.config.hardware_threads
    if metric is LoadMetric.QUEUE_LENGTH:
        return float(server.queue_length)
    raise ValueError(f"unknown load metric: {metric!r}")
