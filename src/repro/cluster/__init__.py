"""Partition-aggregate cluster of ISNs (Figure 1, Section 4.5).

A user query fans out to every ISN; the aggregator waits for all of
them and merges, so the slowest ISN determines the query's response
time.  This is why per-ISN *very high* percentiles (P99.8+) govern the
cluster's P99 — the order-statistics effect Figure 8(b) illustrates.
"""

from .aggregator import Aggregator, AggregatedQuery
from .cluster import ClusterExperimentResult, run_cluster_experiment

__all__ = [
    "Aggregator",
    "AggregatedQuery",
    "ClusterExperimentResult",
    "run_cluster_experiment",
]
