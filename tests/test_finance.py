"""Tests for the finance-server substrate (Section 5)."""

import numpy as np
import pytest

from repro.config import FinanceConfig
from repro.errors import ConfigError, WorkloadError
from repro.finance import AsianOption, MonteCarloPricer, build_finance_workload
from repro.finance.workload import AVERAGING_STEPS, finance_profile


class TestAsianOption:
    def test_call_payoff(self):
        option = AsianOption(strike=100.0)
        assert option.payoff(110.0) == 10.0
        assert option.payoff(90.0) == 0.0

    def test_put_payoff(self):
        option = AsianOption(strike=100.0, is_call=False)
        assert option.payoff(90.0) == 10.0
        assert option.payoff(110.0) == 0.0

    def test_rejects_bad_contract(self):
        with pytest.raises(ConfigError):
            AsianOption(spot=-1.0)
        with pytest.raises(ConfigError):
            AsianOption(volatility=0.0)


class TestMonteCarloPricer:
    def test_price_is_positive_for_atm_call(self):
        result = MonteCarloPricer().price(
            AsianOption(), 4000, 50, np.random.default_rng(0)
        )
        assert result.price > 0
        assert result.std_error > 0
        assert result.path_steps == 4000 * 50

    def test_deep_itm_call_near_intrinsic(self):
        option = AsianOption(spot=200.0, strike=100.0, volatility=0.1)
        result = MonteCarloPricer().price(
            option, 8000, 50, np.random.default_rng(1)
        )
        # Average of GBM with small vol ~ slightly above spot; payoff
        # ~ spot - strike ~ 100, discounted.
        assert 80 < result.price < 130

    def test_antithetic_reduces_variance(self):
        option = AsianOption()
        plain = MonteCarloPricer(antithetic=False).price(
            option, 8000, 30, np.random.default_rng(2)
        )
        anti = MonteCarloPricer(antithetic=True).price(
            option, 8000, 30, np.random.default_rng(2)
        )
        assert anti.std_error < plain.std_error

    def test_price_converges_across_seeds(self):
        option = AsianOption()
        pricer = MonteCarloPricer()
        a = pricer.price(option, 30_000, 30, np.random.default_rng(3))
        b = pricer.price(option, 30_000, 30, np.random.default_rng(4))
        assert a.price == pytest.approx(b.price, abs=4 * (a.std_error + b.std_error))

    def test_put_call_relationship(self):
        rng = np.random.default_rng(5)
        call = MonteCarloPricer().price(AsianOption(), 10_000, 30, rng)
        put = MonteCarloPricer().price(
            AsianOption(is_call=False), 10_000, 30, np.random.default_rng(5)
        )
        # ATM with positive drift: call worth more than put.
        assert call.price > put.price

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            MonteCarloPricer().price(AsianOption(), 1, 10, np.random.default_rng(0))

    def test_calibration_returns_positive_cost(self):
        cost = MonteCarloPricer().calibrate_ms_per_path_step(
            n_paths=2000, n_steps=20, repeats=1
        )
        assert cost > 0


class TestFinanceProfile:
    def test_long_requests_parallelize_better(self):
        cfg = FinanceConfig()
        short = finance_profile(cfg.short_demand_ms, cfg)
        long = finance_profile(cfg.short_demand_ms * 9, cfg)
        assert long.speedup(4) > short.speedup(4)

    def test_profile_monotone(self):
        cfg = FinanceConfig()
        profile = finance_profile(5.0, cfg)
        values = profile.speedups
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_max_degree_matches_config(self):
        cfg = FinanceConfig(max_parallelism=3)
        assert finance_profile(10.0, cfg).max_degree == 3


class TestFinanceWorkload:
    def test_long_fraction_near_ten_percent(self, finance_workload, rng):
        reqs = finance_workload.make_requests(20_000, rng)
        long = [r for r in reqs if r.demand_ms > 50.0]
        assert len(long) / len(reqs) == pytest.approx(0.10, abs=0.01)

    def test_long_demand_nine_times_short(self, finance_workload, rng):
        reqs = finance_workload.make_requests(5000, rng)
        longs = [r.demand_ms for r in reqs if r.demand_ms > 50]
        shorts = [r.demand_ms for r in reqs if r.demand_ms <= 50]
        assert np.mean(longs) / np.mean(shorts) == pytest.approx(9.0, rel=0.05)

    def test_predictions_near_perfect(self, finance_workload, rng):
        reqs = finance_workload.make_requests(2000, rng)
        rel_err = [
            abs(r.predicted_ms - r.demand_ms) / r.demand_ms for r in reqs
        ]
        assert np.mean(rel_err) < 0.05

    def test_perfect_mode(self, finance_workload, rng):
        reqs = finance_workload.make_requests(100, rng, prediction="perfect")
        for r in reqs:
            assert r.predicted_ms == pytest.approx(r.demand_ms)

    def test_structural_time_linear_in_paths(self, finance_workload):
        t1 = finance_workload.structural_time_ms(1000)
        t9 = finance_workload.structural_time_ms(9000)
        assert t9 == pytest.approx(9 * t1)

    def test_paths_consistent_with_demands(self, finance_workload):
        cfg = finance_workload.config
        assert finance_workload.structural_time_ms(
            finance_workload.short_paths
        ) == pytest.approx(cfg.short_demand_ms, rel=0.01)

    def test_group_weights(self, finance_workload):
        assert sum(finance_workload.group_weights) == pytest.approx(1.0)
        assert finance_workload.group_weights[0] == pytest.approx(0.9)
        assert finance_workload.group_weights[2] == pytest.approx(0.1)

    def test_price_request_exercises_real_pricer(self, finance_workload, rng):
        result = finance_workload.price_request(is_long=False, rng=rng)
        assert result.price > 0
        assert result.n_steps == AVERAGING_STEPS

    def test_rejects_bad_mode(self, finance_workload, rng):
        with pytest.raises(WorkloadError):
            finance_workload.make_requests(5, rng, prediction="psychic")
