"""The target table: load -> target completion time (Section 3.3).

The table is a list of ``(load, target)`` pairs with loads ascending.
For an instantaneous load ``d``, TPC uses target ``e_i`` where
``d_{i-1} < d <= d_i``; loads beyond the last breakpoint use the last
target (the paper's trailing infinity entry).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

from ..errors import TargetTableError

__all__ = ["TargetTable"]


class TargetTable:
    """Immutable mapping from system load to target completion time E."""

    __slots__ = ("_loads", "_targets")

    def __init__(self, entries: Iterable[tuple[float, float]]) -> None:
        pairs = [(float(d), float(e)) for d, e in entries]
        if not pairs:
            raise TargetTableError("target table must have at least one entry")
        loads = [d for d, _ in pairs]
        if any(b <= a for a, b in zip(loads, loads[1:])):
            raise TargetTableError(f"loads must be strictly ascending: {loads}")
        if any(e <= 0 for _, e in pairs):
            raise TargetTableError("targets must be positive")
        self._loads = tuple(loads)
        self._targets = tuple(e for _, e in pairs)

    @classmethod
    def constant(cls, target_ms: float) -> "TargetTable":
        """A degenerate table with one load-independent target."""
        return cls([(0.0, target_ms)])

    @property
    def entries(self) -> tuple[tuple[float, float], ...]:
        """The ``((d_0, e_0), ..., (d_{m-1}, e_{m-1}))`` pairs."""
        return tuple(zip(self._loads, self._targets))

    @property
    def loads(self) -> tuple[float, ...]:
        """Ascending load breakpoints ``d_i``."""
        return self._loads

    @property
    def targets(self) -> tuple[float, ...]:
        """Targets ``e_i`` aligned with :attr:`loads`."""
        return self._targets

    def __len__(self) -> int:
        return len(self._loads)

    def target_for(self, load: float) -> float:
        """Target E for instantaneous load ``d``: smallest ``d_i >= d``.

        Loads beyond the final breakpoint map to the final target,
        mirroring the paper's trailing ``(infinity, e)`` entry.
        """
        index = bisect_left(self._loads, load)
        if index >= len(self._loads):
            index = len(self._loads) - 1
        return self._targets[index]

    def with_target(self, index: int, target_ms: float) -> "TargetTable":
        """Copy of the table with entry ``index``'s target replaced.

        This is the ``tmpTable_i`` construction step of Algorithm 1.
        """
        if not 0 <= index < len(self._loads):
            raise TargetTableError(
                f"index {index} outside [0, {len(self._loads)})"
            )
        targets = list(self._targets)
        targets[index] = float(target_ms)
        return TargetTable(zip(self._loads, targets))

    def bumped(self, index: int, step_ms: float) -> "TargetTable":
        """Copy with ``e_index`` increased by ``step_ms`` (Algorithm 1 line 7)."""
        return self.with_target(index, self._targets[index] + step_ms)

    @classmethod
    def uniform(
        cls, loads: Sequence[float], target_ms: float
    ) -> "TargetTable":
        """A table with the same initial target at every load breakpoint
        (Algorithm 1's initialisation: the latency of an unloaded,
        fully parallelized system — the smallest achievable target)."""
        return cls((d, target_ms) for d in loads)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TargetTable)
            and self._loads == other._loads
            and self._targets == other._targets
        )

    def __hash__(self) -> int:
        return hash((self._loads, self._targets))

    def __repr__(self) -> str:
        body = ", ".join(
            f"({d:g} -> {e:g}ms)" for d, e in zip(self._loads, self._targets)
        )
        return f"TargetTable([{body}])"
