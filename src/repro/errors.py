"""Exception hierarchy for the TPC reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulingError(SimulationError):
    """A parallelism policy produced an illegal scheduling decision."""


class WorkloadError(ReproError):
    """A workload generator or trace is malformed."""


class CalibrationError(WorkloadError):
    """Workload calibration failed to reach the requested statistics."""


class PredictionError(ReproError):
    """The execution-time predictor was misused or failed to train."""


class TargetTableError(ReproError):
    """A target table is malformed or a table search failed."""
