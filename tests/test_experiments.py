"""Tests for the experiment runner, scenarios and report formatting."""

import numpy as np
import pytest

from repro.config import PolicyConfig, ServerConfig, TargetTableConfig
from repro.core.target_table import TargetTable
from repro.errors import ConfigError
from repro.experiments import (
    DEFAULT_QPS_GRID,
    FIGURE_POLICIES,
    format_table,
    run_load_sweep,
    run_search_experiment,
    series_to_rows,
)
from repro.experiments.runner import build_search_target_table, make_measure_tail
from repro.experiments.report import format_cdf_rows
from repro.sim.load import LoadMetric


class TestRunSearchExperiment:
    def test_basic_run_completes_all(self, tiny_search_workload, target_table):
        result = run_search_experiment(
            tiny_search_workload, "TPC", qps=200.0, n_requests=1500,
            seed=2, target_table=target_table,
        )
        assert result.summary.count == 1500
        assert result.p99_ms > result.summary.p50_ms
        assert result.p999_ms >= result.p99_ms

    def test_same_seed_is_reproducible(self, tiny_search_workload, target_table):
        kwargs = dict(qps=300.0, n_requests=800, seed=5, target_table=target_table)
        a = run_search_experiment(tiny_search_workload, "TPC", **kwargs)
        b = run_search_experiment(tiny_search_workload, "TPC", **kwargs)
        np.testing.assert_array_equal(
            a.recorder.responses, b.recorder.responses
        )

    def test_policies_see_identical_traces(self, tiny_search_workload, target_table):
        """Paired comparison: same (seed, qps) -> same demands."""
        a = run_search_experiment(
            tiny_search_workload, "Sequential", 200.0, 500, 7,
            target_table=target_table,
        )
        b = run_search_experiment(
            tiny_search_workload, "TPC", 200.0, 500, 7,
            target_table=target_table,
        )
        assert sorted(a.recorder.demands_ms) == sorted(b.recorder.demands_ms)

    def test_perfect_prediction_mode(self, tiny_search_workload, target_table):
        result = run_search_experiment(
            tiny_search_workload, "Pred", 200.0, 500, 3,
            target_table=target_table, prediction="perfect",
        )
        np.testing.assert_allclose(
            result.recorder.predictions_ms, result.recorder.demands_ms
        )

    def test_server_config_override(self, tiny_search_workload, target_table):
        result = run_search_experiment(
            tiny_search_workload, "TPC", 100.0, 300, 3,
            target_table=target_table,
            server_config=ServerConfig(max_parallelism=2),
        )
        assert max(result.recorder.max_degrees) <= 2

    def test_degree_distribution_reachable(self, tiny_search_workload, target_table):
        result = run_search_experiment(
            tiny_search_workload, "TPC", 200.0, 800, 3,
            target_table=target_table,
        )
        dist = result.degree_distribution()
        assert set(dist) == {"short", "long"}
        assert len(dist["short"]) == 6

    def test_rejects_zero_requests(self, tiny_search_workload, target_table):
        with pytest.raises(ConfigError):
            run_search_experiment(
                tiny_search_workload, "TPC", 100.0, 0, 1,
                target_table=target_table,
            )


class TestRunLoadSweep:
    def test_sweep_shape(self, tiny_search_workload, target_table):
        results = run_load_sweep(
            tiny_search_workload, ["Sequential", "TPC"], [100.0, 300.0],
            n_requests=500, seed=1, target_table=target_table,
        )
        assert set(results) == {"Sequential", "TPC"}
        assert [r.qps for r in results["TPC"]] == [100.0, 300.0]


class TestMeasureTailAndSearch:
    def test_measure_tail_returns_weighted_sum(self, tiny_search_workload):
        cfg = TargetTableConfig(
            measure_loads_qps=(100.0, 200.0),
            measure_weights=(1.0, 1.0),
            queries_per_measurement=400,
        )
        measure = make_measure_tail(tiny_search_workload, cfg, seed=9)
        flat = TargetTable.constant(40.0)
        total = measure(flat)
        assert total > 0

    def test_measure_tail_deterministic(self, tiny_search_workload):
        cfg = TargetTableConfig(
            measure_loads_qps=(150.0,),
            measure_weights=(1.0,),
            queries_per_measurement=400,
        )
        measure = make_measure_tail(tiny_search_workload, cfg, seed=9)
        table = TargetTable.constant(40.0)
        assert measure(table) == measure(table)

    def test_build_search_target_table_runs(self, tiny_search_workload):
        cfg = TargetTableConfig(
            load_grid=(0.0, 8.0),
            initial_target_ms=40.0,
            step_ms=20.0,
            measure_loads_qps=(150.0,),
            measure_weights=(1.0,),
            queries_per_measurement=300,
            max_iterations=3,
        )
        result = build_search_target_table(tiny_search_workload, cfg, seed=4)
        assert len(result.table) == 2
        assert result.measurements >= 3


class TestScenarios:
    def test_qps_grid_covers_paper_range(self):
        assert min(DEFAULT_QPS_GRID) <= 50
        assert max(DEFAULT_QPS_GRID) >= 900

    def test_figure_policies_registered(self):
        from repro.policies import policy_names

        names = set(policy_names())
        for figure, policies in FIGURE_POLICIES.items():
            for p in policies:
                assert p in names, f"{figure} references unknown policy {p}"


class TestReport:
    def test_format_table_aligns_columns(self):
        text = format_table(
            ["qps", "p99"], [[150, 52.123], [900, 188.4]], title="Fig 4"
        )
        lines = text.splitlines()
        assert lines[0] == "Fig 4"
        assert "52.1" in text
        assert "900" in text

    def test_series_to_rows_pivots(self):
        headers, rows = series_to_rows(
            "qps", [100, 200], {"TPC": [1.0, 2.0], "AP": [3.0, 4.0]}
        )
        assert headers == ["qps", "TPC", "AP"]
        assert rows == [[100, 1.0, 3.0], [200, 2.0, 4.0]]

    def test_format_cdf_rows(self):
        text = format_cdf_rows(
            {"TPC": [1.0] * 99 + [100.0], "AP": [2.0] * 100}, [50, 99]
        )
        assert "P50" in text and "P99" in text
        assert "TPC" in text and "AP" in text
