"""Seeded random-number streams for reproducible experiments.

Every stochastic component in the library (corpus generation, query
sampling, arrival processes, predictor noise, cluster jitter) draws from
its own named stream derived from a single experiment seed.  This keeps
results bit-reproducible while letting components evolve independently:
adding a draw to one component does not perturb any other component.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngFactory", "stream"]


class RngFactory:
    """Factory of independent, named ``numpy`` random generators.

    Each named stream is seeded with ``SeedSequence(root_seed).spawn``
    keyed by a stable hash of the stream name, so the same
    ``(root_seed, name)`` pair always yields the same stream.

    Example
    -------
    >>> rngs = RngFactory(42)
    >>> a = rngs.get("arrivals")
    >>> b = rngs.get("arrivals")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, root_seed: int) -> None:
        if root_seed < 0:
            raise ValueError(f"root_seed must be non-negative, got {root_seed}")
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The experiment-level seed this factory derives streams from."""
        return self._root_seed

    def get(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the named stream.

        Calling ``get`` twice with the same name returns two generators
        in identical states (useful for replays).
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        key = _stable_hash(name)
        seq = np.random.SeedSequence([self._root_seed, key])
        return np.random.Generator(np.random.PCG64(seq))

    def spawn(self, name: str) -> "RngFactory":
        """Derive a child factory, e.g. one per ISN in a cluster.

        The child seed is drawn from ``SeedSequence([root_seed,
        hash(name)])`` rather than the XOR of the two values: XOR is
        collision-prone (``root ^ h(a) == h(b) ^ root`` whenever two
        name hashes collide in any bit pattern symmetric around the
        root), whereas a seed sequence mixes both words through
        splitmix-style avalanching.
        """
        if not name:
            raise ValueError("spawn name must be non-empty")
        seq = np.random.SeedSequence([self._root_seed, _stable_hash(name)])
        child_seed = int(seq.generate_state(1, np.uint64)[0]) & 0x7FFFFFFFFFFFFFFF
        return RngFactory(child_seed)


def stream(root_seed: int, name: str) -> np.random.Generator:
    """Shorthand for ``RngFactory(root_seed).get(name)``."""
    return RngFactory(root_seed).get(name)


def _stable_hash(name: str) -> int:
    """A deterministic 63-bit FNV-1a hash of ``name``.

    ``hash()`` is salted per-process, so we roll our own.
    """
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFFFFFFFFFF
