"""Named resilience scenarios: faults × mitigations × policies.

Each :class:`Scenario` fixes a fault campaign and a small set of
mitigation *variants* (hedge policies), then compares the paper's
policies (Sequential / Pred / TPC) under every variant at one load
point.  Scenario cells are declared as
:class:`~repro.exec.spec.CellSpec` values and routed through
:func:`repro.exec.pool.run_sweep`, so they parallelise across the
process pool and cache like every other experiment in the repo.

The shipped scenarios:

* ``healthy-baseline`` — no faults; measures what the mitigations cost
  when nothing is wrong (hedge rate and wasted work should be ~0).
* ``one-straggler`` — one ISN runs 4x slow for the whole run; the
  wait-for-all aggregator inherits the straggler's tail, hedging
  routes around it.
* ``rolling-blackout`` — ISNs crash one after another (a rolling
  restart); strict wait-for-all cannot terminate, so the variants are
  partial-wait and partial-wait + hedging.
* ``overloaded-hedging`` — a slowdown under high load with an
  aggressive hedge timeout; prices the extra work hedging injects
  exactly when the cluster has the least capacity to spare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..config import ClusterConfig
from ..core.target_table import TargetTable
from ..errors import ConfigError
from ..exec.cache import ResultCache
from ..exec.pool import ProgressEvent, run_sweep
from ..exec.spec import CellResult, CellSpec, WorkloadSpec
from ..experiments.scenarios import (
    DEFAULT_SEED,
    default_target_table,
    default_workload_spec,
)
from .faults import FaultSpec
from .hedging import HedgePolicy

__all__ = [
    "Scenario",
    "ScenarioResult",
    "SCENARIOS",
    "get_scenario",
    "list_scenarios",
    "run_scenario",
]

#: The policy set every scenario compares (cf. Figure 8).
SCENARIO_POLICIES: tuple[str, ...] = ("Sequential", "Pred", "TPC")


@dataclass(frozen=True)
class Scenario:
    """One named fault campaign with its mitigation variants.

    ``make_fault`` receives ``(num_isns, horizon_ms)`` — the horizon is
    the expected request span ``n_queries / qps`` — and returns the
    fault campaign; ``make_variants`` receives ``num_isns`` and returns
    ``(label, HedgePolicy)`` pairs, baseline first.  Both are callables
    because blackout times and wait-for-k quorums scale with the run.
    """

    name: str
    description: str
    qps: float
    n_queries: int
    num_isns: int
    #: Sizing under ``--fast`` (CI smoke).
    fast_n_queries: int
    fast_num_isns: int
    make_fault: Callable[[int, float], FaultSpec]
    make_variants: Callable[[int], tuple[tuple[str, HedgePolicy], ...]]
    policies: tuple[str, ...] = SCENARIO_POLICIES
    seed: int = DEFAULT_SEED

    def sizing(self, fast: bool) -> tuple[int, int]:
        """(n_queries, num_isns) for the requested mode."""
        if fast:
            return self.fast_n_queries, self.fast_num_isns
        return self.n_queries, self.num_isns


@dataclass
class ScenarioResult:
    """Outcome of one scenario run: one row per (policy, variant)."""

    name: str
    fast: bool
    qps: float
    n_queries: int
    num_isns: int
    fault_spec: FaultSpec
    variant_labels: tuple[str, ...]
    #: Flat metric rows keyed by ``(policy, variant)``.
    rows: dict[tuple[str, str], dict[str, float]] = field(default_factory=dict)
    cells_executed: int = 0
    cells_from_cache: int = 0
    wall_time_s: float = 0.0

    def row(self, policy: str, variant: str) -> dict[str, float]:
        """The metric row of one (policy, variant) cell."""
        try:
            return self.rows[(policy, variant)]
        except KeyError:
            raise KeyError(
                f"no row for policy={policy!r} variant={variant!r}"
            ) from None

    def p999(self, policy: str, variant: str) -> float:
        """Aggregator P99.9 latency of one (policy, variant) cell."""
        return self.row(policy, variant)["p999_ms"]

    def improvement(self, policy: str, variant: str) -> float:
        """Fractional P99.9 gain of ``variant`` over the baseline variant.

        Positive means the mitigation lowered the tail; the baseline is
        the scenario's first variant (its no-mitigation reference).
        """
        base = self.p999(policy, self.variant_labels[0])
        return 1.0 - self.p999(policy, variant) / base


def _cell_row(result: CellResult) -> dict[str, float]:
    row: dict[str, float] = {
        "mean_ms": result.summary.mean_ms,
        "p50_ms": result.summary.p50_ms,
        "p95_ms": result.summary.p95_ms,
        "p99_ms": result.summary.p99_ms,
        "p999_ms": result.summary.p999_ms,
        "max_ms": result.summary.max_ms,
    }
    row.update(result.extras)
    return row


def run_scenario(
    scenario: Scenario | str,
    fast: bool = False,
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
    workload_spec: WorkloadSpec | None = None,
    target_table: TargetTable | None = None,
) -> ScenarioResult:
    """Execute one named scenario over the exec layer.

    ``workload_spec`` / ``target_table`` default to the canonical
    calibrated workload and the shipped offline-built table; tests pass
    a tiny workload to keep the runtime small.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if workload_spec is None:
        workload_spec = default_workload_spec()
    if target_table is None:
        target_table = default_target_table()
    n_queries, num_isns = scenario.sizing(fast)
    horizon_ms = 1000.0 * n_queries / scenario.qps
    fault = scenario.make_fault(num_isns, horizon_ms)
    fault.validate_for(num_isns)
    variants = scenario.make_variants(num_isns)
    if not variants:
        raise ConfigError(f"scenario {scenario.name!r} declares no variants")

    cells: list[CellSpec] = []
    keys: list[tuple[str, str]] = []
    for policy in scenario.policies:
        for label, hedge in variants:
            cells.append(
                CellSpec.for_experiment(
                    workload_spec,
                    policy,
                    scenario.qps,
                    n_queries,
                    scenario.seed,
                    target_table=target_table,
                    cluster_config=ClusterConfig(num_isns=num_isns),
                    # Normalise no-ops to None so an unfaulted cell
                    # hashes (and runs) identically to a plain one.
                    fault_spec=None if fault.is_noop else fault,
                    hedge_policy=None if hedge.is_noop(num_isns) else hedge,
                )
            )
            keys.append((policy, label))

    executed = 0
    cached = 0
    wall = 0.0

    def track(event: ProgressEvent) -> None:
        nonlocal executed, cached, wall
        if event.from_cache:
            cached += 1
        else:
            executed += 1
            wall += event.wall_time_s
        if progress is not None:
            progress(event)

    results = run_sweep(cells, workers=workers, cache=cache, progress=track)

    out = ScenarioResult(
        name=scenario.name,
        fast=fast,
        qps=scenario.qps,
        n_queries=n_queries,
        num_isns=num_isns,
        fault_spec=fault,
        variant_labels=tuple(label for label, _ in variants),
        cells_executed=executed,
        cells_from_cache=cached,
        wall_time_s=wall,
    )
    for key, result in zip(keys, results):
        out.rows[key] = _cell_row(result)
    return out


# ---------------------------------------------------------------------------
# The shipped scenarios.
# ---------------------------------------------------------------------------

def _no_fault(num_isns: int, horizon_ms: float) -> FaultSpec:
    return FaultSpec.none()


def _one_straggler(num_isns: int, horizon_ms: float) -> FaultSpec:
    # ISN 0 runs 4x slow for the entire run (a compacting or throttled
    # node); every query's fan-out inherits its tail under wait-for-all.
    return FaultSpec.straggler(0, 4.0, t0_ms=0.0, t1_ms=horizon_ms * 4.0)


def _rolling_blackout(num_isns: int, horizon_ms: float) -> FaultSpec:
    # A rolling restart: each ISN is down for ~6 % of the run, one
    # after another, starting after a warm-up twentieth of the run.
    return FaultSpec.rolling_blackout(
        num_isns,
        duration_ms=0.06 * horizon_ms,
        stagger_ms=0.9 * horizon_ms / num_isns,
        start_ms=0.05 * horizon_ms,
    )


def _overload_slowdown(num_isns: int, horizon_ms: float) -> FaultSpec:
    # A milder slowdown, but at a load point with little spare
    # capacity anywhere — hedges must queue behind real traffic.
    return FaultSpec.straggler(0, 2.0, t0_ms=0.0, t1_ms=horizon_ms * 4.0)


def _straggler_variants(num_isns: int) -> tuple[tuple[str, HedgePolicy], ...]:
    return (
        ("wait-all", HedgePolicy.wait_for_all()),
        ("hedge-60ms", HedgePolicy.hedged(60.0)),
    )


def _blackout_variants(num_isns: int) -> tuple[tuple[str, HedgePolicy], ...]:
    k = max(1, num_isns - 1)
    return (
        (f"k-of-n(k={k})", HedgePolicy.partial(k)),
        ("k+hedge-60ms", HedgePolicy.hedged(60.0, wait_for_k=k)),
    )


def _overload_variants(num_isns: int) -> tuple[tuple[str, HedgePolicy], ...]:
    return (
        ("wait-all", HedgePolicy.wait_for_all()),
        ("hedge-25ms-x2", HedgePolicy.hedged(25.0, max_hedges_per_query=2)),
    )


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="healthy-baseline",
            description="no faults; mitigation overhead on a healthy cluster",
            qps=300.0,
            n_queries=3000,
            num_isns=8,
            fast_n_queries=500,
            fast_num_isns=4,
            make_fault=_no_fault,
            make_variants=_straggler_variants,
        ),
        Scenario(
            name="one-straggler",
            description="one ISN 4x slow all run; hedging routes around it",
            qps=300.0,
            n_queries=3000,
            num_isns=8,
            fast_n_queries=500,
            fast_num_isns=4,
            make_fault=_one_straggler,
            make_variants=_straggler_variants,
        ),
        Scenario(
            name="rolling-blackout",
            description="ISNs crash one after another (rolling restart)",
            qps=300.0,
            n_queries=3000,
            num_isns=8,
            fast_n_queries=500,
            fast_num_isns=4,
            make_fault=_rolling_blackout,
            make_variants=_blackout_variants,
        ),
        Scenario(
            name="overloaded-hedging",
            description="slowdown under high load; prices aggressive hedging",
            qps=600.0,
            n_queries=3000,
            num_isns=8,
            fast_n_queries=500,
            fast_num_isns=4,
            make_fault=_overload_slowdown,
            make_variants=_overload_variants,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a shipped scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from None


def list_scenarios() -> Sequence[Scenario]:
    """The shipped scenarios, in registry order."""
    return tuple(SCENARIOS.values())
