"""Behavioural tests of prediction quality knobs inside the simulator.

These complement the oracle unit tests: they verify that the
*scheduling consequences* of prediction quality match Section 4.6 —
better predictions narrow the TP/TPC gap, worse predictions widen it.
"""

import numpy as np
import pytest

from repro.experiments import run_search_experiment
from repro.core.target_table import TargetTable

TT = TargetTable([(0, 30), (4, 40), (8, 55), (16, 70), (32, 90)])


@pytest.fixture(scope="module")
def results(tiny_search_workload):
    out = {}
    for policy in ("TP", "TPC"):
        for mode, sigma in (
            ("perfect", 0.0),
            ("oracle-mild", 0.3),
            ("oracle-wild", 1.2),
        ):
            prediction = "perfect" if mode == "perfect" else "oracle"
            out[(policy, mode)] = run_search_experiment(
                tiny_search_workload, policy, 450.0, 6000, 19,
                target_table=TT, prediction=prediction, oracle_sigma=sigma,
            )
    return out


class TestPredictionQualityEffects:
    def test_perfect_predictor_equalises_tp_and_tpc(self, results):
        """With exact predictions nothing needs correcting: TP == TPC
        up to correction-timer noise."""
        tp = results[("TP", "perfect")].p999_ms
        tpc = results[("TPC", "perfect")].p999_ms
        assert tpc == pytest.approx(tp, rel=0.15)

    def test_correction_rate_grows_with_noise(self, results):
        rates = [
            results[("TPC", mode)].recorder.correction_rate()
            for mode in ("perfect", "oracle-mild", "oracle-wild")
        ]
        assert rates[0] <= rates[1] <= rates[2]
        assert rates[2] > rates[0]

    def test_tp_degrades_faster_than_tpc(self, results):
        tp_growth = (
            results[("TP", "oracle-wild")].p999_ms
            / results[("TP", "perfect")].p999_ms
        )
        tpc_growth = (
            results[("TPC", "oracle-wild")].p999_ms
            / results[("TPC", "perfect")].p999_ms
        )
        assert tp_growth > tpc_growth

    def test_wild_noise_still_bounded_by_correction(self, results):
        """Even with sigma=1.2 predictions, TPC's worst response stays
        far below TP's — correction bounds the extreme tail that wild
        mispredictions create."""
        assert (
            results[("TPC", "oracle-wild")].summary.max_ms
            < results[("TP", "oracle-wild")].summary.max_ms * 0.8
        )
        assert (
            results[("TPC", "oracle-wild")].p999_ms
            <= results[("TP", "oracle-wild")].p999_ms * 1.02
        )
