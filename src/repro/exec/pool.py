"""Parallel execution of experiment cells over a process pool.

Every evaluation artifact in this reproduction is a sweep over
independent, deterministically seeded cells, so the executor's job is
embarrassingly parallel: fan :class:`~repro.exec.spec.CellSpec` values
out to worker processes, rebuild the workload from its spec inside
each worker (live workloads never cross process boundaries), simulate,
and ship back compact :class:`~repro.exec.spec.CellResult` payloads.
Results are returned in spec order and are bit-identical to inline
execution — parallelism changes wall-clock time, never numbers.

Worker count resolution (first match wins): explicit ``workers``
argument, the ``REPRO_BENCH_WORKERS`` environment variable, then
``os.cpu_count() - 1`` (at least 1).  A count of 1 runs inline in the
calling process with no pool at all.

Memory note: each worker process memoises the workloads it has built
(:data:`_WORKLOAD_MEMO`), so ``N`` workers hold up to ``N`` copies of
the inverted index and query pools (tens of MB each for the canonical
configuration).  Cap the worker count if the host is memory-tight.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

from ..errors import ConfigError
from .cache import ResultCache
from .spec import CellResult, CellSpec, SweepSpec, WorkloadSpec

__all__ = [
    "ProgressEvent",
    "memoised_workload",
    "forget_workload",
    "resolve_worker_count",
    "run_cell",
    "run_sweep",
    "run_tasks",
    "log_progress",
]

T = TypeVar("T")
R = TypeVar("R")

#: Maximum distinct workloads one process keeps alive simultaneously.
_MEMO_CAP = 4

#: Per-process workload memo: spec -> built workload.  Worker processes
#: populate this lazily on their first cell for a given workload spec;
#: forked workers inherit the parent's entries for free.
_WORKLOAD_MEMO: dict[WorkloadSpec, Any] = {}


@dataclass(frozen=True)
class ProgressEvent:
    """Liveness report emitted after each cell completes."""

    completed: int
    total: int
    spec: CellSpec
    #: Simulation wall-clock seconds for this cell (0.0 on a cache hit).
    wall_time_s: float
    from_cache: bool


def log_progress(event: ProgressEvent) -> None:
    """A ready-made progress callback: one line per finished cell."""
    source = "cache" if event.from_cache else f"{event.wall_time_s:.1f}s"
    print(
        f"[exec {event.completed}/{event.total}] "
        f"{event.spec.policy_name} @ {event.spec.qps:g} qps ({source})",
        flush=True,
    )


def resolve_worker_count(workers: int | None = None) -> int:
    """Effective worker count: argument, env var, or cpu_count - 1."""
    if workers is None:
        env = os.environ.get("REPRO_BENCH_WORKERS")
        if env is not None:
            workers = int(env)
        else:
            workers = max(1, (os.cpu_count() or 2) - 1)
    if workers < 1:
        raise ConfigError(f"worker count must be >= 1, got {workers}")
    return workers


def memoised_workload(spec: WorkloadSpec) -> Any:
    """Build (or reuse) the workload a spec describes, in this process.

    Public so non-cell callers (e.g. the gate's cluster check) can
    share the copy that inline cell execution already built instead of
    paying a second multi-second workload build.
    """
    workload = _WORKLOAD_MEMO.get(spec)
    if workload is None:
        workload = spec.build()
        while len(_WORKLOAD_MEMO) >= _MEMO_CAP:
            _WORKLOAD_MEMO.pop(next(iter(_WORKLOAD_MEMO)))
        _WORKLOAD_MEMO[spec] = workload
    return workload


def forget_workload(spec: WorkloadSpec) -> None:
    """Evict one workload from this process's memo (no-op if absent).

    Lets cold-path measurements (``repro.perf``'s end-to-end scenario)
    pay the full workload build on every repeat instead of timing the
    memoised copy.
    """
    _WORKLOAD_MEMO.pop(spec, None)


def _execute_cell(spec: CellSpec) -> CellResult:
    """Expand and simulate one cell (runs in worker or caller process)."""
    from ..experiments.runner import run_search_experiment

    if spec.cluster_config is not None:
        from ..resilience.runner import execute_cluster_cell

        return execute_cluster_cell(spec)

    started = time.perf_counter()
    workload = memoised_workload(spec.workload)
    result = run_search_experiment(
        workload,
        spec.policy_name,
        spec.qps,
        spec.n_requests,
        spec.seed,
        target_table=spec.target_table,
        server_config=spec.server_config,
        policy_config=spec.policy_config,
        load_metric=spec.load_metric,
        prediction=spec.prediction,
        oracle_sigma=spec.oracle_sigma,
        rampup_interval_ms=spec.rampup_interval_ms,
    )
    return CellResult.from_recorder(
        spec,
        result.policy_name,
        result.recorder,
        wall_time_s=time.perf_counter() - started,
    )


def run_cell(spec: CellSpec, cache: ResultCache | None = None) -> CellResult:
    """Execute one cell inline, consulting the cache if given."""
    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            hit.wall_time_s = 0.0
            return hit
    result = _execute_cell(spec)
    if cache is not None:
        cache.put(spec, result)
    return result


def run_sweep(
    sweep: SweepSpec | Sequence[CellSpec],
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
) -> list[CellResult]:
    """Execute every cell of a sweep; results in spec order.

    Cached cells are answered without any simulation work.  The
    remaining cells run inline when the effective worker count is 1 (or
    only one cell is missing), otherwise across a process pool.  The
    ``progress`` callback fires once per completed cell, in completion
    order, with cells-completed / total and per-cell wall time.
    """
    cells = tuple(sweep)
    total = len(cells)
    results: list[CellResult | None] = [None] * total
    completed = 0

    def report(index: int, result: CellResult, from_cache: bool) -> None:
        nonlocal completed
        completed += 1
        if progress is not None:
            progress(
                ProgressEvent(
                    completed=completed,
                    total=total,
                    spec=cells[index],
                    wall_time_s=result.wall_time_s,
                    from_cache=from_cache,
                )
            )

    pending: list[int] = []
    for i, spec in enumerate(cells):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            hit.wall_time_s = 0.0
            results[i] = hit
            report(i, hit, from_cache=True)
        else:
            pending.append(i)

    workers = resolve_worker_count(workers)
    if workers <= 1 or len(pending) <= 1:
        for i in pending:
            result = _execute_cell(cells[i])
            if cache is not None:
                cache.put(cells[i], result)
            results[i] = result
            report(i, result, from_cache=False)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {pool.submit(_execute_cell, cells[i]): i for i in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    i = futures[future]
                    result = future.result()
                    if cache is not None:
                        cache.put(cells[i], result)
                    results[i] = result
                    report(i, result, from_cache=False)

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def run_tasks(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list[R]:
    """Generic deterministic fan-out used by non-cell work (cluster ISNs).

    Applies a picklable module-level function to every item, inline for
    one worker or over a process pool otherwise, returning results in
    item order.  ``progress`` (if given) receives ``(completed,
    total)``.
    """
    todo = list(items)
    total = len(todo)
    workers = resolve_worker_count(workers)
    results: list[R | None] = [None] * total
    completed = 0
    if workers <= 1 or total <= 1:
        for i, item in enumerate(todo):
            results[i] = fn(item)
            completed += 1
            if progress is not None:
                progress(completed, total)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
            futures = {pool.submit(fn, item): i for i, item in enumerate(todo)}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    results[futures[future]] = future.result()
                    completed += 1
                    if progress is not None:
                        progress(completed, total)
    return results  # type: ignore[return-value]
