"""Tests for the target table (Section 3.3 lookup semantics)."""

import pytest

from repro.core.target_table import TargetTable
from repro.errors import TargetTableError


class TestConstruction:
    def test_entries_preserved(self):
        table = TargetTable([(0, 30), (4, 50)])
        assert table.entries == ((0.0, 30.0), (4.0, 50.0))
        assert len(table) == 2

    def test_rejects_empty(self):
        with pytest.raises(TargetTableError):
            TargetTable([])

    def test_rejects_unsorted_loads(self):
        with pytest.raises(TargetTableError):
            TargetTable([(4, 50), (0, 30)])

    def test_rejects_duplicate_loads(self):
        with pytest.raises(TargetTableError):
            TargetTable([(4, 50), (4, 60)])

    def test_rejects_nonpositive_targets(self):
        with pytest.raises(TargetTableError):
            TargetTable([(0, 0.0)])

    def test_uniform_constructor(self):
        table = TargetTable.uniform([0, 2, 4], 25.0)
        assert table.targets == (25.0, 25.0, 25.0)

    def test_constant_constructor(self):
        assert TargetTable.constant(40.0).target_for(999.0) == 40.0


class TestLookup:
    """target_for(d) returns e_i with d_{i-1} < d <= d_i."""

    def test_zero_load_uses_first_entry(self):
        table = TargetTable([(0, 30), (4, 50), (8, 70)])
        assert table.target_for(0.0) == 30.0

    def test_interval_semantics(self):
        table = TargetTable([(0, 30), (4, 50), (8, 70)])
        assert table.target_for(1.0) == 50.0  # 0 < 1 <= 4
        assert table.target_for(4.0) == 50.0  # boundary inclusive
        assert table.target_for(4.5) == 70.0

    def test_load_beyond_last_breakpoint_uses_last_target(self):
        table = TargetTable([(0, 30), (4, 50)])
        assert table.target_for(1000.0) == 50.0

    def test_monotone_tables_give_monotone_targets(self):
        table = TargetTable([(0, 25), (3, 30), (6, 40), (10, 60)])
        targets = [table.target_for(x * 0.5) for x in range(30)]
        assert all(b >= a for a, b in zip(targets, targets[1:]))


class TestMutation:
    def test_with_target_replaces_one_entry(self):
        table = TargetTable([(0, 30), (4, 50)])
        new = table.with_target(1, 55.0)
        assert new.targets == (30.0, 55.0)
        assert table.targets == (30.0, 50.0)  # original untouched

    def test_bumped_adds_step(self):
        table = TargetTable([(0, 30), (4, 50)])
        assert table.bumped(0, 5.0).targets == (35.0, 50.0)

    def test_with_target_rejects_bad_index(self):
        table = TargetTable([(0, 30)])
        with pytest.raises(TargetTableError):
            table.with_target(1, 40.0)

    def test_equality_and_hash(self):
        a = TargetTable([(0, 30), (4, 50)])
        b = TargetTable([(0, 30), (4, 50)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.bumped(0, 5.0)
