#!/usr/bin/env python3
"""Partition-aggregate web search: a cluster of ISNs under TPC.

Reproduces the Section 4.5 scenario: a query fans out to every
index-serving node, the aggregator waits for all of them, so the
slowest ISN sets the user-visible latency.  The example shows

1. why the cluster's P99 is governed by a much higher per-ISN
   percentile (the paper's Figure 8(b) order-statistics effect), and
2. how much TPC improves the user-visible tail over the baselines.

Run:  python examples/search_cluster.py  [--isns 16] [--queries 3000]
"""

import argparse

from repro import default_target_table, default_workload
from repro.cluster import run_cluster_experiment
from repro.config import ClusterConfig
from repro.experiments.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--isns", type=int, default=16,
                        help="number of index-serving nodes")
    parser.add_argument("--queries", type=int, default=3_000,
                        help="logical queries to replay")
    parser.add_argument("--qps", type=float, default=450.0,
                        help="offered load in queries per second")
    args = parser.parse_args()

    workload = default_workload()
    table = default_target_table()
    cluster_cfg = ClusterConfig(num_isns=args.isns)

    print(
        f"Replaying {args.queries} queries at {args.qps:g} QPS across "
        f"{args.isns} ISNs per policy..."
    )
    rows = []
    tpc_result = None
    for policy in ("Sequential", "AP", "Pred", "TPC"):
        result = run_cluster_experiment(
            workload,
            policy,
            args.qps,
            args.queries,
            seed=3,
            cluster_config=cluster_cfg,
            target_table=table,
        )
        if policy == "TPC":
            tpc_result = result
        rows.append(
            [
                policy,
                round(result.aggregator_percentile(95), 1),
                round(result.aggregator_percentile(99), 1),
                round(result.isn_percentile(99), 1),
                f"{100 * result.fraction_slower_than(100.0):.2f}%",
            ]
        )

    print()
    print(
        format_table(
            ["policy", "agg P95", "agg P99", "ISN P99", ">100ms"],
            rows,
            title="Aggregator vs per-ISN latency (ms)",
        )
    )

    assert tpc_result is not None
    agg_p99 = tpc_result.aggregator_percentile(99)
    isn_pct = tpc_result.isn_percentile_of_latency(agg_p99)
    print(
        f"\nTPC's aggregator P99 of {agg_p99:.1f} ms corresponds to the "
        f"P{isn_pct:.2f} of an individual ISN:\ntaming the cluster's P99 "
        "requires taming a much higher percentile at every server —\n"
        "which is exactly the regime where dynamic correction pays off."
    )


if __name__ == "__main__":
    main()
