"""Tests for the corpus generator and inverted index."""

import numpy as np
import pytest

from repro.config import SearchWorkloadConfig
from repro.errors import WorkloadError
from repro.search.corpus import build_corpus, zipf_probabilities
from repro.search.index import InvertedIndex


@pytest.fixture(scope="module")
def small_corpus():
    cfg = SearchWorkloadConfig(
        num_documents=400, vocabulary_size=300, mean_doc_length=60
    )
    return build_corpus(cfg, np.random.default_rng(5))


@pytest.fixture(scope="module")
def small_index(small_corpus):
    return InvertedIndex(small_corpus)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        probs = zipf_probabilities(1000, 1.1)
        assert probs.sum() == pytest.approx(1.0)

    def test_probabilities_decrease_with_rank(self):
        probs = zipf_probabilities(100, 1.0)
        assert all(b < a for a, b in zip(probs, probs[1:]))

    def test_head_dominates(self):
        probs = zipf_probabilities(10_000, 1.1)
        assert probs[:100].sum() > 0.4

    def test_rejects_bad_inputs(self):
        with pytest.raises(WorkloadError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(WorkloadError):
            zipf_probabilities(10, 0.0)


class TestCorpus:
    def test_dimensions(self, small_corpus):
        assert small_corpus.num_documents == 400
        assert small_corpus.vocabulary_size == 300
        assert small_corpus.total_tokens == len(small_corpus.doc_term_ids)

    def test_document_access(self, small_corpus):
        for doc_id in (0, 100, 399):
            terms = small_corpus.document_terms(doc_id)
            assert len(terms) == small_corpus.document_length(doc_id)
            assert terms.min() >= 0
            assert terms.max() < 300

    def test_mean_length_near_configured(self, small_corpus):
        lengths = [
            small_corpus.document_length(d)
            for d in range(small_corpus.num_documents)
        ]
        assert np.mean(lengths) == pytest.approx(60, rel=0.25)

    def test_reproducible_for_same_seed(self):
        cfg = SearchWorkloadConfig(
            num_documents=50, vocabulary_size=80, mean_doc_length=30
        )
        a = build_corpus(cfg, np.random.default_rng(3))
        b = build_corpus(cfg, np.random.default_rng(3))
        np.testing.assert_array_equal(a.doc_term_ids, b.doc_term_ids)


class TestInvertedIndex:
    def test_postings_are_sorted_unique_docs(self, small_index):
        for term in range(0, 300, 37):
            docs, tfs = small_index.postings(term)
            assert len(docs) == len(tfs)
            assert all(b > a for a, b in zip(docs, docs[1:]))
            assert (tfs >= 1).all()

    def test_document_frequency_matches_postings(self, small_index):
        for term in (0, 10, 299):
            docs, _ = small_index.postings(term)
            assert small_index.document_frequency(term) == len(docs)

    def test_postings_reconstruct_corpus_counts(self, small_corpus, small_index):
        """The tf of (term, doc) in the index equals the term's count in
        the document — the index is lossless."""
        doc_id = 7
        terms, counts = np.unique(
            small_corpus.document_terms(doc_id), return_counts=True
        )
        for term, count in zip(terms, counts):
            docs, tfs = small_index.postings(int(term))
            pos = np.searchsorted(docs, doc_id)
            assert docs[pos] == doc_id
            assert tfs[pos] == count

    def test_popular_terms_have_longer_postings(self, small_index):
        dfs = small_index.document_frequencies
        assert dfs[:10].mean() > dfs[-100:].mean()

    def test_idf_decreases_with_df(self, small_index):
        # rank 0 is most frequent -> smallest IDF.
        assert small_index.idf(0) < small_index.idf(299)

    def test_idf_array_matches_scalar(self, small_index):
        ids = [0, 5, 100]
        arr = small_index.idf_array(ids)
        for i, term in enumerate(ids):
            assert arr[i] == pytest.approx(small_index.idf(term))

    def test_total_postings_sums_dfs(self, small_index):
        ids = [1, 2, 3]
        expected = sum(small_index.document_frequency(t) for t in ids)
        assert small_index.total_postings(ids) == expected

    def test_term_out_of_range_rejected(self, small_index):
        with pytest.raises(WorkloadError):
            small_index.postings(300)
        with pytest.raises(WorkloadError):
            small_index.idf_array([300])

    def test_doc_lengths_and_average(self, small_index, small_corpus):
        assert len(small_index.doc_lengths) == 400
        assert small_index.avg_doc_length == pytest.approx(
            np.mean([small_corpus.document_length(d) for d in range(400)])
        )
