"""Tests for the search-workload disk cache and report formatting."""

import os

import numpy as np
import pytest

from repro.config import PredictorConfig, SearchWorkloadConfig
from repro.experiments.report import format_table
from repro.search import build_search_workload


@pytest.fixture()
def tiny_cfg():
    return SearchWorkloadConfig(
        num_documents=800, vocabulary_size=500, mean_doc_length=60
    )


@pytest.fixture()
def fast_predictor():
    return PredictorConfig(num_trees=10, max_depth=2)


class TestDiskCache:
    def test_cache_roundtrip_identical(self, tiny_cfg, fast_predictor,
                                       tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = build_search_workload(
            seed=3, config=tiny_cfg, predictor_config=fast_predictor,
            pool_size=300, use_cache=True,
        )
        cached_files = list(tmp_path.glob("search-pool-*.npz"))
        assert len(cached_files) == 1
        second = build_search_workload(
            seed=3, config=tiny_cfg, predictor_config=fast_predictor,
            pool_size=300, use_cache=True,
        )
        np.testing.assert_array_equal(
            first.pool_demands_ms, second.pool_demands_ms
        )
        np.testing.assert_array_equal(
            first.pool_predictions_ms, second.pool_predictions_ms
        )

    def test_cache_key_distinguishes_configs(self, tiny_cfg, fast_predictor,
                                             tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        build_search_workload(
            seed=3, config=tiny_cfg, predictor_config=fast_predictor,
            pool_size=300, use_cache=True,
        )
        other_cfg = SearchWorkloadConfig(
            num_documents=800, vocabulary_size=500, mean_doc_length=60,
            hard_query_fraction=0.2,
        )
        build_search_workload(
            seed=3, config=other_cfg, predictor_config=fast_predictor,
            pool_size=300, use_cache=True,
        )
        assert len(list(tmp_path.glob("search-pool-*.npz"))) == 2

    def test_use_cache_false_writes_nothing(self, tiny_cfg, fast_predictor,
                                            tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        build_search_workload(
            seed=3, config=tiny_cfg, predictor_config=fast_predictor,
            pool_size=300, use_cache=False,
        )
        assert not list(tmp_path.glob("*.npz"))

    def test_matches_uncached_build(self, tiny_cfg, fast_predictor,
                                    tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cached = build_search_workload(
            seed=5, config=tiny_cfg, predictor_config=fast_predictor,
            pool_size=300, use_cache=True,
        )
        uncached = build_search_workload(
            seed=5, config=tiny_cfg, predictor_config=fast_predictor,
            pool_size=300, use_cache=False,
        )
        np.testing.assert_allclose(
            cached.pool_demands_ms, uncached.pool_demands_ms
        )


class TestReportFormatting:
    def test_nan_rendered_as_dash(self):
        text = format_table(["a"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_small_floats_keep_precision(self):
        text = format_table(["x"], [[0.042]])
        assert "0.042" in text

    def test_large_floats_one_decimal(self):
        text = format_table(["x"], [[123.456]])
        assert "123.5" in text

    def test_empty_rows_allowed(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
