"""The gate's check registry: the paper's headline claims as code.

Each :class:`GateCheck` declares (a) which deterministic experiment
cells it needs — expressed as :class:`~repro.exec.spec.CellSpec`
values so the runner can dedupe them across checks and execute them
through the :mod:`repro.exec` pool and cache — and (b) how to reduce
the executed results to banded :class:`~repro.gate.bands.Measurement`
values.

Registered checks:

``demand_distribution``
    Section 2 workload shape, re-derived from the demand sample of a
    simulated trace: mean ~13.5 ms, median ~3.6 ms, >82 % of queries
    under 15 ms, 2-8 % over 80 ms, p99 at least 10x the mean.
``policy_ordering_p99``
    Section 4.2 (Figure 4): p99 of TPC <= TP <= AP <= Sequential at
    every gate load, with small multiplicative tolerances.
``policy_ordering_p999``
    Section 4.2 (Figure 5): the same chain on p99.9 at moderate and
    high load.  (At low load AP's indiscriminate parallelism is
    harmless, so the paper's chain only binds once load builds.)
``tpc_tail_budget``
    Absolute and baseline-relative budgets on TPC's own tail — the
    regression tripwire for the TPC policy and simulator.
``cluster_consistency``
    Section 4.4 (Figure 8): the aggregator of a many-ISN cluster is
    slower than any single ISN, its p99 maps to a much higher per-ISN
    percentile, and per-ISN behaviour stays consistent with the
    single-server cell.
``perf_budget``
    Wall-clock budget for the simulator hot path on a synthetic
    workload (no expensive workload build): events/sec and
    requests/sec floors plus a bit-deterministic event count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from ..config import ClusterConfig, ServerConfig
from ..errors import ConfigError
from ..exec.spec import CellSpec, spec_hash
from ..perf.scenarios import HotpathResult, run_hotpath_benchmark
from ..sim.metrics import DistributionStats, distribution_stats
from .bands import Band, Measurement

if TYPE_CHECKING:  # pragma: no cover
    from .runner import GateContext

__all__ = [
    "GATE_SEED",
    "GateScale",
    "GateCheck",
    "CHECKS",
    "check_names",
    "scale_for_mode",
    "demand_measurements",
    "ordering_measurements",
    "cluster_measurements",
    "hotpath_measurements",
    "run_hotpath_benchmark",
    "ClusterProbe",
    "ClusterProbeSpec",
]

#: Seed of every gate experiment (distinct from the benchmark seed so
#: gate cells never alias benchmark cells in the shared cache).
GATE_SEED = 93

#: Policies of the ordering chain, best tail first (paper Figures 4-5).
ORDERING_POLICIES: tuple[str, ...] = ("TPC", "TP", "AP", "Sequential")

#: Multiplicative slack per adjacent pair of the chain.  The Sequential
#: margin is huge, so its tolerance is the tightest.
P99_PAIR_TOLERANCE: Mapping[str, float] = {
    "TPC/TP": 1.08,
    "TP/AP": 1.08,
    "AP/Sequential": 1.05,
}
P999_PAIR_TOLERANCE: Mapping[str, float] = {
    "TPC/TP": 1.10,
    "TP/AP": 1.10,
    "AP/Sequential": 1.08,
}


@dataclass(frozen=True)
class GateScale:
    """Sample sizes of one gate mode (deterministic given the mode)."""

    mode: str
    n_requests: int
    qps_grid: tuple[float, ...]
    cluster_isns: int
    cluster_queries: int
    hotpath_requests: int
    seed: int = GATE_SEED

    @property
    def mid_qps(self) -> float:
        """The moderate-load operating point most checks anchor on."""
        return self.qps_grid[len(self.qps_grid) // 2]


_SCALES: dict[str, GateScale] = {
    "fast": GateScale(
        mode="fast",
        n_requests=4_000,
        qps_grid=(150.0, 450.0, 750.0),
        cluster_isns=8,
        cluster_queries=600,
        hotpath_requests=6_000,
    ),
    "full": GateScale(
        mode="full",
        n_requests=20_000,
        qps_grid=(150.0, 450.0, 750.0),
        cluster_isns=16,
        cluster_queries=2_000,
        hotpath_requests=20_000,
    ),
}


def scale_for_mode(mode: str) -> GateScale:
    """The :class:`GateScale` of ``"fast"`` or ``"full"``."""
    try:
        return _SCALES[mode]
    except KeyError:
        raise ConfigError(
            f"unknown gate mode {mode!r}; expected one of {sorted(_SCALES)}"
        ) from None


@dataclass(frozen=True)
class GateCheck:
    """One registered fidelity or performance check."""

    name: str
    description: str
    paper_ref: str
    cells: Callable[[GateScale], tuple[CellSpec, ...]]
    evaluate: Callable[["GateContext"], list[Measurement]]


def _gate_cell(scale: GateScale, policy: str, qps: float) -> CellSpec:
    """One canonical gate cell (default workload, shipped table)."""
    from ..experiments.scenarios import (
        DEFAULT_SEARCH_TARGET_TABLE,
        default_workload_spec,
    )

    return CellSpec.for_experiment(
        default_workload_spec(),
        policy,
        qps,
        scale.n_requests,
        scale.seed,
        target_table=DEFAULT_SEARCH_TARGET_TABLE,
    )


def _ordering_cells(scale: GateScale) -> tuple[CellSpec, ...]:
    """The (policy, load) cells shared by every fidelity check."""
    return tuple(
        _gate_cell(scale, policy, qps)
        for policy in ORDERING_POLICIES
        for qps in scale.qps_grid
    )


# ---------------------------------------------------------------------------
# demand_distribution


def demand_measurements(stats: DistributionStats) -> list[Measurement]:
    """Band the Section 2 demand statistics of a simulated sample.

    The bands allow for two effects the pool statistics do not show:
    sampling (the gate sees a finite trace, not the pool) and the
    per-execution lognormal demand jitter, which lifts the sample mean
    slightly above the pool's calibrated 13.47 ms.
    """
    ref = "PAPER '2.1-2.4"
    return [
        Measurement(
            "demand_mean_ms",
            stats.mean_ms,
            Band(lo=11.5, hi=16.5),
            paper_ref=f"{ref}: mean 13.47 ms",
        ),
        Measurement(
            "demand_median_ms",
            stats.median_ms,
            Band(lo=2.8, hi=4.4),
            paper_ref=f"{ref}: median ~3.6 ms",
        ),
        Measurement(
            "demand_short_fraction",
            stats.short_fraction,
            Band(lo=0.82, unit="fraction"),
            paper_ref=f"{ref}: >85% of queries under 15 ms",
        ),
        Measurement(
            "demand_long_fraction",
            stats.long_fraction,
            Band(lo=0.02, hi=0.08, unit="fraction"),
            paper_ref=f"{ref}: ~4% of queries over 80 ms",
        ),
        Measurement(
            "demand_p99_over_mean",
            stats.p99_over_mean,
            Band(lo=10.0, unit="ratio"),
            paper_ref=f"{ref}: p99 ~200 ms = 15x mean",
        ),
        Measurement(
            "demand_p99_over_median",
            stats.p99_over_median,
            Band(lo=30.0, hi=90.0, unit="ratio"),
            paper_ref=f"{ref}: p99 = 56x median",
        ),
    ]


def _evaluate_demand(ctx: "GateContext") -> list[Measurement]:
    cell = _gate_cell(ctx.scale, "TPC", ctx.scale.mid_qps)
    result = ctx.result(cell)
    return demand_measurements(distribution_stats(result.demands_ms))


# ---------------------------------------------------------------------------
# policy ordering


def ordering_measurements(
    label: str,
    tails_ms: Mapping[str, Mapping[float, float]],
    loads: Sequence[float],
    tolerances: Mapping[str, float],
    paper_ref: str,
) -> list[Measurement]:
    """Band the pairwise tail-latency chain TPC <= TP <= AP <= Sequential.

    ``tails_ms`` maps policy -> load -> tail latency; each adjacent
    pair of the chain yields one ratio measurement per load, banded at
    the pair's tolerance.  The raw per-policy tails ride along as
    informational measurements so a failing ratio can be read in
    context.
    """
    measurements: list[Measurement] = []
    for qps in loads:
        for policy in ORDERING_POLICIES:
            measurements.append(
                Measurement(
                    f"{label}@{qps:g}:{policy}",
                    tails_ms[policy][qps],
                    None,
                )
            )
        for faster, slower in zip(ORDERING_POLICIES, ORDERING_POLICIES[1:]):
            pair = f"{faster}/{slower}"
            ratio = tails_ms[faster][qps] / tails_ms[slower][qps]
            measurements.append(
                Measurement(
                    f"{label}_ratio@{qps:g}:{pair}",
                    ratio,
                    Band(hi=tolerances[pair], unit="ratio"),
                    paper_ref=paper_ref,
                )
            )
    return measurements


def _tails(
    ctx: "GateContext", loads: Sequence[float], percentile_attr: str
) -> dict[str, dict[float, float]]:
    tails: dict[str, dict[float, float]] = {}
    for policy in ORDERING_POLICIES:
        tails[policy] = {}
        for qps in loads:
            result = ctx.result(_gate_cell(ctx.scale, policy, qps))
            tails[policy][qps] = getattr(result.summary, percentile_attr)
    return tails


def _evaluate_ordering_p99(ctx: "GateContext") -> list[Measurement]:
    loads = ctx.scale.qps_grid
    return ordering_measurements(
        "p99",
        _tails(ctx, loads, "p99_ms"),
        loads,
        P99_PAIR_TOLERANCE,
        "PAPER '4.2 Fig. 4: TPC holds the lowest p99 at every load",
    )


def _evaluate_ordering_p999(ctx: "GateContext") -> list[Measurement]:
    # Low load excluded: AP's indiscriminate parallelism only hurts
    # the extreme tail once the server is contended (Figure 5).
    loads = ctx.scale.qps_grid[1:]
    return ordering_measurements(
        "p999",
        _tails(ctx, loads, "p999_ms"),
        loads,
        P999_PAIR_TOLERANCE,
        "PAPER '4.2 Fig. 5: TPC dominates the p99.9 chain under load",
    )


# ---------------------------------------------------------------------------
# tpc_tail_budget


def _evaluate_tpc_budget(ctx: "GateContext") -> list[Measurement]:
    scale = ctx.scale
    mid, top = scale.mid_qps, scale.qps_grid[-1]
    at_mid = ctx.result(_gate_cell(scale, "TPC", mid)).summary
    at_top = ctx.result(_gate_cell(scale, "TPC", top)).summary
    ref = "PAPER '4.2: TPC holds ~100 ms p99 through moderate/heavy load"
    return [
        Measurement(
            f"tpc_p99@{mid:g}",
            at_mid.p99_ms,
            Band(hi=120.0, rel_lo=0.75, rel_hi=1.25),
            paper_ref=ref,
            baseline_key=True,
        ),
        Measurement(
            f"tpc_p999@{mid:g}",
            at_mid.p999_ms,
            Band(hi=170.0, rel_lo=0.65, rel_hi=1.35),
            paper_ref=ref,
            baseline_key=True,
        ),
        Measurement(
            f"tpc_p99@{top:g}",
            at_top.p99_ms,
            Band(hi=170.0, rel_lo=0.75, rel_hi=1.25),
            paper_ref=ref,
            baseline_key=True,
        ),
        Measurement(
            f"tpc_mean@{mid:g}",
            at_mid.mean_ms,
            Band(hi=12.0, rel_lo=0.8, rel_hi=1.2),
            paper_ref="PAPER '4.2: parallelism leaves the mean near-minimal",
            baseline_key=True,
        ),
    ]


# ---------------------------------------------------------------------------
# cluster_consistency


@dataclass(frozen=True)
class ClusterProbeSpec:
    """Declarative description of the gate's cluster run.

    Not a :class:`CellSpec` — a cluster run spans many coupled per-ISN
    simulations — but hashable the same way, so its summary can be
    memoised in the :mod:`repro.exec` payload cache and a warm gate
    run skips the cluster simulation entirely.
    """

    policy_name: str
    qps: float
    n_queries: int
    num_isns: int
    seed: int

    @property
    def content_hash(self) -> str:
        """Stable cache key (same spec, same hash, any process)."""
        return spec_hash(self)


@dataclass(frozen=True)
class ClusterProbe:
    """The compact summary of one cluster run the gate judges."""

    aggregator_p99_ms: float
    isn_p99_ms: float
    isn_percentile_at_aggregator_p99: float


def run_cluster_probe(ctx: "GateContext", spec: ClusterProbeSpec) -> ClusterProbe:
    """Execute the cluster run and reduce it to a :class:`ClusterProbe`."""
    from ..cluster import run_cluster_experiment
    from ..experiments.scenarios import DEFAULT_SEARCH_TARGET_TABLE

    result = run_cluster_experiment(
        ctx.workload(),
        spec.policy_name,
        spec.qps,
        spec.n_queries,
        spec.seed,
        cluster_config=ClusterConfig(num_isns=spec.num_isns),
        target_table=DEFAULT_SEARCH_TARGET_TABLE,
        workers=ctx.workers,
    )
    agg_p99 = result.aggregator_percentile(99)
    return ClusterProbe(
        aggregator_p99_ms=agg_p99,
        isn_p99_ms=result.isn_percentile(99),
        isn_percentile_at_aggregator_p99=result.isn_percentile_of_latency(
            agg_p99
        ),
    )


def cluster_measurements(
    probe: ClusterProbe, single_isn_p99_ms: float
) -> list[Measurement]:
    """Band the cluster run against the single-ISN cell."""
    ref = "PAPER '4.4 Fig. 8"
    return [
        Measurement(
            "cluster_agg_p99_over_isn_p99",
            probe.aggregator_p99_ms / probe.isn_p99_ms,
            Band(lo=1.0, unit="ratio"),
            paper_ref=f"{ref}: the aggregator waits for its slowest ISN",
        ),
        Measurement(
            "cluster_isn_pct_at_agg_p99",
            probe.isn_percentile_at_aggregator_p99,
            Band(lo=99.0, hi=100.0, unit="percentile"),
            paper_ref=f"{ref}(b): aggregator p99 ~ ISN p99.8",
        ),
        Measurement(
            "cluster_isn_p99_over_single",
            probe.isn_p99_ms / single_isn_p99_ms,
            Band(lo=0.6, hi=1.4, unit="ratio"),
            paper_ref=f"{ref}: per-ISN behaviour matches the single-ISN run",
        ),
    ]


def _evaluate_cluster(ctx: "GateContext") -> list[Measurement]:
    scale = ctx.scale
    probe_spec = ClusterProbeSpec(
        policy_name="TPC",
        qps=scale.mid_qps,
        n_queries=scale.cluster_queries,
        num_isns=scale.cluster_isns,
        seed=scale.seed,
    )
    probe = ctx.memoise_payload(
        f"gate-cluster-{probe_spec.content_hash}",
        lambda: run_cluster_probe(ctx, probe_spec),
        expect=ClusterProbe,
    )
    single = ctx.result(_gate_cell(scale, "TPC", scale.mid_qps))
    return cluster_measurements(probe, single.summary.p99_ms)


# ---------------------------------------------------------------------------
# perf_budget
#
# The hot-path benchmark itself lives in repro.perf.scenarios (the
# perf harness's ``server_under_load`` scenario) and is imported above,
# so ``python -m repro.perf`` and this check time the identical code.
# The gate seed equals repro.perf's HOTPATH_SEED; both are asserted
# equal by the test suite.


def hotpath_measurements(result: HotpathResult) -> list[Measurement]:
    """Band the hot-path benchmark: throughput floors, exact event count.

    The throughput floors are deliberately loose (an absolute minimum
    plus wide relative slack) — they catch order-of-magnitude
    regressions without flaking on slower CI machines.  The event
    count, in contrast, is bit-deterministic: any drift means the
    engine's scheduling semantics changed.
    """
    return [
        Measurement(
            "hotpath_events_per_s",
            result.events_per_s,
            Band(lo=2_000.0, rel_lo=0.15, unit="events/s"),
            paper_ref="sim hot-path wall-clock budget",
            baseline_key=True,
        ),
        Measurement(
            "hotpath_requests_per_s",
            result.requests_per_s,
            Band(lo=1_000.0, rel_lo=0.15, unit="req/s"),
            paper_ref="sim hot-path wall-clock budget",
            baseline_key=True,
        ),
        Measurement(
            "hotpath_events_run",
            float(result.events_run),
            Band(rel_lo=0.999, rel_hi=1.001, unit="events"),
            paper_ref="deterministic event count of the synthetic trace",
            baseline_key=True,
        ),
        Measurement(
            "hotpath_wall_time_s", result.wall_time_s, None
        ),
    ]


def _evaluate_hotpath(ctx: "GateContext") -> list[Measurement]:
    return hotpath_measurements(
        run_hotpath_benchmark(ctx.scale.hotpath_requests, ctx.scale.seed)
    )


# ---------------------------------------------------------------------------
# registry

CHECKS: dict[str, GateCheck] = {
    check.name: check
    for check in (
        GateCheck(
            name="demand_distribution",
            description="Section 2 demand-distribution shape bands",
            paper_ref="PAPER '2.1-2.4",
            cells=lambda s: (_gate_cell(s, "TPC", s.mid_qps),),
            evaluate=_evaluate_demand,
        ),
        GateCheck(
            name="policy_ordering_p99",
            description="p99 chain TPC <= TP <= AP <= Sequential per load",
            paper_ref="PAPER '4.2 Fig. 4",
            cells=_ordering_cells,
            evaluate=_evaluate_ordering_p99,
        ),
        GateCheck(
            name="policy_ordering_p999",
            description="p99.9 chain at moderate/high load",
            paper_ref="PAPER '4.2 Fig. 5",
            cells=_ordering_cells,
            evaluate=_evaluate_ordering_p999,
        ),
        GateCheck(
            name="tpc_tail_budget",
            description="absolute + baseline-relative budgets on TPC tails",
            paper_ref="PAPER '4.2",
            cells=lambda s: (
                _gate_cell(s, "TPC", s.mid_qps),
                _gate_cell(s, "TPC", s.qps_grid[-1]),
            ),
            evaluate=_evaluate_tpc_budget,
        ),
        GateCheck(
            name="cluster_consistency",
            description="cluster aggregator vs single-ISN consistency",
            paper_ref="PAPER '4.4 Fig. 8",
            cells=lambda s: (_gate_cell(s, "TPC", s.mid_qps),),
            evaluate=_evaluate_cluster,
        ),
        GateCheck(
            name="perf_budget",
            description="simulator hot-path throughput and event count",
            paper_ref="sim/engine + sim/server hot path",
            cells=lambda s: (),
            evaluate=_evaluate_hotpath,
        ),
    )
}


def check_names() -> list[str]:
    """All registered check names, in registry order."""
    return list(CHECKS)
