"""Cross-ISN consistency properties of the cluster simulation."""

import numpy as np
import pytest

from repro.cluster import run_cluster_experiment
from repro.config import ClusterConfig


@pytest.fixture(scope="module")
def cluster_result(tiny_search_workload, target_table):
    return run_cluster_experiment(
        tiny_search_workload,
        "TPC",
        qps=250.0,
        n_queries=600,
        seed=41,
        cluster_config=ClusterConfig(num_isns=6),
        target_table=target_table,
    )


class TestClusterConsistency:
    def test_every_isn_serves_every_query(self, cluster_result):
        rids = [set() for _ in range(6)]
        # Each recorder saw all 600 logical queries exactly once.
        for recorder in cluster_result.isn_recorders:
            assert len(recorder) == 600

    def test_aggregator_latency_dominates_every_replica(self, cluster_result):
        lat = cluster_result.isn_latencies_ms.reshape(600, 6)
        slowest = lat.max(axis=1)
        agg = np.sort(cluster_result.aggregator_latencies_ms)
        # Aggregator latency = slowest replica + network overhead, so
        # sorted aggregator latencies dominate sorted slowest-replica
        # latencies element-wise.
        np.testing.assert_array_less(np.sort(slowest) - 1e-9, agg)

    def test_network_overhead_added_exactly_once(
        self, tiny_search_workload, target_table
    ):
        no_net = run_cluster_experiment(
            tiny_search_workload, "Sequential", 100.0, 150, 9,
            cluster_config=ClusterConfig(
                num_isns=2, network_overhead_ms=0.0, demand_jitter_sigma=0.0
            ),
            target_table=target_table,
        )
        with_net = run_cluster_experiment(
            tiny_search_workload, "Sequential", 100.0, 150, 9,
            cluster_config=ClusterConfig(
                num_isns=2, network_overhead_ms=5.0, demand_jitter_sigma=0.0
            ),
            target_table=target_table,
        )
        delta = (
            with_net.aggregator_latencies_ms - no_net.aggregator_latencies_ms
        )
        np.testing.assert_allclose(delta, 5.0, atol=1e-6)

    def test_zero_jitter_makes_replicas_identical(
        self, tiny_search_workload, target_table
    ):
        result = run_cluster_experiment(
            tiny_search_workload, "Sequential", 50.0, 100, 13,
            cluster_config=ClusterConfig(
                num_isns=3, demand_jitter_sigma=0.0
            ),
            target_table=target_table,
        )
        lat = result.isn_latencies_ms.reshape(100, 3)
        # At 50 QPS with Sequential there is no queueing: all replicas
        # of a query have identical demand, hence identical latency.
        spread = lat.max(axis=1) - lat.min(axis=1)
        assert np.median(spread) < 1e-6

    def test_parallel_matches_serial_bit_for_bit(
        self, tiny_search_workload, target_table
    ):
        # The decomposed per-ISN fan-out (workers > 1) must reproduce
        # the shared-engine run exactly: same aggregator latencies,
        # same per-replica latencies, same per-ISN recorders.
        kwargs = dict(
            qps=200.0, n_queries=150, seed=23,
            cluster_config=ClusterConfig(num_isns=3),
            target_table=target_table,
        )
        serial = run_cluster_experiment(
            tiny_search_workload, "TPC", workers=1, **kwargs
        )
        parallel = run_cluster_experiment(
            tiny_search_workload, "TPC", workers=2, **kwargs
        )
        np.testing.assert_array_equal(
            serial.aggregator_latencies_ms, parallel.aggregator_latencies_ms
        )
        np.testing.assert_array_equal(
            serial.isn_latencies_ms, parallel.isn_latencies_ms
        )
        for a, b in zip(serial.isn_recorders, parallel.isn_recorders):
            np.testing.assert_array_equal(a.responses_ms, b.responses_ms)
            np.testing.assert_array_equal(a.max_degrees, b.max_degrees)

    def test_same_seed_reproducible(self, tiny_search_workload, target_table):
        kwargs = dict(
            qps=150.0, n_queries=200, seed=77,
            cluster_config=ClusterConfig(num_isns=3),
            target_table=target_table,
        )
        a = run_cluster_experiment(tiny_search_workload, "TPC", **kwargs)
        b = run_cluster_experiment(tiny_search_workload, "TPC", **kwargs)
        np.testing.assert_array_equal(
            a.aggregator_latencies_ms, b.aggregator_latencies_ms
        )
