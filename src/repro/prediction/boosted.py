"""Stagewise gradient boosting over regression trees.

Least-squares boosting: each stage fits a shallow tree to the current
residuals and contributes ``learning_rate`` of its prediction.  With a
squared loss the negative gradient *is* the residual, so no separate
gradient machinery is needed.  Row subsampling (stochastic gradient
boosting) decorrelates the stages.
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError
from .tree import FeatureBinner, RegressionTree

__all__ = ["GradientBoostedRegressor"]


class GradientBoostedRegressor:
    """Gradient-boosted regression trees with squared loss."""

    def __init__(
        self,
        num_trees: int = 120,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 8,
        subsample: float = 0.8,
        max_bins: int = 64,
    ) -> None:
        if num_trees < 1:
            raise PredictionError("num_trees must be >= 1")
        if not 0 < learning_rate <= 1:
            raise PredictionError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise PredictionError("subsample must be in (0, 1]")
        self.num_trees = num_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self._binner = FeatureBinner(max_bins)
        self._trees: list[RegressionTree] = []
        self._base: float = 0.0

    @property
    def is_fitted(self) -> bool:
        """Whether the ensemble has been trained."""
        return bool(self._trees)

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> "GradientBoostedRegressor":
        """Train the ensemble.

        ``rng`` drives row subsampling; omit it for deterministic
        full-sample boosting.
        """
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise PredictionError("features and targets must align")
        if len(y) < 2 * self.min_samples_leaf:
            raise PredictionError(
                f"need at least {2 * self.min_samples_leaf} samples"
            )
        binned = self._binner.fit(X).transform(X)
        self._base = float(y.mean())
        prediction = np.full(len(y), self._base)
        self._trees = []
        n = len(y)
        sample_size = max(2 * self.min_samples_leaf, int(self.subsample * n))
        for _ in range(self.num_trees):
            residuals = y - prediction
            if rng is not None and sample_size < n:
                rows = rng.choice(n, size=sample_size, replace=False)
            else:
                rows = np.arange(n)
            tree = RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(binned[rows], residuals[rows])
            prediction += self.learning_rate * tree.predict(binned)
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix."""
        if not self._trees:
            raise PredictionError("model is not fitted")
        X = np.asarray(features, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        binned = self._binner.transform(X)
        out = np.full(len(X), self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(binned)
        return out

    def staged_l1(
        self, features: np.ndarray, targets: np.ndarray
    ) -> list[float]:
        """Mean-absolute error after each boosting stage (diagnostics)."""
        if not self._trees:
            raise PredictionError("model is not fitted")
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        binned = self._binner.transform(X)
        out = np.full(len(X), self._base)
        errors = []
        for tree in self._trees:
            out += self.learning_rate * tree.predict(binned)
            errors.append(float(np.abs(out - y).mean()))
        return errors
