"""One handle for an observed run: tracer + metrics + decision log.

An :class:`Observation` bundles the three sinks of the observability
layer — a shared :class:`~repro.sim.tracing.RequestTracer`, a
:class:`~repro.obs.registry.MetricRegistry`, and a
:class:`~repro.obs.attribution.DecisionLog` — and attaches them to a
server in one call.  Attachment is strictly additive: an unobserved
server runs the exact same float operations it always did, so goldens
and gate event counts are unchanged when no observation is in play.

The enabled path is kept inside the perf budget (<15 % events/s on
the hot-path benchmark) by doing *nothing but recording* while the
simulation runs: the tracer appends raw events, and ``attach`` hooks
only the per-request arrival to capture the live request object.
Counters, gauges and histograms are derived afterwards by replaying
the event stream the first time the registry is read — same numbers,
zero per-event metric cost.

:func:`observe_cell` runs one declarative
:class:`~repro.exec.spec.CellSpec` with observation attached and
returns both the ordinary :class:`~repro.exec.spec.CellResult`
(bit-identical to ``run_cell`` on the same spec) and the observation.
Observability never joins the spec itself — it does not change
results, so it must not change cache keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigError
from ..sim.tracing import RequestTracer, TraceEventKind, attach_tracer
from .attribution import DecisionLog, RequestInfo, TailReport, tail_report
from .registry import MetricRegistry
from .spans import RequestSpan, assemble_spans

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.spec import CellResult, CellSpec
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = ["Observation", "observe_cell"]


class _ScopeMetrics:
    """Replay sink deriving one scope's metrics from the event stream."""

    def __init__(self, scope, streaming: bool) -> None:
        self.arrivals = scope.counter("arrivals")
        self.dispatches = scope.counter("dispatches")
        self.completions = scope.counter("completions")
        self.cancellations = scope.counter("cancellations")
        self.corrections = scope.counter("degree_raises")
        self.queue_depth = scope.gauge("queue_depth")
        self.running = scope.gauge("running")
        self.queue_wait = scope.histogram("queue_wait_ms", streaming=streaming)
        self.response = scope.histogram("response_ms", streaming=streaming)
        self.execution = scope.histogram("execution_ms", streaming=streaming)
        self.initial_degree = scope.histogram(
            "initial_degree", streaming=streaming
        )
        self.scope = scope
        self._queued = 0
        self._running = 0

    def handle(self, event, request: "Request | None") -> None:
        kind = event.kind
        if kind is TraceEventKind.ARRIVAL:
            self.arrivals.value += 1
            self._queued += 1
            self.queue_depth.set(float(self._queued))
        elif kind is TraceEventKind.DISPATCH:
            self.dispatches.value += 1
            self._queued -= 1
            self._running += 1
            self.running.set(float(self._running))
            self.initial_degree.observe(float(event.degree))
            if request is not None:
                self.queue_wait.observe(event.time_ms - request.arrival_ms)
        elif kind is TraceEventKind.DEGREE_CHANGE:
            self.corrections.value += 1
        elif kind is TraceEventKind.COMPLETION:
            self.completions.value += 1
            self._running -= 1
            self.running.set(float(self._running))
            if request is not None:
                self.response.observe(event.time_ms - request.arrival_ms)
                self.execution.observe(event.time_ms - request.start_ms)
        else:  # CANCELLED
            self.cancellations.value += 1
            # Degree 0 means the request was withdrawn while queued.
            if event.degree > 0:
                self._running -= 1
            else:
                self._queued -= 1
            if event.cause is not None:
                self.scope.counter(f"cancelled.{event.cause}").value += 1


class Observation:
    """Aggregated telemetry of one (or several) observed servers.

    Parameters
    ----------
    capacity:
        Optional cap on the number of trace events kept (see
        :class:`RequestTracer`); demand info and policy decisions are
        unaffected by the cap.
    streaming:
        Use O(1)-memory streaming quantile histograms instead of exact
        samples (for long soak runs).
    """

    def __init__(
        self, capacity: int | None = None, streaming: bool = False
    ) -> None:
        self.tracer = RequestTracer(capacity)
        self.decisions = DecisionLog()
        self._streaming = streaming
        #: Per attached server: (scope name, rid -> live request).
        self._servers: list[tuple[str | None, dict[int, "Request"]]] = []
        self._registry = MetricRegistry()
        #: Event count the registry was last derived from (-1 = dirty).
        self._metrics_upto = -1

    @property
    def attached_servers(self) -> int:
        """How many servers feed this observation."""
        return len(self._servers)

    def attach(self, server: "Server", name: str | None = None) -> None:
        """Instrument one server (must be fresh; see ``attach_tracer``).

        ``name`` scopes the server's metrics (``isn3.completions``);
        without it metrics land at the registry root — the right choice
        for single-server experiments.
        """
        requests: dict[int, "Request"] = {}

        def on_arrival(request: "Request") -> None:
            requests[request.rid] = request

        attach_tracer(server, tracer=self.tracer, on_arrival=on_arrival)
        if server.policy.observer is None:
            server.policy.observer = self.decisions
        self._servers.append((name, requests))
        self._metrics_upto = -1

    def _request_for(self, rid: int) -> "Request | None":
        for _, requests in self._servers:
            request = requests.get(rid)
            if request is not None:
                return request
        return None

    def _finalize(self) -> None:
        """(Re)derive the metric registry from the recorded events."""
        n = len(self.tracer)
        if self._metrics_upto == n:
            return
        registry = MetricRegistry()
        sinks: list[_ScopeMetrics] = []
        owner: dict[int, int] = {}
        for i, (name, requests) in enumerate(self._servers):
            scope = registry.scope(name) if name else registry
            sinks.append(_ScopeMetrics(scope, self._streaming))
            for rid in requests:
                owner.setdefault(rid, i)
        if sinks:
            default_sink = sinks[0]
            for event in self.tracer.events:
                rid = event.rid
                index = owner.get(rid)
                sink = sinks[index] if index is not None else default_sink
                sink.handle(
                    event, self._servers[index][1].get(rid)
                    if index is not None
                    else None,
                )
        self._registry = registry
        self._metrics_upto = n

    @property
    def registry(self) -> MetricRegistry:
        """Metrics of the observed run, derived from the event stream.

        Computed lazily on first access after the run (and recomputed
        if more events have been recorded since); reading it mid-run is
        safe but pays a fresh replay.
        """
        self._finalize()
        return self._registry

    @property
    def request_info(self) -> dict[int, RequestInfo]:
        """rid -> ground-truth demand info (captured at arrival)."""
        return {
            rid: RequestInfo(
                predicted_ms=request.predicted_ms,
                demand_ms=request.demand_ms,
            )
            for _, requests in self._servers
            for rid, request in requests.items()
        }

    def spans(self) -> list[RequestSpan]:
        """Assemble one span per traced request (rid order)."""
        return assemble_spans(self.tracer)

    def tail_report(
        self,
        percentiles: Sequence[float] = (99.0, 99.9),
        misprediction_factor: float = 1.5,
    ) -> TailReport:
        """Decompose this run's latency tail (see ``attribution``)."""
        return tail_report(
            self.spans(),
            self.request_info,
            percentiles=percentiles,
            misprediction_factor=misprediction_factor,
        )

    def chrome_trace(self, process_name: str = "repro-sim") -> dict:
        """Chrome trace-event document of every traced request."""
        from .export import chrome_trace

        return chrome_trace(
            self.spans(),
            metrics=self.registry.snapshot(),
            process_name=process_name,
        )

    def extras(self, prefix: str = "obs") -> dict[str, float]:
        """Scalar telemetry for ``CellResult.extras``."""
        return {
            f"{prefix}.events_traced": float(len(self.tracer)),
            f"{prefix}.events_dropped": float(self.tracer.dropped),
            f"{prefix}.dispatch_decisions": float(
                len(self.decisions.dispatches)
            ),
            f"{prefix}.correction_checks": float(len(self.decisions.checks)),
            f"{prefix}.corrections_fired": float(
                self.decisions.corrections_fired
            ),
        }


def observe_cell(
    spec: "CellSpec", observation: Observation | None = None
) -> "tuple[CellResult, Observation]":
    """Run one cell with observation attached.

    The returned :class:`CellResult` is bit-identical to
    ``run_cell(spec)`` on the same spec (observation never perturbs the
    simulation), with the observation's scalar telemetry added under
    ``extras``.  Cluster cells are not observable through this path
    yet.
    """
    import time

    from ..exec.pool import memoised_workload
    from ..exec.spec import CellResult
    from ..experiments.runner import run_search_experiment

    if spec.cluster_config is not None:
        raise ConfigError(
            "observe_cell supports single-server cells only; "
            "cluster cells are not observable yet"
        )
    obs = observation if observation is not None else Observation()
    started = time.perf_counter()
    workload = memoised_workload(spec.workload)
    result = run_search_experiment(
        workload,
        spec.policy_name,
        spec.qps,
        spec.n_requests,
        spec.seed,
        target_table=spec.target_table,
        server_config=spec.server_config,
        policy_config=spec.policy_config,
        load_metric=spec.load_metric,
        prediction=spec.prediction,
        oracle_sigma=spec.oracle_sigma,
        rampup_interval_ms=spec.rampup_interval_ms,
        observation=obs,
    )
    cell = CellResult.from_recorder(
        spec,
        result.policy_name,
        result.recorder,
        wall_time_s=time.perf_counter() - started,
        extras=obs.extras(),
    )
    return cell, obs
