"""In-memory inverted index (document-sharded, like one ISN's fragment).

For every term the index stores the sorted document ids containing it
and the corresponding term frequencies.  Posting-list *lengths* (the
document frequencies) are the primary cost driver for query execution
and, because they are known before a query runs, the primary feature of
the execution-time predictor.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from .corpus import Corpus

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Term -> (doc ids, term frequencies) over one index fragment."""

    def __init__(self, corpus: Corpus) -> None:
        self._num_documents = corpus.num_documents
        self._vocabulary_size = corpus.vocabulary_size
        self._doc_lengths = np.diff(corpus.doc_offsets).astype(np.int32)

        # Expand (doc, term) pairs, deduplicate into term frequencies,
        # then group by term into CSR posting storage.
        doc_of_token = np.repeat(
            np.arange(self._num_documents, dtype=np.int32), self._doc_lengths
        )
        order = np.lexsort((doc_of_token, corpus.doc_term_ids))
        terms = corpus.doc_term_ids[order]
        docs = doc_of_token[order]
        # Collapse duplicate (term, doc) runs into tf counts.
        boundary = np.ones(len(terms), dtype=bool)
        boundary[1:] = (terms[1:] != terms[:-1]) | (docs[1:] != docs[:-1])
        starts = np.flatnonzero(boundary)
        run_lengths = np.diff(np.append(starts, len(terms)))
        self._posting_terms = terms[starts]
        self._posting_docs = docs[starts].astype(np.int32)
        self._posting_tfs = run_lengths.astype(np.int32)

        # CSR offsets per term id.
        counts = np.bincount(
            self._posting_terms, minlength=self._vocabulary_size
        )
        self._term_offsets = np.zeros(self._vocabulary_size + 1, dtype=np.int64)
        np.cumsum(counts, out=self._term_offsets[1:])
        self._document_frequencies = counts.astype(np.int64)

        avg_len = self._doc_lengths.mean() if self._num_documents else 0.0
        self._avg_doc_length = float(avg_len)

    @property
    def num_documents(self) -> int:
        """Documents in this index fragment."""
        return self._num_documents

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct terms the index knows."""
        return self._vocabulary_size

    @property
    def doc_lengths(self) -> np.ndarray:
        """Token count per document (for BM25 normalisation)."""
        return self._doc_lengths

    @property
    def avg_doc_length(self) -> float:
        """Mean document length."""
        return self._avg_doc_length

    @property
    def document_frequencies(self) -> np.ndarray:
        """Document frequency of every term (posting-list lengths)."""
        return self._document_frequencies

    def document_frequency(self, term_id: int) -> int:
        """Posting-list length of one term."""
        self._check_term(term_id)
        return int(self._document_frequencies[term_id])

    def idf(self, term_id: int) -> float:
        """Robertson-Sparck-Jones IDF of one term."""
        df = self.document_frequency(term_id)
        return float(
            np.log1p((self._num_documents - df + 0.5) / (df + 0.5))
        )

    def idf_array(self, term_ids: np.ndarray | list[int]) -> np.ndarray:
        """Vectorised IDF for several terms."""
        ids = np.asarray(term_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self._vocabulary_size):
            raise WorkloadError("term id out of range")
        df = self._document_frequencies[ids].astype(np.float64)
        return np.log1p((self._num_documents - df + 0.5) / (df + 0.5))

    def postings(self, term_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(sorted doc ids, term frequencies) of one term."""
        self._check_term(term_id)
        lo = self._term_offsets[term_id]
        hi = self._term_offsets[term_id + 1]
        return self._posting_docs[lo:hi], self._posting_tfs[lo:hi]

    def total_postings(self, term_ids: np.ndarray | list[int]) -> int:
        """Sum of posting-list lengths (the traversal cost driver)."""
        ids = np.asarray(term_ids, dtype=np.int64)
        return int(self._document_frequencies[ids].sum())

    def _check_term(self, term_id: int) -> None:
        if not 0 <= term_id < self._vocabulary_size:
            raise WorkloadError(
                f"term id {term_id} outside [0, {self._vocabulary_size})"
            )

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(docs={self._num_documents}, "
            f"terms={self._vocabulary_size}, "
            f"postings={len(self._posting_docs)})"
        )
