"""Synthetic document corpus with a Zipf vocabulary.

Term frequencies in real web corpora follow a Zipf law; document
lengths are roughly lognormal.  Both facts matter here because they
drive posting-list lengths, which in turn drive both query cost and
the features the execution-time predictor can see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SearchWorkloadConfig
from ..errors import WorkloadError

__all__ = ["Corpus", "build_corpus", "zipf_probabilities"]


def zipf_probabilities(vocabulary_size: int, exponent: float) -> np.ndarray:
    """Normalised Zipf probabilities over ranks ``1..V``."""
    if vocabulary_size < 1:
        raise WorkloadError("vocabulary_size must be >= 1")
    if exponent <= 0:
        raise WorkloadError("zipf exponent must be > 0")
    ranks = np.arange(1, vocabulary_size + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


@dataclass(frozen=True)
class Corpus:
    """A tokenised synthetic corpus.

    Attributes
    ----------
    doc_term_ids / doc_offsets:
        CSR layout: document ``i`` owns tokens
        ``doc_term_ids[doc_offsets[i]:doc_offsets[i + 1]]`` (term ids,
        duplicates = term frequency).
    term_probabilities:
        The Zipf distribution terms were drawn from (rank order).
    """

    doc_term_ids: np.ndarray
    doc_offsets: np.ndarray
    vocabulary_size: int
    term_probabilities: np.ndarray

    @property
    def num_documents(self) -> int:
        """Number of documents in the corpus."""
        return len(self.doc_offsets) - 1

    @property
    def total_tokens(self) -> int:
        """Total token count across all documents."""
        return int(self.doc_offsets[-1])

    def document_length(self, doc_id: int) -> int:
        """Token count of one document."""
        return int(self.doc_offsets[doc_id + 1] - self.doc_offsets[doc_id])

    def document_terms(self, doc_id: int) -> np.ndarray:
        """Term ids (with repetition) of one document."""
        return self.doc_term_ids[
            self.doc_offsets[doc_id] : self.doc_offsets[doc_id + 1]
        ]


def build_corpus(
    config: SearchWorkloadConfig, rng: np.random.Generator
) -> Corpus:
    """Generate a corpus per the workload configuration.

    Document lengths are lognormal around ``mean_doc_length``; tokens
    are i.i.d. draws from the Zipf term distribution.
    """
    probs = zipf_probabilities(config.vocabulary_size, config.zipf_exponent)
    sigma = config.doc_length_sigma
    mu = np.log(config.mean_doc_length) - sigma**2 / 2.0
    lengths = np.maximum(
        rng.lognormal(mu, sigma, size=config.num_documents).astype(np.int64), 8
    )
    offsets = np.zeros(config.num_documents + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    tokens = rng.choice(
        config.vocabulary_size, size=total, p=probs
    ).astype(np.int32)
    return Corpus(
        doc_term_ids=tokens,
        doc_offsets=offsets,
        vocabulary_size=config.vocabulary_size,
        term_probabilities=probs,
    )
