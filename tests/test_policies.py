"""Tests for every parallelism policy's decision logic."""

import pytest

from repro.config import PolicyConfig, ServerConfig
from repro.errors import ConfigError
from repro.policies import (
    AdaptiveParallelismPolicy,
    PredPolicy,
    RampUpPolicy,
    SequentialPolicy,
    TPCPolicy,
    TPPolicy,
    WQLinearPolicy,
    make_policy,
    policy_names,
)
from repro.policies.ap import average_profile
from repro.policies.registry import POLICY_INFO
from repro.core.target_table import TargetTable
from repro.sim.engine import Engine
from repro.sim.load import LoadMetric
from repro.sim.server import Server

from conftest import LONG_PROFILE, make_request


def make_server(policy, **kwargs) -> Server:
    cfg = ServerConfig(**kwargs) if kwargs else ServerConfig()
    return Server(cfg, policy, engine=Engine())


class TestSequential:
    def test_always_degree_one(self):
        policy = SequentialPolicy()
        server = make_server(policy)
        for demand in (1.0, 50.0, 500.0):
            assert policy.initial_degree(make_request(0, demand), server) == 1

    def test_no_runtime_checks(self):
        policy = SequentialPolicy()
        server = make_server(policy)
        assert policy.first_check_delay(make_request(0, 10.0), server) is None


class TestPred:
    def test_long_prediction_gets_fixed_degree(self):
        policy = PredPolicy(long_threshold_ms=80.0, fixed_degree=3)
        server = make_server(policy)
        req = make_request(0, 100.0, predicted_ms=120.0)
        assert policy.initial_degree(req, server) == 3

    def test_short_prediction_runs_sequentially(self):
        policy = PredPolicy(80.0, 3)
        server = make_server(policy)
        req = make_request(0, 100.0, predicted_ms=60.0)  # mispredicted!
        assert policy.initial_degree(req, server) == 1

    def test_threshold_is_exclusive(self):
        policy = PredPolicy(80.0, 3)
        server = make_server(policy)
        assert policy.initial_degree(make_request(0, 80.0, 80.0), server) == 1

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            PredPolicy(long_threshold_ms=0)
        with pytest.raises(ConfigError):
            PredPolicy(fixed_degree=0)


class TestWQLinear:
    def test_empty_queue_gives_max_degree(self):
        policy = WQLinearPolicy(beta=1.0)
        server = make_server(policy)
        assert policy.initial_degree(make_request(0, 10.0), server) == 6

    def test_degree_decreases_with_queue(self):
        policy = WQLinearPolicy(beta=1.0)
        server = make_server(policy, worker_threads=1, max_parallelism=1)
        # Fill the queue by submitting to a single-worker server.
        server.submit(make_request(0, 1000.0))
        for i in range(1, 6):
            server.submit(make_request(i, 1000.0))
        assert server.queue_length == 5
        # Fresh policy decision with a 5-deep queue on a 6-way server.
        wide = make_server(WQLinearPolicy(beta=1.0))
        degrees = []
        for q in (0, 1, 2, 5, 20):
            wide.waiting.extend(make_request(100 + i, 1.0) for i in range(q))
            degrees.append(
                WQLinearPolicy(beta=1.0).initial_degree(
                    make_request(0, 10.0), wide
                )
            )
            wide.waiting.clear()
        assert degrees[0] == 6
        assert all(b <= a for a, b in zip(degrees, degrees[1:]))
        assert degrees[-1] == 1

    def test_ignores_prediction(self):
        policy = WQLinearPolicy()
        server = make_server(policy)
        short = make_request(0, 5.0, predicted_ms=5.0)
        long = make_request(1, 300.0, predicted_ms=300.0)
        assert policy.initial_degree(short, server) == policy.initial_degree(
            long, server
        )


class TestAP:
    def test_average_profile_weighted_by_groups(self, speedup_book):
        avg = average_profile(speedup_book, [0.9, 0.05, 0.05])
        expected_s6 = 0.9 * 1.16 + 0.05 * 2.05 + 0.05 * 4.1
        assert avg.speedup(6) == pytest.approx(expected_s6)

    def test_average_profile_rejects_weight_mismatch(self, speedup_book):
        with pytest.raises(ConfigError):
            average_profile(speedup_book, [1.0])

    def test_idle_system_uses_generous_degree(self, speedup_book):
        avg = average_profile(speedup_book, [0.9, 0.05, 0.05])
        policy = AdaptiveParallelismPolicy(avg, interference_weight=0.25)
        server = make_server(policy)
        assert policy.initial_degree(make_request(0, 10.0), server) >= 4

    def test_busy_system_collapses_to_sequential(self, speedup_book):
        avg = average_profile(speedup_book, [0.9, 0.05, 0.05])
        policy = AdaptiveParallelismPolicy(avg, interference_weight=0.25)
        server = make_server(SequentialPolicy())
        for i in range(20):
            server.submit(make_request(i, 500.0))
        assert policy.initial_degree(make_request(99, 10.0), server) == 1

    def test_same_degree_for_short_and_long(self, speedup_book):
        avg = average_profile(speedup_book, [0.9, 0.05, 0.05])
        policy = AdaptiveParallelismPolicy(avg, 0.25)
        server = make_server(policy)
        short = make_request(0, 5.0, 5.0)
        long = make_request(1, 300.0, 300.0)
        assert policy.initial_degree(short, server) == policy.initial_degree(
            long, server
        )


class TestRampUp:
    def test_starts_sequential(self):
        policy = RampUpPolicy(10.0)
        server = make_server(policy)
        assert policy.initial_degree(make_request(0, 100.0), server) == 1

    def test_increments_by_one_per_interval(self):
        policy = RampUpPolicy(10.0)
        server = make_server(policy)
        req = make_request(0, 100.0)
        req.degree = 1
        new_degree, next_delay = policy.on_check(req, server)
        assert new_degree == 2
        assert next_delay == 10.0

    def test_stops_at_max_degree(self):
        policy = RampUpPolicy(10.0)
        server = make_server(policy)
        req = make_request(0, 100.0)
        req.degree = 6
        assert policy.on_check(req, server) == (None, None)

    def test_last_increment_schedules_no_more_checks(self):
        policy = RampUpPolicy(10.0)
        server = make_server(policy)
        req = make_request(0, 100.0)
        req.degree = 5
        new_degree, next_delay = policy.on_check(req, server)
        assert new_degree == 6
        assert next_delay is None

    def test_name_includes_interval(self):
        assert RampUpPolicy(5.0).name == "RampUp-5ms"

    def test_end_to_end_long_query_ramps(self):
        policy = RampUpPolicy(10.0)
        server = make_server(policy)
        req = make_request(0, 60.0, profile=LONG_PROFILE)
        server.submit(req)
        server.run_to_completion(1)
        assert req.max_degree_seen > 1
        # Faster than sequential 60 ms despite starting sequential.
        assert req.response_ms < 60.0


class TestTP:
    def test_reads_target_from_table_by_load(self, speedup_book, target_table):
        policy = TPPolicy(target_table, speedup_book)
        server = make_server(policy)
        assert policy.current_target(server) == 40.0  # idle -> first entry

    def test_degree_minimal_to_meet_target(self, speedup_book, target_table):
        policy = TPPolicy(target_table, speedup_book)
        server = make_server(policy)
        req = make_request(0, 100.0, predicted_ms=100.0)
        degree = policy.initial_degree(req, server)
        profile = speedup_book.profile_for(100.0)
        assert profile.execution_time(100.0, degree) <= 40.0
        assert req.target_ms == 40.0

    def test_no_runtime_checks(self, speedup_book, target_table):
        policy = TPPolicy(target_table, speedup_book)
        server = make_server(policy)
        req = make_request(0, 100.0)
        assert policy.first_check_delay(req, server) is None


class TestTPC:
    def test_check_scheduled_at_target(self, speedup_book, target_table):
        policy = TPCPolicy(target_table, speedup_book)
        server = make_server(policy)
        req = make_request(0, 100.0, predicted_ms=20.0)  # mispredicted short
        req.target_ms = 40.0
        req.degree = 1
        assert policy.first_check_delay(req, server) == 40.0

    def test_no_check_when_already_max_degree(self, speedup_book, target_table):
        policy = TPCPolicy(target_table, speedup_book)
        server = make_server(policy)
        req = make_request(0, 400.0, predicted_ms=400.0)
        req.target_ms = 40.0
        req.degree = 6
        assert policy.first_check_delay(req, server) is None

    def test_correction_marks_request(self, speedup_book, target_table):
        policy = TPCPolicy(target_table, speedup_book)
        server = make_server(policy)
        req = make_request(0, 200.0, predicted_ms=10.0)
        req.degree = 1
        new_degree, _ = policy.on_check(req, server)
        assert new_degree is not None and new_degree > 1
        assert req.corrected is True

    def test_end_to_end_correction_rescues_misprediction(
        self, speedup_book, target_table
    ):
        policy = TPCPolicy(target_table, speedup_book)
        server = make_server(policy)
        # Long query mispredicted as short: starts sequential, gets
        # corrected at E = 40 ms, finishes long before 200 ms.
        req = make_request(0, 200.0, predicted_ms=10.0, profile=LONG_PROFILE)
        server.submit(req)
        server.run_to_completion(1)
        assert req.corrected
        assert req.max_degree_seen == 6
        assert req.response_ms < 200.0 * 0.5


class TestRegistry:
    def test_policy_names_cover_table_1(self):
        names = policy_names()
        for expected in ("TPC", "TP", "AP", "Pred", "WQ-Linear", "Sequential"):
            assert expected in names

    def test_table_1_information_matrix(self):
        assert POLICY_INFO["TPC"].uses_prediction
        assert POLICY_INFO["TPC"].uses_system_load
        assert POLICY_INFO["TPC"].uses_parallelism_efficiency
        assert not POLICY_INFO["AP"].uses_prediction
        assert POLICY_INFO["AP"].uses_system_load
        assert POLICY_INFO["Pred"].uses_prediction
        assert not POLICY_INFO["Pred"].uses_system_load
        assert not POLICY_INFO["WQ-Linear"].uses_prediction
        assert POLICY_INFO["WQ-Linear"].uses_system_load

    def test_make_policy_constructs_each(self, speedup_book, target_table):
        weights = [0.9, 0.05, 0.05]
        for name in policy_names():
            policy = make_policy(
                name, speedup_book, weights, target_table=target_table
            )
            assert policy.name.startswith(name.split("-")[0]) or name == "WQ-Linear"

    def test_tpc_requires_target_table(self, speedup_book):
        with pytest.raises(ConfigError):
            make_policy("TPC", speedup_book, [1, 0, 0])

    def test_unknown_policy_rejected(self, speedup_book):
        with pytest.raises(ConfigError):
            make_policy("Nope", speedup_book, [1, 0, 0])

    def test_rampup_interval_override(self, speedup_book):
        policy = make_policy(
            "RampUp", speedup_book, [1, 0, 0], rampup_interval_ms=5.0
        )
        assert policy.interval_ms == 5.0

    def test_pred_degree_override(self, speedup_book):
        policy = make_policy(
            "Pred", speedup_book, [1, 0, 0], pred_fixed_degree=2
        )
        assert policy.fixed_degree == 2

    def test_policy_config_flows_through(self, speedup_book, target_table):
        cfg = PolicyConfig(wq_linear_beta=2.0)
        policy = make_policy("WQ-Linear", speedup_book, [1, 0, 0],
                             policy_config=cfg)
        assert policy.beta == 2.0
