"""BENCH_perf.json assembly and baseline regression gating.

The report schema (version 1):

.. code-block:: json

    {
      "schema": 1,
      "mode": "fast",
      "python": "3.12.3",
      "platform": "linux",
      "pre_pr_reference": {"events_per_s": 42539.0, "scenario": "..."},
      "scenarios": {
        "server_under_load": {
          "size": 6000, "repeats": 3, "events_run": 12472.0,
          "wall_time_s": 0.12, "events_per_s": 105000.0,
          "peak_rss_kb": 91000.0, "all_wall_times_s": [...],
          "speedup_vs_pre_pr": 2.47
        }
      }
    }

Baselines mirror the fidelity gate's: a small JSON checked into
``benchmarks/baselines/perf_baseline.json`` holding each scenario's
throughput per mode, refreshed via ``--update-baselines``.  The CI
perf job fails when any scenario's throughput drops more than the
regression threshold (default 30 %) below its baseline — loose enough
for CI machine jitter, tight enough to catch real hot-path
regressions.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Mapping, Sequence

from ..errors import ConfigError
from .runner import ScenarioRun
from .scenarios import PRE_PR_EVENTS_PER_S, SCENARIOS

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_REGRESSION_THRESHOLD",
    "build_report",
    "write_report",
    "load_baseline",
    "update_baseline",
    "compare_to_baseline",
]

SCHEMA_VERSION = 1

#: Checked-in throughput baselines, next to the gate's.
DEFAULT_BASELINE_PATH = Path("benchmarks/baselines/perf_baseline.json")

#: Maximum tolerated relative throughput drop before CI fails.
DEFAULT_REGRESSION_THRESHOLD = 0.30


def build_report(runs: Sequence[ScenarioRun], fast: bool) -> dict:
    """Assemble the BENCH_perf.json document from scenario runs."""
    mode = "fast" if fast else "full"
    pre_pr = PRE_PR_EVENTS_PER_S[mode]
    scenarios: dict[str, dict] = {}
    for run in runs:
        spec = SCENARIOS[run.name]
        entry: dict = {
            "size": run.size,
            "repeats": run.repeats,
            "peak_rss_kb": run.peak_rss_kb,
            "all_wall_times_s": list(run.all_wall_times_s),
        }
        entry.update(run.metrics)
        if run.name == "server_under_load":
            # Informational: the dev-machine pre-optimisation reference
            # (see scenarios.PRE_PR_EVENTS_PER_S); not a pass/fail bound.
            entry["pre_pr_events_per_s"] = pre_pr
            entry["speedup_vs_pre_pr"] = run.metrics["events_per_s"] / pre_pr
        entry["throughput_key"] = spec.throughput_key
        scenarios[run.name] = entry
    return {
        "schema": SCHEMA_VERSION,
        "mode": mode,
        "python": platform.python_version(),
        "platform": sys.platform,
        "pre_pr_reference": {
            "scenario": "server_under_load",
            "events_per_s": pre_pr,
            "note": "dev-machine measurement before the hot-path "
            "optimisation pass; informational only",
        },
        "scenarios": scenarios,
    }


def write_report(report: Mapping, path: str | Path) -> None:
    """Write the report as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_baseline(path: str | Path = DEFAULT_BASELINE_PATH) -> dict | None:
    """Load the perf baseline, or None when it does not exist yet."""
    p = Path(path)
    if not p.exists():
        return None
    try:
        return json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"corrupt perf baseline {p}: {exc}") from exc


def update_baseline(
    report: Mapping, path: str | Path = DEFAULT_BASELINE_PATH
) -> dict:
    """Refresh the baseline's entries for the report's mode.

    Other modes' entries are preserved, so ``--fast
    --update-baselines`` never clobbers the full-mode baseline.
    """
    path = Path(path)
    baseline = load_baseline(path) or {"schema": SCHEMA_VERSION, "modes": {}}
    mode_entry: dict[str, dict] = {}
    for name, entry in report["scenarios"].items():
        key = entry["throughput_key"]
        mode_entry[name] = {
            "throughput_key": key,
            "throughput": entry[key],
            "size": entry["size"],
        }
    baseline["modes"][report["mode"]] = mode_entry
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return baseline


def compare_to_baseline(
    report: Mapping,
    baseline: Mapping | None,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> list[str]:
    """Return one message per scenario regressing beyond ``threshold``.

    A scenario regresses when its throughput falls more than
    ``threshold`` (relative) below the baseline for the same mode and
    size.  Scenarios absent from the baseline — or a missing baseline
    entirely — are skipped, so adding a scenario never fails CI before
    its baseline lands.  Size mismatches are skipped too: throughput
    at different sizes is not comparable.
    """
    if baseline is None:
        return []
    mode_entry = baseline.get("modes", {}).get(report["mode"])
    if not mode_entry:
        return []
    failures: list[str] = []
    for name, entry in report["scenarios"].items():
        base = mode_entry.get(name)
        if base is None or base.get("size") != entry["size"]:
            continue
        key = base["throughput_key"]
        current = entry.get(key)
        reference = base.get("throughput")
        if current is None or not reference:
            continue
        floor = reference * (1.0 - threshold)
        if current < floor:
            failures.append(
                f"{name}: {key} {current:,.0f} is "
                f"{100.0 * (1.0 - current / reference):.1f}% below "
                f"baseline {reference:,.0f} (floor {floor:,.0f})"
            )
    return failures
