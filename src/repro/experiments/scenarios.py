"""Canonical experiment configurations for every paper figure/table.

Centralises the constants the evaluation section fixes: the QPS grid of
Figures 4-7, the policy sets, the default workload seed, and the
shipped target table (built once offline with Algorithm 1, exactly as
the paper computes its table offline and distributes it to all ISNs).
"""

from __future__ import annotations

from functools import lru_cache

from ..config import PredictorConfig, SearchWorkloadConfig, TargetTableConfig
from ..core.target_table import TargetTable
from ..exec.spec import WorkloadSpec
from ..search.workload import SearchWorkload, build_search_workload

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_QPS_GRID",
    "FIGURE_POLICIES",
    "DEFAULT_SEARCH_TARGET_TABLE",
    "DEFAULT_FINANCE_TARGET_TABLE",
    "DEFAULT_RPS_GRID_FINANCE",
    "default_workload",
    "default_workload_spec",
    "default_target_table",
]

#: Load grid of Figures 10-11 (requests per second, finance server).
DEFAULT_RPS_GRID_FINANCE: tuple[float, ...] = (50, 100, 200, 300, 400, 500, 600)

#: Seed of the canonical workload used across benchmarks.
DEFAULT_SEED = 2016

#: Load grid of Figures 4, 5, 6, 7 (queries per second).
DEFAULT_QPS_GRID: tuple[float, ...] = (50, 150, 300, 450, 600, 750, 900)

#: Policy sets per figure.
FIGURE_POLICIES: dict[str, tuple[str, ...]] = {
    "fig4": ("TPC", "AP", "Pred", "WQ-Linear", "Sequential"),
    "fig5": ("TPC", "AP", "Pred", "WQ-Linear", "Sequential"),
    "fig6": ("TPC", "TP"),
    "table2": ("TPC", "AP", "Pred"),
    "fig8": ("TPC", "AP", "Pred", "Sequential"),
}

#: The shipped target table: (LongT load, target ms) pairs produced by
#: an offline Algorithm 1 search over the canonical workload (see
#: benchmarks/bench_target_table.py, which regenerates it).  Loads are
#: in equivalent-active-long-threads; targets grow with load because a
#: busier server has less spare capacity to promise tight completions.
DEFAULT_SEARCH_TARGET_TABLE = TargetTable(
    [
        (0.0, 25.0),
        (3.0, 30.0),
        (6.0, 40.0),
        (10.0, 60.0),
        (16.0, 65.0),
        (28.0, 70.0),
    ]
)

#: Target table for the finance server, produced by the same offline
#: Algorithm 1 search (multi-start, measure loads 100-600 RPS).  It is
#: nearly flat and *tight*: with a 26 ms target, every long request
#: (~27 ms at the maximum degree 4) is maximally parallelized and every
#: short request runs sequentially — this workload has enough headroom
#: that backing off parallelism never pays within the measured range.
DEFAULT_FINANCE_TARGET_TABLE = TargetTable(
    [
        (0.0, 26.0),
        (4.0, 26.0),
        (8.0, 26.0),
        (16.0, 26.0),
        (28.0, 30.0),
    ]
)


@lru_cache(maxsize=4)
def default_workload(
    seed: int = DEFAULT_SEED, pool_size: int = 12_000
) -> SearchWorkload:
    """The canonical calibrated search workload.

    The ``lru_cache`` is **per process**: exec-pool workers never see
    the parent's cached instance and instead rebuild the workload from
    :func:`default_workload_spec` (or the provenance carried by the
    built workload) on first use.  Each of ``N`` worker processes
    therefore holds its own copy of the inverted index and query pools
    — budget roughly one workload's memory footprint per worker.
    """
    return build_search_workload(
        seed=seed,
        config=SearchWorkloadConfig(),
        predictor_config=PredictorConfig(),
        pool_size=pool_size,
    )


def default_workload_spec(
    seed: int = DEFAULT_SEED, pool_size: int = 12_000
) -> WorkloadSpec:
    """Declarative recipe for :func:`default_workload`.

    Hand this to :mod:`repro.exec` instead of a built workload when
    declaring sweeps directly; workers rebuild (and memoise) the
    workload locally from the recipe.
    """
    return WorkloadSpec.search(
        seed=seed,
        config=SearchWorkloadConfig(),
        predictor_config=PredictorConfig(),
        pool_size=pool_size,
    )


def default_target_table() -> TargetTable:
    """The shipped offline-built target table."""
    return DEFAULT_SEARCH_TARGET_TABLE


def default_table_config() -> TargetTableConfig:
    """Algorithm 1 inputs used to (re)build the shipped table."""
    return TargetTableConfig()
