"""Policy-comparison helpers over latency sweeps.

Turn ``{policy: [latency per load]}`` series into the quantitative
claims of the paper's evaluation: relative reductions, where a
policy's advantage peaks, where two policies cross over, and how often
one dominates another across the load range.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import SimulationError

__all__ = [
    "relative_reduction",
    "max_relative_reduction",
    "crossover_load",
    "dominance_fraction",
]


def relative_reduction(baseline: float, improved: float) -> float:
    """Fractional reduction of ``improved`` versus ``baseline``.

    ``relative_reduction(100, 60) == 0.4`` — "reduces latency by 40 %".
    Negative when ``improved`` is actually worse.
    """
    if baseline <= 0:
        raise SimulationError("baseline latency must be positive")
    return 1.0 - improved / baseline


def max_relative_reduction(
    baseline: Sequence[float], improved: Sequence[float]
) -> tuple[float, int]:
    """Largest per-load reduction and the load index where it occurs.

    This is the paper's "reduces tail latency by up to X %" statement.
    """
    if len(baseline) != len(improved) or not baseline:
        raise SimulationError("series must be non-empty and aligned")
    reductions = [
        relative_reduction(b, i) for b, i in zip(baseline, improved)
    ]
    best = max(range(len(reductions)), key=reductions.__getitem__)
    return reductions[best], best


def crossover_load(
    loads: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> float | None:
    """First load at which series A stops beating series B.

    Returns the interpolated load where ``a - b`` changes sign, or
    None when one series dominates across the whole range.  Used for
    statements like "RampUp-5ms wins below ~X QPS".
    """
    if not (len(loads) == len(series_a) == len(series_b)) or len(loads) < 2:
        raise SimulationError("need aligned series of length >= 2")
    diffs = [a - b for a, b in zip(series_a, series_b)]
    for i in range(1, len(diffs)):
        if diffs[i - 1] == 0:
            return float(loads[i - 1])
        if diffs[i - 1] * diffs[i] < 0:
            # Linear interpolation of the zero crossing.
            fraction = abs(diffs[i - 1]) / (abs(diffs[i - 1]) + abs(diffs[i]))
            return float(
                loads[i - 1] + fraction * (loads[i] - loads[i - 1])
            )
    return None


def dominance_fraction(
    series_a: Sequence[float],
    series_b: Sequence[float],
    tolerance: float = 0.0,
) -> float:
    """Fraction of loads where A is at least as good as B.

    ``tolerance`` allows B to exceed A by a relative slack before the
    point counts against A (absorbs percentile sampling noise).
    """
    if len(series_a) != len(series_b) or not series_a:
        raise SimulationError("series must be non-empty and aligned")
    wins = sum(
        1
        for a, b in zip(series_a, series_b)
        if a <= b * (1.0 + tolerance)
    )
    return wins / len(series_a)
