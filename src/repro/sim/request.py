"""Request model and lifecycle record.

A :class:`Request` carries the workload-side truth (sequential service
demand, true speedup profile), the scheduler-side inputs (predicted
execution time), and the runtime state the server mutates while the
request queues, executes, and completes.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.speedup import SpeedupProfile

__all__ = ["Request", "RequestState"]


class RequestState(enum.Enum):
    """Lifecycle states of a request inside one server."""

    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    #: Withdrawn mid-flight (tied-request cancellation, replica kill);
    #: terminal like COMPLETED but never recorded as a completion.
    CANCELLED = "cancelled"


class Request:
    """One request (query) flowing through a simulated server.

    Parameters
    ----------
    rid:
        Unique id within one experiment.
    demand_ms:
        True sequential service demand in milliseconds.
    predicted_ms:
        Execution time predicted before the request runs (the paper's
        ``L``); equals ``demand_ms`` under a perfect oracle.
    speedup:
        The request's *true* speedup profile — how fast it actually runs
        at each parallelism degree.  Policies do not see this; they look
        up a group-average profile via the predicted time.
    """

    __slots__ = (
        "rid",
        "demand_ms",
        "predicted_ms",
        "speedup",
        "state",
        "arrival_ms",
        "start_ms",
        "finish_ms",
        "degree",
        "initial_degree",
        "max_degree_seen",
        "remaining_work_ms",
        "corrected",
        "target_ms",
        "degree_changes",
        "check_handle",
        "service_speedup",
        "cancel_cause",
    )

    def __init__(
        self,
        rid: int,
        demand_ms: float,
        predicted_ms: float,
        speedup: "SpeedupProfile",
    ) -> None:
        if demand_ms <= 0:
            raise SimulationError(f"demand must be positive, got {demand_ms}")
        if predicted_ms < 0:
            raise SimulationError(f"prediction must be >= 0, got {predicted_ms}")
        self.rid = rid
        self.demand_ms = float(demand_ms)
        self.predicted_ms = float(predicted_ms)
        self.speedup = speedup
        self.state = RequestState.CREATED
        self.arrival_ms: float = float("nan")
        self.start_ms: float = float("nan")
        self.finish_ms: float = float("nan")
        self.degree = 0
        self.initial_degree = 0
        self.max_degree_seen = 0
        self.remaining_work_ms = float(demand_ms)
        self.corrected = False
        #: Target completion time E assigned at dispatch (TPC-family only).
        self.target_ms: float | None = None
        #: Count of mid-flight degree increases (for overhead accounting).
        self.degree_changes = 0
        #: Pending runtime-check event handle, cancelled on completion.
        self.check_handle = None
        #: Effective speedup ``S(degree)`` cached by the server's rate
        #: classes while the request runs (hot-path: avoids a profile
        #: lookup per event).
        self.service_speedup = 1.0
        #: Why the request was withdrawn (``Server.cancel_request``'s
        #: ``cause``); None while live, completed, or when no cause was
        #: given.
        self.cancel_cause: str | None = None

    @property
    def response_ms(self) -> float:
        """Response time = queueing delay + execution time."""
        if self.state is not RequestState.COMPLETED:
            raise SimulationError(f"request {self.rid} has not completed")
        return self.finish_ms - self.arrival_ms

    @property
    def queueing_ms(self) -> float:
        """Time spent in the waiting queue before execution started."""
        if self.state is RequestState.CREATED or self.state is RequestState.QUEUED:
            raise SimulationError(f"request {self.rid} has not started")
        return self.start_ms - self.arrival_ms

    @property
    def execution_ms(self) -> float:
        """Wall-clock execution time (start of execution to completion)."""
        if self.state is not RequestState.COMPLETED:
            raise SimulationError(f"request {self.rid} has not completed")
        return self.finish_ms - self.start_ms

    def running_for(self, now_ms: float) -> float:
        """Milliseconds since execution began (valid while RUNNING)."""
        if self.state is not RequestState.RUNNING:
            raise SimulationError(f"request {self.rid} is not running")
        return now_ms - self.start_ms

    def __repr__(self) -> str:
        return (
            f"Request(rid={self.rid}, demand={self.demand_ms:.2f}ms, "
            f"pred={self.predicted_ms:.2f}ms, state={self.state.value}, "
            f"degree={self.degree})"
        )
