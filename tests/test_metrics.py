"""Tests for latency metrics and percentile utilities."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.metrics import (
    LatencyRecorder,
    StreamingLatencyRecorder,
    StreamingQuantile,
    cdf_points,
    degree_distribution,
    percentile,
    weighted_tail_latency,
)
from repro.sim.request import RequestState

from conftest import make_request


def completed_request(rid, demand, pred=None, degree=1, max_degree=None,
                      corrected=False, arrival=0.0, start=0.0, finish=None):
    req = make_request(rid, demand, pred)
    req.state = RequestState.COMPLETED
    req.arrival_ms = arrival
    req.start_ms = start
    req.finish_ms = finish if finish is not None else start + demand
    req.initial_degree = degree
    req.max_degree_seen = max_degree if max_degree is not None else degree
    req.corrected = corrected
    return req


class TestPercentile:
    def test_median_of_known_sample(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_p99_of_uniform_grid(self):
        values = list(range(1, 1001))
        assert percentile(values, 99) == pytest.approx(990.01)

    def test_empty_sample_rejected(self):
        with pytest.raises(SimulationError):
            percentile([], 99)

    @pytest.mark.parametrize("p", [0, 100, -5, 101])
    def test_out_of_range_percentile_rejected(self, p):
        with pytest.raises(SimulationError):
            percentile([1.0], p)


class TestCdf:
    def test_cdf_is_sorted_and_reaches_one(self):
        xs, fs = cdf_points([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(xs, [1.0, 2.0, 3.0])
        assert fs[-1] == 1.0
        assert all(b >= a for a, b in zip(fs, fs[1:]))

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            cdf_points([])


class TestWeightedTail:
    def test_weighted_sum_of_percentiles(self):
        s1 = [10.0] * 100
        s2 = [20.0] * 100
        total = weighted_tail_latency([s1, s2], [1.0, 2.0], 99)
        assert total == pytest.approx(10.0 + 40.0)

    def test_weight_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            weighted_tail_latency([[1.0]], [1.0, 2.0], 99)


class TestLatencyRecorder:
    def test_record_and_summary(self):
        rec = LatencyRecorder()
        for i, demand in enumerate([10.0, 20.0, 30.0]):
            rec.record(completed_request(i, demand))
        summary = rec.summary()
        assert summary.count == 3
        assert summary.mean_ms == pytest.approx(20.0)
        assert summary.max_ms == 30.0

    def test_queueing_separated_from_execution(self):
        rec = LatencyRecorder()
        rec.record(completed_request(0, 10.0, arrival=0.0, start=5.0, finish=15.0))
        assert rec.queueing_ms[0] == pytest.approx(5.0)
        assert rec.executions_ms[0] == pytest.approx(10.0)
        assert rec.responses_ms[0] == pytest.approx(15.0)

    def test_correction_rate(self):
        rec = LatencyRecorder()
        rec.record(completed_request(0, 10.0, corrected=True))
        rec.record(completed_request(1, 10.0, corrected=False))
        assert rec.correction_rate() == pytest.approx(0.5)

    def test_correction_rate_empty_is_zero(self):
        assert LatencyRecorder().correction_rate() == 0.0

    def test_summary_empty_rejected(self):
        with pytest.raises(SimulationError):
            LatencyRecorder().summary()

    def test_summary_as_row_keys(self):
        rec = LatencyRecorder()
        rec.record(completed_request(0, 10.0))
        row = rec.summary().as_row()
        assert set(row) >= {"count", "mean_ms", "p99_ms", "p999_ms"}


class TestDegreeDistribution:
    def test_percentages_split_by_true_demand_class(self):
        rec = LatencyRecorder()
        # Two short at degree 1, one short at 2; one long at 6.
        rec.record(completed_request(0, 10.0, degree=1))
        rec.record(completed_request(1, 12.0, degree=1))
        rec.record(completed_request(2, 14.0, degree=2))
        rec.record(completed_request(3, 150.0, degree=6))
        dist = degree_distribution(rec, long_threshold_ms=80.0, max_degree=6)
        assert dist["short"][0] == pytest.approx(100 * 2 / 3)
        assert dist["short"][1] == pytest.approx(100 / 3)
        assert dist["long"][5] == pytest.approx(100.0)

    def test_rows_sum_to_100(self):
        rec = LatencyRecorder()
        for i in range(10):
            rec.record(completed_request(i, 10.0 + i * 20, degree=(i % 6) + 1))
        dist = degree_distribution(rec, 80.0, 6)
        assert sum(dist["short"]) == pytest.approx(100.0)
        assert sum(dist["long"]) == pytest.approx(100.0)

    def test_max_degree_mode_captures_correction(self):
        rec = LatencyRecorder()
        rec.record(completed_request(0, 150.0, degree=1, max_degree=6))
        by_max = degree_distribution(rec, 80.0, 6, use_max_degree=True)
        by_initial = degree_distribution(rec, 80.0, 6, use_max_degree=False)
        assert by_max["long"][5] == 100.0
        assert by_initial["long"][0] == 100.0

    def test_empty_class_yields_zero_row(self):
        rec = LatencyRecorder()
        rec.record(completed_request(0, 10.0, degree=1))
        dist = degree_distribution(rec, 80.0, 6)
        assert sum(dist["long"]) == 0.0


class TestStreamingQuantile:
    def test_rejects_invalid_parameters(self):
        with pytest.raises(SimulationError):
            StreamingQuantile(0.0)
        with pytest.raises(SimulationError):
            StreamingQuantile(1.0)
        with pytest.raises(SimulationError):
            StreamingQuantile(0.5, exact_threshold=2)
        with pytest.raises(SimulationError):
            StreamingQuantile(0.5).value()

    def test_small_samples_are_exact(self):
        rng = np.random.default_rng(21)
        data = rng.lognormal(1.3, 1.3, size=200)
        est = StreamingQuantile(0.99, exact_threshold=500)
        for x in data:
            est.add(float(x))
        assert est.value() == float(np.percentile(data, 99))

    @pytest.mark.parametrize("p,tol", [(50, 0.02), (95, 0.02), (99, 0.03), (99.9, 0.10)])
    def test_error_bounds_on_calibrated_demand_distribution(self, p, tol):
        # The paper's demand shape: lognormal with a heavy tail (the
        # calibrated sigma from the Section 2 workload statistics).
        rng = np.random.default_rng(7)
        data = rng.lognormal(1.3, 1.3, size=60_000)
        est = StreamingQuantile(p / 100.0)
        for x in data:
            est.add(float(x))
        exact = float(np.percentile(data, p))
        assert abs(est.value() - exact) / exact < tol

    def test_threshold_crossing_initialises_from_buffer(self):
        rng = np.random.default_rng(3)
        data = rng.exponential(10.0, size=2_000)
        est = StreamingQuantile(0.95, exact_threshold=100)
        for x in data:
            est.add(float(x))
        exact = float(np.percentile(data, 95))
        assert abs(est.value() - exact) / exact < 0.05


class TestStreamingLatencyRecorder:
    def _filled(self, n, exact_threshold=500):
        rng = np.random.default_rng(11)
        latencies = rng.lognormal(1.3, 1.0, size=n)
        rec = StreamingLatencyRecorder(exact_threshold=exact_threshold)
        full = LatencyRecorder()
        for i, lat in enumerate(latencies):
            req = completed_request(i, float(lat), corrected=(i % 10 == 0))
            rec.record(req)
            full.record(req)
        return rec, full

    def test_len_and_correction_rate(self):
        rec, full = self._filled(1_000)
        assert len(rec) == len(full) == 1_000
        assert rec.correction_rate() == full.correction_rate()

    def test_summary_tracks_full_recorder(self):
        rec, full = self._filled(20_000)
        s, f = rec.summary(), full.summary()
        assert s.count == f.count
        assert s.mean_ms == pytest.approx(f.mean_ms, rel=1e-9)
        assert s.max_ms == f.max_ms
        for got, want, tol in [
            (s.p50_ms, f.p50_ms, 0.03),
            (s.p95_ms, f.p95_ms, 0.03),
            (s.p99_ms, f.p99_ms, 0.05),
            (s.p999_ms, f.p999_ms, 0.15),
        ]:
            assert abs(got - want) / want < tol

    def test_exact_below_threshold(self):
        rec, full = self._filled(300, exact_threshold=500)
        assert rec.percentile(99) == pytest.approx(full.percentile(99), rel=1e-12)

    def test_full_sample_surfaces_unavailable(self):
        rec, _ = self._filled(10)
        with pytest.raises(SimulationError):
            rec.responses
        with pytest.raises(SimulationError):
            rec.percentile(42)

    def test_empty_recorder_raises(self):
        rec = StreamingLatencyRecorder()
        assert len(rec) == 0
        assert rec.correction_rate() == 0.0
        with pytest.raises(SimulationError):
            rec.summary()

    def test_drop_in_for_server_runs(self):
        from repro.config import ServerConfig
        from repro.core.speedup import SpeedupBook, SpeedupProfile
        from repro.policies.registry import make_policy
        from repro.rng import RngFactory
        from repro.sim.client import OpenLoopClient
        from repro.sim.engine import Engine
        from repro.sim.server import Server

        book = SpeedupBook(
            [
                SpeedupProfile([1.0, 1.05, 1.08, 1.11, 1.14, 1.16]),
                SpeedupProfile([1.0, 1.4, 1.6, 1.8, 1.95, 2.05]),
                SpeedupProfile([1.0, 1.8, 2.5, 3.2, 3.7, 4.1]),
            ]
        )
        rngs = RngFactory(5)
        demands = rngs.get("trace").lognormal(1.3, 1.3, size=800)
        reqs = [
            make_request(
                i, float(d), profile=book.profiles[book.group_of(float(d))]
            )
            for i, d in enumerate(demands)
        ]
        policy = make_policy(
            "AP", speedup_book=book, group_weights=[0.6, 0.3, 0.1]
        )

        def run(recorder):
            engine = Engine()
            server = Server(ServerConfig(), policy, engine=engine,
                            recorder=recorder)
            client = OpenLoopClient([server])
            import copy
            client.schedule_trace(engine, copy.deepcopy(reqs), 500.0,
                                  RngFactory(5).get("arrivals"))
            server.run_to_completion(len(reqs))
            return recorder

        stream = run(StreamingLatencyRecorder())
        full = run(LatencyRecorder())
        assert len(stream) == len(full)
        assert stream.summary().mean_ms == pytest.approx(
            full.summary().mean_ms, rel=1e-9)
        assert stream.percentile(99) == pytest.approx(
            full.percentile(99), rel=0.06)
