"""Latency recording, percentiles and tail-latency summaries.

The paper reports the 99th- and 99.9th-percentile of query response
time (Section 4.1).  :class:`LatencyRecorder` collects per-request
outcomes from a server run; the module-level helpers compute
percentiles, CDFs and the weighted tail sum used by MeasureTail in
Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .request import Request

__all__ = [
    "LatencyRecorder",
    "LatencySummary",
    "DistributionStats",
    "ResilienceStats",
    "percentile",
    "cdf_points",
    "weighted_tail_latency",
    "degree_distribution",
    "distribution_stats",
]


def percentile(latencies_ms: Sequence[float] | np.ndarray, p: float) -> float:
    """The ``p``-th percentile (0 < p < 100) of a latency sample."""
    arr = np.asarray(latencies_ms, dtype=np.float64)
    if arr.size == 0:
        raise SimulationError("cannot take a percentile of an empty sample")
    if not 0 < p < 100:
        raise SimulationError(f"percentile must be in (0, 100), got {p}")
    return float(np.percentile(arr, p))


def cdf_points(
    latencies_ms: Sequence[float] | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as ``(sorted_latencies, cumulative_fraction)``."""
    arr = np.sort(np.asarray(latencies_ms, dtype=np.float64))
    if arr.size == 0:
        raise SimulationError("cannot build a CDF of an empty sample")
    fractions = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, fractions


def weighted_tail_latency(
    samples: Sequence[Sequence[float] | np.ndarray],
    weights: Sequence[float],
    p: float,
) -> float:
    """Weighted sum of the ``p``-th percentile across several runs.

    This is the objective MeasureTail returns in Algorithm 1: a
    predefined experiment covers all production load ranges and the
    builder minimises the weighted sum of their tail latencies.
    """
    if len(samples) != len(weights):
        raise SimulationError("one weight per sample required")
    return float(
        sum(w * percentile(s, p) for s, w in zip(samples, weights))
    )


@dataclass(frozen=True)
class LatencySummary:
    """Headline statistics of one run."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    p999_ms: float
    max_ms: float

    def as_row(self) -> dict[str, float]:
        """Summary as a flat dict (handy for tabular reports)."""
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "max_ms": self.max_ms,
        }


@dataclass(frozen=True)
class DistributionStats:
    """Shape statistics of a millisecond sample in the paper's terms.

    Section 2 characterises the production demand distribution by its
    mean, median, tail percentile and the fractions of short (<15 ms)
    and long (>80 ms) queries; the fidelity gate re-derives the same
    statistics from simulated samples and checks them against bands.
    """

    count: int
    mean_ms: float
    median_ms: float
    p99_ms: float
    short_fraction: float
    long_fraction: float

    @property
    def p99_over_mean(self) -> float:
        """Tail heaviness: how far the 99th percentile sits above the mean."""
        return self.p99_ms / self.mean_ms

    @property
    def p99_over_median(self) -> float:
        """Tail heaviness relative to the median (paper: ~56x)."""
        return self.p99_ms / self.median_ms

    def as_row(self) -> dict[str, float]:
        """Flat dict for tabular reports and JSON export."""
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "median_ms": self.median_ms,
            "p99_ms": self.p99_ms,
            "short_fraction": self.short_fraction,
            "long_fraction": self.long_fraction,
            "p99/mean": self.p99_over_mean,
            "p99/median": self.p99_over_median,
        }


def distribution_stats(
    values_ms: Sequence[float] | np.ndarray,
    short_threshold_ms: float = 15.0,
    long_threshold_ms: float = 80.0,
) -> DistributionStats:
    """Compute :class:`DistributionStats` for a millisecond sample."""
    arr = np.asarray(values_ms, dtype=np.float64)
    if arr.size == 0:
        raise SimulationError("cannot summarise an empty sample")
    return DistributionStats(
        count=int(arr.size),
        mean_ms=float(arr.mean()),
        median_ms=float(np.median(arr)),
        p99_ms=percentile(arr, 99),
        short_fraction=float((arr < short_threshold_ms).mean()),
        long_fraction=float((arr > long_threshold_ms).mean()),
    )


@dataclass(frozen=True)
class ResilienceStats:
    """Mitigation bookkeeping of one resilient cluster run.

    Quantifies the cost/benefit trade-off of request hedging and
    partial-wait aggregation (cf. Poloczek & Ciucu; Wang, Joshi &
    Wornell): how often the hedge timer fired, how many hedges were
    issued and won, and how much replica work was thrown away by
    tied-request cancellation, blackout kills, and redundant
    completions.
    """

    #: Logical queries aggregated.
    queries: int
    num_isns: int
    #: Hedge replicas issued across all queries.
    hedges_issued: int
    #: Queries that issued at least one hedge.
    hedged_queries: int
    #: Hedges that completed before the primary replica they backed up.
    hedge_wins: int
    #: Hedge timers that fired on a still-incomplete query.
    timeout_fires: int
    #: Replicas withdrawn mid-flight (ties and blackout kills).
    cancelled_replicas: int
    #: Replicas never issued because the target ISN was blacked out.
    dropped_replicas: int
    #: Completions of a shard whose result was already delivered by the
    #: other member of a hedge pair (tie cancellation disabled).
    redundant_completions: int
    #: Replica completions arriving after the aggregator had already
    #: answered the query (wait-for-k < n only).
    late_completions: int
    #: Work (ms of sequential demand) executed by cancelled or
    #: redundant replicas — pure overhead of the mitigation.
    wasted_work_ms: float
    #: Work executed by replicas whose result reached the aggregator.
    useful_work_ms: float
    #: Mean over queries of (replica completions seen when the
    #: aggregator answered) / num_isns; 1.0 under wait-for-all.
    k_coverage_mean: float

    @property
    def hedge_rate(self) -> float:
        """Fraction of queries that issued at least one hedge."""
        return self.hedged_queries / self.queries if self.queries else 0.0

    @property
    def timeout_rate(self) -> float:
        """Fraction of queries whose hedge timer fired."""
        return self.timeout_fires / self.queries if self.queries else 0.0

    @property
    def wasted_work_fraction(self) -> float:
        """Wasted work as a fraction of all work executed."""
        total = self.wasted_work_ms + self.useful_work_ms
        return self.wasted_work_ms / total if total > 0 else 0.0

    def as_row(self) -> dict[str, float]:
        """Flat dict for tabular reports and JSON export."""
        return {
            "queries": self.queries,
            "num_isns": self.num_isns,
            "hedges_issued": self.hedges_issued,
            "hedged_queries": self.hedged_queries,
            "hedge_wins": self.hedge_wins,
            "timeout_fires": self.timeout_fires,
            "cancelled_replicas": self.cancelled_replicas,
            "dropped_replicas": self.dropped_replicas,
            "redundant_completions": self.redundant_completions,
            "late_completions": self.late_completions,
            "wasted_work_ms": self.wasted_work_ms,
            "useful_work_ms": self.useful_work_ms,
            "hedge_rate": self.hedge_rate,
            "timeout_rate": self.timeout_rate,
            "wasted_work_fraction": self.wasted_work_fraction,
            "k_coverage_mean": self.k_coverage_mean,
        }


@dataclass
class LatencyRecorder:
    """Accumulates completed-request outcomes from one server run.

    Stores response/queueing/execution latency, demand, prediction,
    initial and maximum parallelism degree and whether dynamic
    correction fired — everything the paper's tables and figures need.
    """

    responses_ms: list[float] = field(default_factory=list)
    queueing_ms: list[float] = field(default_factory=list)
    executions_ms: list[float] = field(default_factory=list)
    demands_ms: list[float] = field(default_factory=list)
    predictions_ms: list[float] = field(default_factory=list)
    initial_degrees: list[int] = field(default_factory=list)
    max_degrees: list[int] = field(default_factory=list)
    corrected: list[bool] = field(default_factory=list)

    def record(self, request: "Request") -> None:
        """Record one completed request."""
        self.responses_ms.append(request.response_ms)
        self.queueing_ms.append(request.queueing_ms)
        self.executions_ms.append(request.execution_ms)
        self.demands_ms.append(request.demand_ms)
        self.predictions_ms.append(request.predicted_ms)
        self.initial_degrees.append(request.initial_degree)
        self.max_degrees.append(request.max_degree_seen)
        self.corrected.append(request.corrected)

    def __len__(self) -> int:
        return len(self.responses_ms)

    @property
    def responses(self) -> np.ndarray:
        """Response times as a numpy array."""
        return np.asarray(self.responses_ms, dtype=np.float64)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of response time."""
        return percentile(self.responses_ms, p)

    def correction_rate(self) -> float:
        """Fraction of requests whose degree was raised by correction."""
        if not self.corrected:
            return 0.0
        return sum(self.corrected) / len(self.corrected)

    def summary(self) -> LatencySummary:
        """Headline latency statistics of the run."""
        arr = self.responses
        if arr.size == 0:
            raise SimulationError("no requests recorded")
        return LatencySummary(
            count=int(arr.size),
            mean_ms=float(arr.mean()),
            p50_ms=percentile(arr, 50),
            p95_ms=percentile(arr, 95),
            p99_ms=percentile(arr, 99),
            p999_ms=percentile(arr, 99.9),
            max_ms=float(arr.max()),
        )


def degree_distribution(
    recorder: LatencyRecorder,
    long_threshold_ms: float,
    max_degree: int,
    use_max_degree: bool = True,
) -> dict[str, list[float]]:
    """Parallelism-degree distribution by true demand class (Table 2).

    Returns ``{"short": [...], "long": [...]}`` where each list holds
    the percentage of that class executed at degree 1..max_degree.
    ``use_max_degree`` counts the highest degree a request attained
    (capturing dynamic correction); set False for the initial degree.
    """
    degrees = recorder.max_degrees if use_max_degree else recorder.initial_degrees
    counts = {"short": [0] * max_degree, "long": [0] * max_degree}
    for demand, degree in zip(recorder.demands_ms, degrees):
        key = "long" if demand > long_threshold_ms else "short"
        counts[key][min(degree, max_degree) - 1] += 1
    result: dict[str, list[float]] = {}
    for key, row in counts.items():
        total = sum(row)
        result[key] = [100.0 * c / total if total else 0.0 for c in row]
    return result
