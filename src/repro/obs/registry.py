"""Named counters, gauges and histograms with hierarchical scopes.

A :class:`MetricRegistry` is the flat namespace one observed run
writes into: counters for monotone totals, gauges for instantaneous
levels (with a high-water mark), histograms for millisecond samples.
Scopes (:meth:`MetricRegistry.scope`) prefix metric names with a dotted
path — ``isn3.queue_wait_ms`` — so a cluster run keeps per-server and
cluster-wide metrics in one registry and one JSON dump.

Histograms default to *exact* mode (the full sample is kept and
quantiles are computed on demand), which keeps the observe path to a
list append — cheap enough for the <15 % tracing-overhead budget.
``streaming=True`` switches a histogram to P² estimators
(:class:`repro.sim.metrics.StreamingQuantile`) for O(1) memory on long
soak runs, at a higher per-observation cost.
"""

from __future__ import annotations

import json
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..errors import ConfigError, SimulationError
from ..sim.metrics import StreamingQuantile

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry", "MetricScope"]

#: Quantiles a histogram reports by default (matches LatencySummary).
DEFAULT_QUANTILES = (50.0, 95.0, 99.0, 99.9)


class Counter:
    """A monotone event count.

    ``value`` is public on purpose: hot observers pre-bind the counter
    and bump ``counter.value += 1`` directly, skipping a method call.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n

    def snapshot(self) -> dict[str, float]:
        return {self.name: float(self.value)}

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """An instantaneous level plus its high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        """Record the current level (tracks the maximum seen)."""
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def snapshot(self) -> dict[str, float]:
        return {
            self.name: float(self.value),
            f"{self.name}.max": float(self.max_value),
        }

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value}, max={self.max_value})"


class Histogram:
    """A millisecond-sample distribution: count/sum/min/max + quantiles.

    Exact mode (default) appends observations to a list and derives
    every statistic on demand — ``observe`` *is* the bound
    ``list.append``, so the hot path pays exactly one call per sample.
    Streaming mode keeps running aggregates plus one
    :class:`StreamingQuantile` per tracked percentile instead, so
    memory stays O(1) regardless of run length.
    """

    __slots__ = (
        "name",
        "quantiles",
        "observe",
        "_sample",
        "_estimators",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(
        self,
        name: str,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        streaming: bool = False,
    ) -> None:
        if not quantiles:
            raise ConfigError(f"histogram {name!r} needs at least one quantile")
        self.name = name
        self.quantiles = tuple(float(q) for q in quantiles)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        if streaming:
            self._sample: list[float] | None = None
            self._estimators: dict[float, StreamingQuantile] | None = {
                q: StreamingQuantile(q / 100.0) for q in self.quantiles
            }
            self.observe = self._observe_streaming
        else:
            self._sample = []
            self._estimators = None
            #: Exact mode: one list append per observation, nothing else.
            self.observe = self._sample.append

    def _observe_streaming(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        assert self._estimators is not None
        for estimator in self._estimators.values():
            estimator.add(value)

    @property
    def count(self) -> int:
        """Number of observations."""
        if self._sample is not None:
            return len(self._sample)
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        if self._sample is not None:
            return float(sum(self._sample))
        return self._sum

    @property
    def min(self) -> float:
        """Smallest observation (``inf`` while empty)."""
        if self._sample is not None:
            return min(self._sample) if self._sample else float("inf")
        return self._min

    @property
    def max(self) -> float:
        """Largest observation (``-inf`` while empty)."""
        if self._sample is not None:
            return max(self._sample) if self._sample else float("-inf")
        return self._max

    @property
    def mean(self) -> float:
        """Mean of all observations."""
        count = self.count
        if count == 0:
            raise SimulationError(f"histogram {self.name!r} is empty")
        return self.sum / count

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (0 < q < 100) of the sample."""
        if self.count == 0:
            raise SimulationError(f"histogram {self.name!r} is empty")
        if self._sample is not None:
            return float(
                np.percentile(np.asarray(self._sample, dtype=np.float64), q)
            )
        assert self._estimators is not None
        estimator = self._estimators.get(float(q))
        if estimator is None:
            raise SimulationError(
                f"histogram {self.name!r} does not track q={q}; "
                f"tracked: {self.quantiles}"
            )
        return estimator.value()

    def snapshot(self) -> dict[str, float]:
        out = {
            f"{self.name}.count": float(self.count),
        }
        if self.count:
            out[f"{self.name}.mean"] = self.mean
            out[f"{self.name}.min"] = self.min
            out[f"{self.name}.max"] = self.max
            for q in self.quantiles:
                out[f"{self.name}.p{q:g}"] = self.quantile(q)
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self.count})"


class MetricRegistry:
    """Get-or-create registry of named metrics.

    Re-requesting a name returns the existing instance; requesting it
    as a different metric type raises :class:`ConfigError` (one name,
    one meaning).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ConfigError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self,
        name: str,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        streaming: bool = False,
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(
            name, lambda: Histogram(name, quantiles, streaming), Histogram
        )

    def scope(self, prefix: str) -> "MetricScope":
        """A view creating metrics under ``prefix.`` (nested scopes ok)."""
        return MetricScope(self, prefix)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        return iter(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def snapshot(self) -> dict[str, float]:
        """All metrics flattened to ``{dotted_name: value}``."""
        out: dict[str, float] = {}
        for name in sorted(self._metrics):
            out.update(self._metrics[name].snapshot())
        return out

    def to_json(self, extra: Mapping[str, object] | None = None) -> str:
        """The snapshot as a sorted, indented JSON document."""
        doc: dict[str, object] = {"metrics": self.snapshot()}
        if extra:
            doc.update(extra)
        return json.dumps(doc, indent=2, sort_keys=True)


class MetricScope:
    """A dotted-prefix view over a :class:`MetricRegistry`."""

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: MetricRegistry, prefix: str) -> None:
        if not prefix:
            raise ConfigError("scope prefix must be non-empty")
        self._registry = registry
        self.prefix = prefix

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._qualify(name))

    def histogram(
        self,
        name: str,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        streaming: bool = False,
    ) -> Histogram:
        return self._registry.histogram(
            self._qualify(name), quantiles, streaming
        )

    def scope(self, prefix: str) -> "MetricScope":
        return MetricScope(self._registry, self._qualify(prefix))
