"""Tests for CSV figure export."""

import pytest

from repro.errors import ConfigError
from repro.experiments.export import series_to_csv, write_series_csv


class TestCsvExport:
    def test_round_trippable_csv(self):
        text = series_to_csv(
            "qps", [150, 450], {"TPC": [55.6, 73.0], "Pred": [92.7, 99.3]}
        )
        lines = text.strip().splitlines()
        assert lines[0] == "qps,TPC,Pred"
        assert lines[1] == "150,55.6,92.7"
        assert lines[2] == "450,73.0,99.3"

    def test_write_creates_parents(self, tmp_path):
        out = write_series_csv(
            tmp_path / "figures" / "fig4.csv",
            "qps", [100], {"TPC": [50.0]},
        )
        assert out.exists()
        assert "TPC" in out.read_text()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            series_to_csv("x", [1, 2], {"a": [1.0]})

    def test_empty_series_allowed(self):
        text = series_to_csv("x", [], {})
        assert text.strip() == "x"
