"""Load-drift experiment: TPC under a time-varying arrival rate.

Section 3.3 motivates the target table with "instantaneous load on a
server varies over time".  These tests drive TPC with a diurnal
(non-homogeneous Poisson) arrival process and check that the machinery
behaves sensibly when the load is never stationary.
"""

import numpy as np
import pytest

from repro.config import ServerConfig
from repro.core.target_table import TargetTable
from repro.policies import TPCPolicy
from repro.rng import RngFactory
from repro.sim.arrivals import diurnal_profile, nonhomogeneous_arrival_times
from repro.sim.engine import Engine
from repro.sim.server import Server

ADAPTIVE = TargetTable([(0, 25), (3, 30), (6, 40), (10, 60), (16, 65), (28, 70)])
LOOSE = TargetTable.constant(70.0)


def run_drift(workload, table, seed=23, n=8000):
    rngs = RngFactory(seed)
    policy = TPCPolicy(table, workload.speedup_book)
    server = Server(ServerConfig(), policy, engine=Engine())
    requests = workload.make_requests(n, rngs.get("trace"))
    profile = diurnal_profile(150.0, 800.0, segments=6, segment_ms=3_000.0)
    times = nonhomogeneous_arrival_times(n, profile, rngs.get("arrivals"))
    for request, at in zip(requests, times):
        server.engine.schedule_at(
            float(at), lambda s=server, r=request: s.submit(r)
        )
    server.run_to_completion(n)
    return server


class TestLoadDrift:
    @pytest.fixture(scope="class")
    def adaptive_run(self, tiny_search_workload):
        return run_drift(tiny_search_workload, ADAPTIVE)

    def test_all_requests_complete_under_drift(self, adaptive_run):
        assert len(adaptive_run.recorder) == 8000

    def test_targets_span_the_table_under_drift(self, adaptive_run):
        """The varying load must exercise multiple table entries —
        otherwise the drift scenario degenerates to a constant one."""
        # Corrections imply targets were assigned; sample the recorder.
        assert adaptive_run.recorder.correction_rate() > 0

    def test_adaptive_table_beats_loose_constant(self, tiny_search_workload,
                                                 adaptive_run):
        loose_run = run_drift(tiny_search_workload, LOOSE)
        adaptive_p99 = adaptive_run.recorder.percentile(99)
        loose_p99 = loose_run.recorder.percentile(99)
        # A loose constant target wastes the low-load half of the day.
        assert adaptive_p99 < loose_p99

    def test_tail_dominated_by_peak_period(self, adaptive_run):
        """Slow responses cluster in the high-rate phase of the cycle
        (sanity: the drift actually stresses the server)."""
        responses = np.asarray(adaptive_run.recorder.responses_ms)
        threshold = np.percentile(responses, 99)
        assert threshold > np.percentile(responses, 50) * 2
