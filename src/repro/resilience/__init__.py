"""Fault injection, request hedging, and partial-wait aggregation.

The resilience subsystem layers two opt-in mechanisms on the cluster
simulation of :mod:`repro.cluster`:

* :class:`FaultSpec` — deterministic per-ISN fault windows (transient
  slowdowns, degraded worker pools, crash blackouts), frozen plain
  data that participates in ``repro.exec`` content hashes;
* :class:`HedgePolicy` — aggregator-side mitigations: wait-for-k-of-n
  partial aggregation, timeout-triggered hedged re-issue of lagging
  replicas, and tied-request cancellation.

Both default to exact no-ops, and :func:`repro.cluster.run_cluster_experiment`
only takes the coupled shared-engine path when at least one is active,
so plain cluster runs are bit-identical to a build without this
package.  ``python -m repro.resilience`` runs named fault scenarios
comparing the paper's policies and writes a ``BENCH_resilience.json``
report.
"""

from .faults import FaultKind, FaultSpec, FaultWindow, sample_fault_spec
from .hedging import HedgePolicy
from .cluster import ResilientClusterResult, run_shared_resilient
from .scenarios import (
    Scenario,
    ScenarioResult,
    get_scenario,
    list_scenarios,
    run_scenario,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultWindow",
    "sample_fault_spec",
    "HedgePolicy",
    "ResilientClusterResult",
    "run_shared_resilient",
    "Scenario",
    "ScenarioResult",
    "get_scenario",
    "list_scenarios",
    "run_scenario",
]
