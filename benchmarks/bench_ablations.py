"""Ablations of the design choices DESIGN.md calls out.

Not paper artifacts; these quantify choices the paper makes implicitly:

* correction-trigger timing — fire at E (the paper) vs 1.5E vs 3E;
* spare-resource signal — idle worker threads (the paper) vs idle
  hardware contexts;
* ramp-up penalty — how sensitive the results are to the cost charged
  for a mid-flight degree increase;
* SMT model — what happens to the headline comparison if the 24
  hardware threads really were 24 full cores;
* load-aware RampUp — the strongest prediction-free ramping variant
  still loses to TPC (Section 4.4's closing claim).
"""

import numpy as np

from conftest import BENCH_SEED, bench_queries, emit, qps_grid
from repro.analysis import dominance_fraction
from repro.config import PolicyConfig, ServerConfig
from repro.experiments import run_search_experiment
from repro.experiments.report import format_table
from repro.policies.tpc import TPCPolicy
from repro.sim.engine import Engine
from repro.sim.client import OpenLoopClient
from repro.sim.server import Server
from repro.rng import RngFactory


def _run_tpc_variant(workload, search_table, qps, make_policy_fn,
                     server_config=None):
    """Run a hand-built TPC variant (bypasses the registry)."""
    rngs = RngFactory(BENCH_SEED)
    cfg = server_config if server_config is not None else ServerConfig()
    policy = make_policy_fn()
    engine = Engine()
    server = Server(cfg, policy, engine=engine)
    requests = workload.make_requests(bench_queries(), rngs.get("trace"))
    OpenLoopClient([server]).schedule_trace(
        engine, requests, qps, rngs.get("arrivals")
    )
    server.run_to_completion(len(requests))
    return server.recorder


def test_ablation_correction_timing(benchmark, workload, search_table):
    """Firing correction at exactly E beats firing late; firing late
    approaches TP as the factor grows."""
    factors = (1.0, 1.5, 3.0)
    loads = (450.0, 750.0)

    def run():
        table = {}
        for factor in factors:
            table[factor] = [
                _run_tpc_variant(
                    workload, search_table, qps,
                    lambda f=factor: TPCPolicy(
                        search_table, workload.speedup_book,
                        correction_delay_factor=f,
                    ),
                ).percentile(99.9)
                for qps in loads
            ]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{factor:g} x E"] + [round(v, 1) for v in values]
        for factor, values in table.items()
    ]
    emit(
        "ablation_correction_timing",
        format_table(
            ["trigger", *(f"P99.9 @{int(q)} QPS" for q in loads)],
            rows,
            title="Ablation - correction-trigger timing",
        ),
    )
    for i in range(len(loads)):
        assert table[1.0][i] <= table[3.0][i] * 1.02


def test_ablation_resource_signal(benchmark, workload, search_table):
    """Idle workers vs idle hardware contexts as the correction budget:
    both work; the paper's idle-worker signal is never worse here."""
    loads = (450.0, 750.0)

    def run():
        out = {}
        for signal in ("idle_workers", "idle_hardware"):
            out[signal] = [
                _run_tpc_variant(
                    workload, search_table, qps,
                    lambda s=signal: TPCPolicy(
                        search_table, workload.speedup_book,
                        resource_signal=s,
                    ),
                ).percentile(99.9)
                for qps in loads
            ]
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [signal] + [round(v, 1) for v in values]
        for signal, values in out.items()
    ]
    emit(
        "ablation_resource_signal",
        format_table(
            ["signal", *(f"P99.9 @{int(q)} QPS" for q in loads)],
            rows,
            title="Ablation - spare-resource signal",
        ),
    )
    for i in range(len(loads)):
        ratio = out["idle_workers"][i] / out["idle_hardware"][i]
        assert 0.7 < ratio < 1.3  # same ballpark; neither pathological


def test_ablation_rampup_penalty(benchmark, workload, search_table):
    """Sensitivity to the mid-flight degree-increase penalty: results
    should degrade gracefully, not cliff, as the penalty grows."""
    penalties = (0.0, 0.5, 2.0)
    qps = 600.0

    def run():
        out = {}
        for penalty in penalties:
            result = run_search_experiment(
                workload, "TPC", qps, bench_queries(), BENCH_SEED,
                target_table=search_table,
                server_config=ServerConfig(rampup_penalty_ms=penalty),
            )
            out[penalty] = (result.p99_ms, result.p999_ms)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{p:g} ms", round(v[0], 1), round(v[1], 1)]
        for p, v in out.items()
    ]
    emit(
        "ablation_rampup_penalty",
        format_table(
            ["penalty", "P99", "P99.9"],
            rows,
            title=f"Ablation - ramp-up penalty @{qps:g} QPS",
        ),
    )
    assert out[0.0][1] <= out[2.0][1] * 1.05  # cheaper rampup never hurts
    assert out[2.0][1] <= out[0.0][1] * 1.5  # ... and 2 ms doesn't cliff


def test_ablation_smt_model(benchmark, workload, search_table):
    """Replace 12-core-SMT with 24 full cores: everyone gets faster
    (the SMT ceiling is what creates the paper's high-load saturation),
    and — notably — TPC benefits *more* than AP, because AP's high-load
    problem is not only contention but also the poor degrees it gives
    long queries."""
    qps = 750.0

    def run():
        out = {}
        for label, cfg in (
            ("12 cores + SMT (paper)", ServerConfig()),
            (
                "24 full cores",
                ServerConfig(physical_cores=24, smt_marginal_throughput=0.0),
            ),
        ):
            out[label] = {
                policy: run_search_experiment(
                    workload, policy, qps, bench_queries(), BENCH_SEED,
                    target_table=search_table, server_config=cfg,
                ).p99_ms
                for policy in ("AP", "TPC")
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, round(vals["AP"], 1), round(vals["TPC"], 1),
         round(vals["AP"] / vals["TPC"], 2)]
        for label, vals in out.items()
    ]
    emit(
        "ablation_smt",
        format_table(
            ["hardware model", "AP P99", "TPC P99", "AP/TPC"],
            rows,
            title=f"Ablation - hardware model @{qps:g} QPS",
        ),
    )
    smt = out["12 cores + SMT (paper)"]
    full = out["24 full cores"]
    # More capacity helps every policy...
    assert full["TPC"] < smt["TPC"]
    assert full["AP"] < smt["AP"]
    # ...and TPC still wins decisively under either hardware model.
    assert full["TPC"] < full["AP"]
    assert smt["TPC"] < smt["AP"]


def test_ablation_adaptive_rampup(benchmark, workload, search_table):
    """Section 4.4's closing claim: even load-aware RampUp (best
    interval per load) stays behind TPC across the load range."""
    grid = qps_grid()

    def run():
        tpc = [
            run_search_experiment(
                workload, "TPC", qps, bench_queries(), BENCH_SEED,
                target_table=search_table,
            ).p99_ms
            for qps in grid
        ]
        adaptive = [
            run_search_experiment(
                workload, "RampUp-Adaptive", qps, bench_queries(), BENCH_SEED,
            ).p99_ms
            for qps in grid
        ]
        return tpc, adaptive

    tpc, adaptive = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [int(qps), round(adaptive[i], 1), round(tpc[i], 1)]
        for i, qps in enumerate(grid)
    ]
    emit(
        "ablation_adaptive_rampup",
        format_table(
            ["QPS", "RampUp-adaptive P99", "TPC P99"],
            rows,
            title="Ablation - load-aware RampUp vs TPC",
        ),
    )
    # TPC at least matches load-aware RampUp nearly everywhere and the
    # mean gap favours TPC.
    assert dominance_fraction(tpc, adaptive, tolerance=0.08) >= 0.8
    assert float(np.mean(tpc)) < float(np.mean(adaptive))
