"""Plain-text report formatting: the rows/series the paper prints.

Benchmarks print their reproduced figure/table through these helpers so
``pytest benchmarks/ --benchmark-only`` output reads like the paper's
evaluation section.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "series_to_rows", "format_cdf_rows"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_to_rows(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
) -> tuple[list[str], list[list[object]]]:
    """Arrange {series name: y values} into (headers, rows) by x."""
    headers = [x_label, *series.keys()]
    rows: list[list[object]] = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return headers, rows


def format_cdf_rows(
    latencies_by_policy: Mapping[str, Sequence[float]],
    percentiles: Sequence[float],
) -> str:
    """Percentile table across policies (Figure 8-style CDF summary)."""
    import numpy as np

    headers = ["percentile", *latencies_by_policy.keys()]
    rows: list[list[object]] = []
    for p in percentiles:
        row: list[object] = [f"P{p:g}"]
        for values in latencies_by_policy.values():
            row.append(float(np.percentile(np.asarray(values), p)))
        rows.append(row)
    return format_table(headers, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) < 1.0 and value != 0.0:
            return f"{value:.3f}"
        return f"{value:.1f}"
    return str(value)
