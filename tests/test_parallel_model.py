"""Tests for the task-pool parallel-execution model (Figure 2)."""

import pytest

from repro.errors import CalibrationError
from repro.search.parallel import (
    FIGURE2_TARGETS,
    ParallelExecutionModel,
    fit_parallel_model,
)


@pytest.fixture(scope="module")
def fitted():
    return fit_parallel_model(
        serial_ms=1.2, task_grain_ms=1.0, task_overhead_ms=0.02
    )


class TestModelMechanics:
    def test_degree_one_time_equals_total(self, fitted):
        assert fitted.parallel_time(50.0, 1.2, 1) == 50.0

    def test_waste_fraction_decreases_with_length(self, fitted):
        assert fitted.waste_fraction(8.0) > fitted.waste_fraction(168.0)

    def test_profile_starts_at_one_and_is_monotone(self, fitted):
        profile = fitted.profile(100.0, 1.2, 6)
        assert profile.speedup(1) == 1.0
        values = profile.speedups
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_longer_queries_parallelize_better(self, fitted):
        short = fitted.profile(8.0, 1.2, 6)
        long = fitted.profile(168.0, 1.2, 6)
        assert long.speedup(6) > short.speedup(6) * 2

    def test_serial_only_request_does_not_speed_up(self, fitted):
        profile = fitted.profile(1.0, 1.2, 6)  # all-serial request
        assert profile.speedup(6) == pytest.approx(1.0)

    def test_rejects_nonpositive_total(self, fitted):
        with pytest.raises(CalibrationError):
            fitted.parallel_time(0.0, 1.0, 2)


class TestFigure2Fit:
    def test_fit_reproduces_group_speedups_roughly(self, fitted):
        """The fitted mechanism should land near the published Figure 2
        speedups: long ~4.1x, mid ~2.05x, short ~1.16x at 6 threads."""
        for load_ms, curve in FIGURE2_TARGETS.items():
            profile = fitted.profile(load_ms, 1.2, 6)
            for degree, target in curve.items():
                predicted = profile.speedup(degree)
                assert predicted == pytest.approx(target, rel=0.30), (
                    f"L={load_ms} d={degree}: {predicted:.2f} vs {target}"
                )

    def test_fit_long_group_order_of_magnitude(self, fitted):
        long6 = fitted.profile(168.0, 1.2, 6).speedup(6)
        assert 3.0 < long6 < 5.2

    def test_fit_short_group_near_unity(self, fitted):
        short6 = fitted.profile(8.0, 1.2, 6).speedup(6)
        assert short6 < 1.6

    def test_fit_parameters_positive(self, fitted):
        assert fitted.startup_overhead_ms >= 0
        assert fitted.waste_amplitude > 0
        assert fitted.waste_halflife_ms > 0

    def test_custom_targets_shift_fit(self):
        relaxed = fit_parallel_model(
            serial_ms=1.2,
            task_grain_ms=1.0,
            task_overhead_ms=0.02,
            targets={100.0: {6: 5.5}, 10.0: {6: 2.0}},
        )
        default = fit_parallel_model(1.2, 1.0, 0.02)
        assert relaxed.profile(100.0, 1.2, 6).speedup(6) > default.profile(
            100.0, 1.2, 6
        ).speedup(6)

    def test_empty_targets_rejected(self):
        with pytest.raises(CalibrationError):
            fit_parallel_model(1.0, 1.0, 0.02, targets={})
