"""Tests for the request-timeline tracer."""

import pytest

from repro.config import ServerConfig
from repro.core.target_table import TargetTable
from repro.errors import SimulationError
from repro.policies import TPCPolicy
from repro.sim.engine import Engine
from repro.sim.server import Server
from repro.sim.tracing import (
    RequestTracer,
    TraceEvent,
    TraceEventKind,
    attach_tracer,
)

from conftest import LONG_PROFILE, make_request
from test_server import FixedDegreePolicy


def traced_server(policy, **kwargs):
    cfg = ServerConfig(**kwargs) if kwargs else ServerConfig()
    server = Server(cfg, policy, engine=Engine())
    tracer = attach_tracer(server)
    return server, tracer


class TestTimeline:
    def test_simple_lifecycle(self):
        server, tracer = traced_server(FixedDegreePolicy(2))
        req = make_request(0, 20.0)
        server.submit(req)
        server.run_to_completion(1)
        kinds = [e.kind for e in tracer.timeline(0)]
        assert kinds == [
            TraceEventKind.ARRIVAL,
            TraceEventKind.DISPATCH,
            TraceEventKind.COMPLETION,
        ]

    def test_dispatch_records_chosen_degree(self):
        server, tracer = traced_server(FixedDegreePolicy(4))
        server.submit(make_request(0, 20.0))
        dispatch = tracer.timeline(0)[1]
        assert dispatch.kind is TraceEventKind.DISPATCH
        assert dispatch.degree == 4

    def test_queued_request_dispatches_later(self):
        server, tracer = traced_server(
            FixedDegreePolicy(1), worker_threads=1, max_parallelism=1
        )
        server.submit(make_request(0, 30.0))
        server.submit(make_request(1, 10.0))
        server.run_to_completion(2)
        timeline = tracer.timeline(1)
        arrival, dispatch = timeline[0], timeline[1]
        assert dispatch.time_ms == pytest.approx(30.0)
        assert arrival.time_ms == pytest.approx(dispatch.time_ms - 30.0, abs=1)

    def test_correction_appears_as_degree_change(self, speedup_book):
        table = TargetTable.constant(40.0)
        policy = TPCPolicy(table, speedup_book)
        server = Server(ServerConfig(), policy, engine=Engine())
        tracer = attach_tracer(server)
        req = make_request(0, 200.0, predicted_ms=10.0, profile=LONG_PROFILE)
        server.submit(req)
        server.run_to_completion(1)
        changes = tracer.degree_changes(0)
        assert changes, "correction should have changed the degree"
        time, degree = changes[0]
        assert time == pytest.approx(40.0, abs=1.0)  # fired at E
        assert degree == 6

    def test_validate_accepts_real_run(self):
        server, tracer = traced_server(FixedDegreePolicy(2))
        for i in range(20):
            server.submit(make_request(i, 5.0 + i))
        server.run_to_completion(20)
        tracer.validate()
        assert tracer.requests_traced() == set(range(20))

    def test_format_timeline_readable(self):
        server, tracer = traced_server(FixedDegreePolicy(1))
        server.submit(make_request(0, 5.0))
        server.run_to_completion(1)
        text = tracer.format_timeline(0)
        assert "arrival" in text and "completion" in text
        assert tracer.format_timeline(99).startswith("(no events")

    def test_running_cancellation_recorded(self):
        server, tracer = traced_server(FixedDegreePolicy(2))
        req = make_request(0, 50.0)
        server.submit(req)
        server.engine.run_until(10.0)
        server.cancel_request(req)
        kinds = [e.kind for e in tracer.timeline(0)]
        assert kinds == [
            TraceEventKind.ARRIVAL,
            TraceEventKind.DISPATCH,
            TraceEventKind.CANCELLED,
        ]
        cancelled = tracer.timeline(0)[-1]
        assert cancelled.time_ms == pytest.approx(10.0)
        assert cancelled.degree == 2  # degree held at cancellation time
        tracer.validate()

    def test_queued_cancellation_skips_dispatch(self):
        server, tracer = traced_server(
            FixedDegreePolicy(1), worker_threads=1, max_parallelism=1
        )
        server.submit(make_request(0, 30.0))
        queued = make_request(1, 10.0)
        server.submit(queued)
        server.cancel_request(queued)
        kinds = [e.kind for e in tracer.timeline(1)]
        assert kinds == [TraceEventKind.ARRIVAL, TraceEventKind.CANCELLED]
        server.run_to_completion(1)
        tracer.validate()


class TestValidation:
    def test_detects_events_after_completion(self):
        tracer = RequestTracer()
        tracer.record(0.0, 1, TraceEventKind.ARRIVAL, 0)
        tracer.record(1.0, 1, TraceEventKind.DISPATCH, 1)
        tracer.record(2.0, 1, TraceEventKind.COMPLETION, 1)
        tracer.record(3.0, 1, TraceEventKind.DEGREE_CHANGE, 2)
        with pytest.raises(SimulationError):
            tracer.validate()

    def test_detects_degree_change_before_dispatch(self):
        tracer = RequestTracer()
        tracer.record(0.0, 1, TraceEventKind.ARRIVAL, 0)
        tracer.record(1.0, 1, TraceEventKind.DEGREE_CHANGE, 2)
        with pytest.raises(SimulationError):
            tracer.validate()

    def test_detects_non_monotone_times(self):
        tracer = RequestTracer()
        tracer.record(5.0, 1, TraceEventKind.ARRIVAL, 0)
        tracer.record(1.0, 1, TraceEventKind.DISPATCH, 1)
        with pytest.raises(SimulationError):
            tracer.validate()

    def test_capacity_caps_recording(self):
        tracer = RequestTracer(capacity=2)
        with pytest.warns(RuntimeWarning, match="capacity"):
            for t in range(5):
                tracer.record(float(t), t, TraceEventKind.ARRIVAL, 0)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_drop_warning_emitted_exactly_once(self):
        tracer = RequestTracer(capacity=1)
        tracer.record(0.0, 0, TraceEventKind.ARRIVAL, 0)
        with pytest.warns(RuntimeWarning) as caught:
            tracer.record(1.0, 1, TraceEventKind.ARRIVAL, 0)
            tracer.record(2.0, 2, TraceEventKind.ARRIVAL, 0)
        drops = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(drops) == 1
        assert tracer.dropped == 2

    def test_cancelled_interplay_with_capacity(self):
        # A tracer that fills up mid-run must still count drops while a
        # cancellation happens past the cap, and the kept prefix stays
        # a valid (if truncated) trace.
        server = Server(
            ServerConfig(worker_threads=2, max_parallelism=2),
            FixedDegreePolicy(2),
            engine=Engine(),
        )
        tracer = attach_tracer(server, capacity=3)
        kept = make_request(0, 50.0)
        doomed = make_request(1, 50.0)
        server.submit(kept)  # arrival + dispatch -> 2 events
        server.engine.run_until(5.0)
        # All workers busy: doomed queues, so only its arrival is
        # recorded -> exactly at capacity.
        server.submit(doomed)
        server.engine.run_until(10.0)
        with pytest.warns(RuntimeWarning, match="capacity"):
            server.cancel_request(doomed, cause="hedge-superseded")
        assert len(tracer.events) == 3
        assert tracer.dropped >= 1
        assert [e.kind for e in tracer.timeline(1)] == [
            TraceEventKind.ARRIVAL
        ]
        tracer.validate()  # truncated but well-formed

    def test_cancel_cause_recorded(self):
        server = Server(
            ServerConfig(), FixedDegreePolicy(2), engine=Engine()
        )
        tracer = attach_tracer(server)
        req = make_request(0, 50.0)
        server.submit(req)
        server.engine.run_until(10.0)
        server.cancel_request(req, cause="hedge-superseded")
        cancelled = tracer.timeline(0)[-1]
        assert cancelled.kind is TraceEventKind.CANCELLED
        assert cancelled.cause == "hedge-superseded"

    def test_timeline_index_matches_full_scan(self):
        # The lazy per-rid index (satellite: O(own events) timelines)
        # must agree with a brute-force scan, including when queries
        # interleave with new recordings.
        server, tracer = traced_server(
            FixedDegreePolicy(1), worker_threads=2, max_parallelism=2
        )
        for i in range(10):
            server.submit(make_request(i, 5.0 + 3 * i))
        server.engine.run_until(20.0)
        mid = tracer.timeline(0)  # force an index build mid-run
        assert mid == [e for e in tracer.events if e.rid == 0]
        server.run_to_completion(10)
        for rid in tracer.requests_traced():
            assert tracer.timeline(rid) == [
                e for e in tracer.events if e.rid == rid
            ]

    def test_attach_requires_fresh_server(self):
        server = Server(ServerConfig(), FixedDegreePolicy(1), engine=Engine())
        server.submit(make_request(0, 5.0))
        with pytest.raises(SimulationError):
            attach_tracer(server)

    def test_detects_events_after_cancellation(self):
        tracer = RequestTracer()
        tracer.record(0.0, 1, TraceEventKind.ARRIVAL, 0)
        tracer.record(1.0, 1, TraceEventKind.DISPATCH, 1)
        tracer.record(2.0, 1, TraceEventKind.CANCELLED, 1)
        tracer.record(3.0, 1, TraceEventKind.COMPLETION, 1)
        with pytest.raises(SimulationError):
            tracer.validate()

    def test_validator_covers_every_event_kind(self):
        # The validator's stage map must stay exhaustive: a new
        # TraceEventKind without ordering rules would silently KeyError
        # inside validate() instead of being checked.
        tracer = RequestTracer()
        for rid, kind in enumerate(TraceEventKind):
            if kind is not TraceEventKind.ARRIVAL:
                tracer.record(0.0, rid, TraceEventKind.ARRIVAL, 0)
            if kind in (
                TraceEventKind.DEGREE_CHANGE,
                TraceEventKind.COMPLETION,
            ):
                tracer.record(0.5, rid, TraceEventKind.DISPATCH, 1)
            tracer.record(1.0, rid, kind, 1)
        tracer.validate()

    def test_event_str(self):
        event = TraceEvent(1.5, 7, TraceEventKind.DISPATCH, 3)
        assert "request 7" in str(event)
        assert "dispatch" in str(event)
