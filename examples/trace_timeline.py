#!/usr/bin/env python3
"""Observability tour: trace TPC under a bursty arrival process.

Runs the TPC policy on one index-serving node while an
:class:`repro.obs.Observation` records request spans, metrics and
policy decisions.  Arrivals follow a piecewise-constant rate profile
(calm -> burst -> calm), the classic trigger for queueing-dominated
tails.  Prints the metric snapshot, the tail-attribution report, and
ASCII timelines of the three slowest requests, then writes a Chrome
trace you can open at https://ui.perfetto.dev.

Run:  python examples/trace_timeline.py
"""

from repro.config import PredictorConfig, SearchWorkloadConfig, ServerConfig
from repro.core.target_table import TargetTable
from repro.policies.registry import make_policy
from repro.obs import (
    Observation,
    render_tail_report,
    render_timelines,
    slowest_spans,
    write_chrome_trace,
)
from repro.search import build_search_workload
from repro.sim.arrivals import RateProfile, nonhomogeneous_arrival_times
from repro.sim.engine import Engine
from repro.rng import RngFactory
from repro.sim.server import Server

N_REQUESTS = 3_000
TRACE_PATH = "trace_timeline.json"

#: Calm -> 3x burst -> calm, repeating every 1.5 s.
BURST_PROFILE = RateProfile(rates_qps=(250.0, 750.0, 250.0), segment_ms=500.0)


def main() -> None:
    print("Building a small search workload (one-off)...")
    workload = build_search_workload(
        seed=11,
        config=SearchWorkloadConfig(
            num_documents=3_000,
            vocabulary_size=1_500,
            mean_doc_length=120,
            hard_term_pool=150,
            easy_skip_top=15,
        ),
        predictor_config=PredictorConfig(num_trees=60, max_depth=4),
        pool_size=1_200,
    )

    rngs = RngFactory(21)
    policy = make_policy(
        "TPC",
        speedup_book=workload.speedup_book,
        group_weights=workload.group_weights,
        target_table=TargetTable([(0, 40), (8, 65), (16, 90)]),
    )
    engine = Engine()
    server = Server(ServerConfig(), policy, engine=engine)

    obs = Observation()
    obs.attach(server)

    requests = workload.make_requests(N_REQUESTS, rngs.get("trace"))
    times = nonhomogeneous_arrival_times(
        N_REQUESTS, BURST_PROFILE, rngs.get("arrivals")
    )
    for request, at in zip(requests, times):
        engine.schedule_at(float(at), lambda r=request: server.submit(r))

    print(
        f"Replaying {N_REQUESTS} queries through TPC under a "
        f"{min(BURST_PROFILE.rates_qps):g}->{max(BURST_PROFILE.rates_qps):g} "
        "QPS burst profile...\n"
    )
    server.run_to_completion(N_REQUESTS)

    snap = obs.registry.snapshot()
    print("metrics:")
    for name in (
        "completions",
        "queue_depth.max",
        "running.max",
        "degree_raises",
        "queue_wait_ms.p99",
        "response_ms.p99",
        "response_ms.p99.9",
    ):
        if name in snap:
            print(f"  {name:<24} {snap[name]:10.2f}")
    print()
    print(render_tail_report(obs.tail_report()))

    slowest = slowest_spans(obs.spans(), 3)
    print()
    print("slowest 3 requests (queue wait dotted, execution hashed):")
    print()
    print(render_timelines(slowest))

    with open(TRACE_PATH, "w", encoding="utf-8") as fp:
        write_chrome_trace(fp, obs.chrome_trace(process_name="TPC burst"))
    print(f"\nchrome trace written to {TRACE_PATH}")
    print(
        "load it at https://ui.perfetto.dev - each request is a thread "
        "track with queued/run phases."
    )


if __name__ == "__main__":
    main()
