"""Shared benchmark fixtures and scale knobs.

Every benchmark regenerates one paper artifact (figure or table),
prints it in the paper's row/series format, and writes the rendered
text to ``benchmarks/output/`` so EXPERIMENTS.md can cite it.

Sweeps are declared as :mod:`repro.exec` specs and executed through
the process pool, so independent (policy, load) cells run concurrently
and long runs report per-cell liveness instead of sitting silent.

Scale knobs (environment variables):

* ``REPRO_BENCH_QUERIES``           requests per (policy, load) cell
                                     [default 20000]
* ``REPRO_BENCH_CLUSTER_QUERIES``   logical queries in the cluster run
                                     [default 6000]
* ``REPRO_BENCH_CLUSTER_ISNS``      ISNs in the cluster run [default 40]
* ``REPRO_BENCH_FAST=1``            shrink everything ~10x (CI smoke)
* ``REPRO_BENCH_WORKERS``           process-pool size for sweeps and
                                     per-ISN cluster runs
                                     [default cpu_count - 1]
* ``REPRO_EXEC_CACHE=1``            reuse cached cell results across
                                     runs (``REPRO_EXEC_CACHE_DIR``
                                     relocates the store)

Memory note: each pool worker rebuilds and memoises the workload from
its spec, so ``N`` workers hold ``N`` copies of the inverted index and
query pools — cap ``REPRO_BENCH_WORKERS`` on memory-tight hosts.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

import pytest

from repro.config import PolicyConfig, ServerConfig
from repro.exec import default_cache, log_progress
from repro.experiments import (
    DEFAULT_FINANCE_TARGET_TABLE,
    DEFAULT_QPS_GRID,
    DEFAULT_SEARCH_TARGET_TABLE,
    default_workload,
    run_load_sweep,
)
from repro.finance import build_finance_workload

OUTPUT_DIR = Path(__file__).parent / "output"

_FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"


def bench_queries() -> int:
    """Requests per (policy, load) experiment cell."""
    default = 2_000 if _FAST else 20_000
    return int(os.environ.get("REPRO_BENCH_QUERIES", default))


def cluster_queries() -> int:
    """Logical queries in the cluster benchmark."""
    default = 800 if _FAST else 6_000
    return int(os.environ.get("REPRO_BENCH_CLUSTER_QUERIES", default))


def cluster_isns() -> int:
    """Number of ISNs in the cluster benchmark."""
    default = 8 if _FAST else 40
    return int(os.environ.get("REPRO_BENCH_CLUSTER_ISNS", default))


def qps_grid() -> tuple[float, ...]:
    """Load grid of the single-ISN figures."""
    if _FAST:
        return (150.0, 450.0, 750.0)
    return DEFAULT_QPS_GRID


def exec_kwargs() -> dict:
    """Execution-layer knobs shared by every benchmark sweep.

    Worker count resolution happens inside the pool (argument, then
    ``REPRO_BENCH_WORKERS``, then cpu count); the result cache is
    opt-in via ``REPRO_EXEC_CACHE=1``.
    """
    return {
        "workers": None,
        "cache": default_cache(),
        "progress": log_progress,
    }


BENCH_SEED = 71


@pytest.fixture(scope="session")
def workload():
    """The canonical calibrated search workload."""
    return default_workload()


@pytest.fixture(scope="session")
def finance():
    """The Section 5.1 finance workload."""
    return build_finance_workload()


@pytest.fixture(scope="session")
def search_table():
    """The shipped Algorithm 1 target table."""
    return DEFAULT_SEARCH_TARGET_TABLE


@pytest.fixture(scope="session")
def finance_table():
    """The shipped finance target table."""
    return DEFAULT_FINANCE_TARGET_TABLE


@lru_cache(maxsize=1)
def _main_sweep_cached():
    """One shared sweep of the six single-ISN policies over the full
    QPS grid; Figures 4, 5 and 6 all read from it.  The 6 x len(grid)
    cells fan out across the exec process pool."""
    w = default_workload()
    return run_load_sweep(
        w,
        ["Sequential", "WQ-Linear", "AP", "Pred", "TP", "TPC"],
        qps_grid(),
        n_requests=bench_queries(),
        seed=BENCH_SEED,
        target_table=DEFAULT_SEARCH_TARGET_TABLE,
        **exec_kwargs(),
    )


@pytest.fixture(scope="session")
def main_sweep():
    """Shared policy x load sweep (computed once per session)."""
    return _main_sweep_cached()


@pytest.fixture(scope="session")
def finance_server_config():
    """Finance server: same box, maximum parallelism degree 4."""
    return ServerConfig(max_parallelism=4)


@pytest.fixture(scope="session")
def finance_policy_config():
    """Pred uses fixed degree 2 on the finance server."""
    return PolicyConfig(pred_fixed_degree=2)


def emit(name: str, text: str) -> None:
    """Print a reproduced artifact and archive it under output/."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
