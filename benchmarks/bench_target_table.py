"""A1 — Algorithm 1: target-table construction.

Runs BUILDTARGETTABLE (greedy gradient descent over MeasureTail) on the
canonical workload at reduced scale, verifying that the search (a)
terminates far below the exhaustive-search cost bound, (b) never
accepts a worsening step, and (c) produces a table whose weighted tail
latency is no worse than its initialisation.  Also reports the shipped
table and the multi-start extension that crosses the coordinated-shift
valleys the single-start greedy cannot (see
``core/table_builder.py``).
"""

from conftest import BENCH_SEED, emit
from repro.config import TargetTableConfig
from repro.core.table_builder import build_target_table_multistart
from repro.core.target_table import TargetTable
from repro.experiments import DEFAULT_SEARCH_TARGET_TABLE
from repro.experiments.runner import build_search_target_table, make_measure_tail
from repro.experiments.report import format_table

SEARCH_CONFIG = TargetTableConfig(
    load_grid=(0.0, 4.0, 10.0, 20.0),
    initial_target_ms=25.0,
    step_ms=10.0,
    measure_loads_qps=(150.0, 500.0, 800.0),
    measure_weights=(1.0, 1.0, 1.0),
    queries_per_measurement=4_000,
    max_iterations=12,
)


def test_algorithm1_search(benchmark, workload):
    # The per-iteration candidate measurements fan out across the exec
    # pool (workers=None resolves REPRO_BENCH_WORKERS / cpu count).
    result = benchmark.pedantic(
        lambda: build_search_target_table(
            workload, SEARCH_CONFIG, seed=BENCH_SEED, workers=None
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [f"{d:g}", f"{e:g}"] for d, e in result.table.entries
    ]
    emit(
        "target_table_search",
        format_table(
            ["load (LongT threads)", "target E (ms)"],
            rows,
            title=(
                "Algorithm 1 - searched target table "
                f"(tail={result.tail_latency_ms:.1f} ms, "
                f"{result.measurements} measurements, "
                f"{result.iterations} iterations)"
            ),
        )
        + "\n\nShipped table: "
        + repr(DEFAULT_SEARCH_TARGET_TABLE),
    )

    m = len(SEARCH_CONFIG.load_grid)
    # Complexity bound of Section 3.3: measurements <= 1 + m * (iters+1).
    assert result.measurements <= 1 + m * (result.iterations + 1)
    # Greedy descent: the history trace is strictly improving.
    tails = [h[2] for h in result.history]
    assert all(b < a for a, b in zip(tails, tails[1:]))
    # The search never worsens its initialisation.
    initial = TargetTable.uniform(
        SEARCH_CONFIG.load_grid, SEARCH_CONFIG.initial_target_ms
    )
    measure = make_measure_tail(workload, SEARCH_CONFIG, seed=BENCH_SEED)
    assert result.tail_latency_ms <= measure(initial) + 1e-9


def test_multistart_extension(benchmark, workload):
    """The multi-start wrapper finds a table at least as good as any
    single flat start (crossing coordinated-shift valleys)."""
    measure = make_measure_tail(workload, SEARCH_CONFIG, seed=BENCH_SEED)

    result = benchmark.pedantic(
        lambda: build_target_table_multistart(
            SEARCH_CONFIG.load_grid,
            [25.0, 45.0],
            SEARCH_CONFIG.step_ms,
            measure,
            max_iterations=8,
        ),
        rounds=1,
        iterations=1,
    )
    flat25 = measure(TargetTable.uniform(SEARCH_CONFIG.load_grid, 25.0))
    flat45 = measure(TargetTable.uniform(SEARCH_CONFIG.load_grid, 45.0))
    emit(
        "target_table_multistart",
        format_table(
            ["candidate", "weighted tail (ms)"],
            [
                ["flat 25 ms", round(flat25, 1)],
                ["flat 45 ms", round(flat45, 1)],
                ["multi-start result", round(result.tail_latency_ms, 1)],
            ],
            title="Multi-start Algorithm 1 (extension)",
        ),
    )
    assert result.tail_latency_ms <= min(flat25, flat45) + 1e-9
