"""Policy-decision attribution and tail-latency decomposition.

Two halves:

* :class:`DecisionLog` is the duck-typed observer the policy layer
  calls into (``ParallelismPolicy.observer``).  Every Pred/TP/TPC
  dispatch records the predicted demand, the realized demand, and —
  for the target-driven policies — the load reading and target E that
  produced the degree.  Every TPC correction check records its trigger
  state: how long the request had been executing versus its target,
  how many spare workers were available, and what the controller did.

* :func:`tail_report` joins request spans with per-request demand info
  and decomposes the P99/P99.9 tail into attribution buckets: requests
  slow because they *queued*, because their degree was chosen from a
  *misprediction* and correction never fired, because correction fired
  but *too late* to save them, or because they were *inherently* long.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, NamedTuple, Sequence

import numpy as np

from ..errors import SimulationError
from .spans import RequestSpan, SpanCause

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = [
    "DispatchDecision",
    "CorrectionCheck",
    "DecisionLog",
    "RequestInfo",
    "TailBucket",
    "TailSlice",
    "TailReport",
    "classify_span",
    "tail_report",
    "render_tail_report",
]


class DispatchDecision(NamedTuple):
    """One policy dispatch: what was predicted, what was chosen, why.

    A NamedTuple: one is built per dispatch on the live path of the
    observed policies.
    """

    rid: int
    time_ms: float
    degree: int
    predicted_ms: float
    demand_ms: float
    #: Target E at dispatch (None for load-blind policies like Pred).
    target_ms: float | None
    #: Load-metric reading that selected the target (None for Pred).
    load: float | None


class CorrectionCheck(NamedTuple):
    """One correction-timer firing: the trigger state and the outcome."""

    rid: int
    time_ms: float
    #: Execution time elapsed when the timer fired.
    elapsed_ms: float
    #: The request's target E (the paper's trigger threshold).
    target_ms: float | None
    #: Spare capacity the controller saw (idle workers or hardware).
    spare_workers: int
    #: Degree the controller raised to, or None if it could not act.
    new_degree: int | None
    #: Whether the controller scheduled another check.
    will_recheck: bool

    @property
    def fired_late(self) -> bool:
        """Whether the trigger fired past the request's target."""
        return self.target_ms is not None and self.elapsed_ms >= self.target_ms


class DecisionLog:
    """Observer sink for policy decisions (see ``ParallelismPolicy.observer``).

    Implements exactly the two duck-typed hooks the policies call:
    ``on_dispatch_decision`` and ``on_correction_check``.
    """

    def __init__(self) -> None:
        self.dispatches: list[DispatchDecision] = []
        self.checks: list[CorrectionCheck] = []
        self._dispatch_by_rid: dict[int, DispatchDecision] = {}
        self._checks_by_rid: dict[int, list[CorrectionCheck]] = {}

    def on_dispatch_decision(
        self,
        request: "Request",
        server: "Server",
        degree: int,
        target_ms: float | None = None,
        load: float | None = None,
    ) -> None:
        decision = DispatchDecision(
            rid=request.rid,
            time_ms=server.now,
            degree=degree,
            predicted_ms=request.predicted_ms,
            demand_ms=request.demand_ms,
            target_ms=target_ms,
            load=load,
        )
        self.dispatches.append(decision)
        self._dispatch_by_rid[request.rid] = decision

    def on_correction_check(
        self,
        request: "Request",
        server: "Server",
        elapsed_ms: float,
        target_ms: float | None,
        spare_workers: int,
        new_degree: int | None,
        will_recheck: bool,
    ) -> None:
        check = CorrectionCheck(
            rid=request.rid,
            time_ms=server.now,
            elapsed_ms=elapsed_ms,
            target_ms=target_ms,
            spare_workers=spare_workers,
            new_degree=new_degree,
            will_recheck=will_recheck,
        )
        self.checks.append(check)
        self._checks_by_rid.setdefault(request.rid, []).append(check)

    def dispatch_for(self, rid: int) -> DispatchDecision | None:
        """The dispatch decision recorded for ``rid``, or None."""
        return self._dispatch_by_rid.get(rid)

    def checks_for(self, rid: int) -> list[CorrectionCheck]:
        """All correction checks recorded for ``rid`` (possibly empty)."""
        return list(self._checks_by_rid.get(rid, ()))

    @property
    def corrections_fired(self) -> int:
        """Checks that actually raised a degree."""
        return sum(1 for c in self.checks if c.new_degree is not None)

    def misprediction_ratios(self) -> list[float]:
        """``demand / predicted`` per dispatch (>1 = under-predicted)."""
        return [
            d.demand_ms / d.predicted_ms
            for d in self.dispatches
            if d.predicted_ms > 0
        ]


class RequestInfo(NamedTuple):
    """Ground-truth demand info joined against a span for attribution.

    A NamedTuple: one is built per request at arrival, on the traced
    hot path.
    """

    predicted_ms: float
    demand_ms: float


class TailBucket(enum.Enum):
    """Why a tail request was slow."""

    #: Dominated by queueing delay before execution even began.
    QUEUEING = "queueing"
    #: Under-predicted demand got an under-sized degree and no
    #: correction ever raised it.
    MISPREDICTED_DEGREE = "mispredicted-degree"
    #: Under-predicted demand; correction did raise the degree, but the
    #: request still landed in the tail — help arrived too late.
    CORRECTION_TOO_LATE = "correction-too-late"
    #: Correctly predicted long work: slow because the work is big.
    INHERENT = "inherent"


@dataclass(frozen=True)
class TailSlice:
    """The attribution breakdown at one percentile."""

    percentile: float
    threshold_ms: float
    n_tail: int
    #: Bucket -> number of tail requests attributed to it.
    counts: dict[TailBucket, int]
    #: Bucket -> a few example rids (worst first) for drill-down.
    examples: dict[TailBucket, tuple[int, ...]]


@dataclass(frozen=True)
class TailReport:
    """Tail decomposition over the completed spans of one run."""

    n_completed: int
    slices: tuple[TailSlice, ...] = field(default_factory=tuple)

    def slice_at(self, percentile: float) -> TailSlice:
        for s in self.slices:
            if s.percentile == percentile:
                return s
        raise SimulationError(f"no tail slice at p{percentile:g}")


def classify_span(
    span: RequestSpan,
    info: RequestInfo | None,
    misprediction_factor: float = 1.5,
) -> TailBucket:
    """Attribute one tail span to a bucket.

    The order matters: queueing dominates (the degree decision never had
    a chance), then misprediction with/without a correction raise, then
    inherent length as the residual.
    """
    response = span.response_ms
    if response > 0 and span.queue_wait_ms >= 0.5 * response:
        return TailBucket.QUEUEING
    if info is not None and info.demand_ms > info.predicted_ms * (
        misprediction_factor
    ):
        if span.corrected:
            return TailBucket.CORRECTION_TOO_LATE
        return TailBucket.MISPREDICTED_DEGREE
    return TailBucket.INHERENT


def tail_report(
    spans: Iterable[RequestSpan],
    request_info: Mapping[int, RequestInfo] | None = None,
    percentiles: Sequence[float] = (99.0, 99.9),
    misprediction_factor: float = 1.5,
    n_examples: int = 5,
) -> TailReport:
    """Decompose the latency tail of ``spans`` into attribution buckets.

    For each percentile, takes the completed spans at or above that
    response-time threshold and classifies each via
    :func:`classify_span`.  ``request_info`` (rid -> ground truth, as
    collected by :class:`repro.obs.observe.Observation`) enables the
    misprediction buckets; without it everything non-queueing is
    INHERENT.
    """
    completed = [s for s in spans if s.cause is SpanCause.COMPLETED]
    if not completed:
        return TailReport(n_completed=0)
    responses = np.asarray([s.response_ms for s in completed], dtype=np.float64)
    info = request_info or {}
    slices: list[TailSlice] = []
    for p in percentiles:
        threshold = float(np.percentile(responses, p))
        tail = [s for s in completed if s.response_ms >= threshold]
        tail.sort(key=lambda s: s.response_ms, reverse=True)
        counts = {bucket: 0 for bucket in TailBucket}
        examples: dict[TailBucket, list[int]] = {b: [] for b in TailBucket}
        for span in tail:
            bucket = classify_span(
                span, info.get(span.rid), misprediction_factor
            )
            counts[bucket] += 1
            if len(examples[bucket]) < n_examples:
                examples[bucket].append(span.rid)
        slices.append(
            TailSlice(
                percentile=float(p),
                threshold_ms=threshold,
                n_tail=len(tail),
                counts=counts,
                examples={b: tuple(r) for b, r in examples.items()},
            )
        )
    return TailReport(n_completed=len(completed), slices=tuple(slices))


def render_tail_report(report: TailReport) -> str:
    """Plain-text rendering of a :class:`TailReport`."""
    lines = [f"Tail attribution over {report.n_completed} completed requests"]
    if not report.slices:
        lines.append("  (no completed requests - nothing to attribute)")
        return "\n".join(lines)
    for s in report.slices:
        lines.append(
            f"  P{s.percentile:g} (>= {s.threshold_ms:.1f} ms, "
            f"{s.n_tail} requests):"
        )
        for bucket in TailBucket:
            n = s.counts.get(bucket, 0)
            if not n:
                continue
            share = 100.0 * n / s.n_tail if s.n_tail else 0.0
            rids = ", ".join(str(r) for r in s.examples.get(bucket, ()))
            suffix = f"  e.g. rid {rids}" if rids else ""
            lines.append(
                f"    {bucket.value:<22} {n:>5}  ({share:5.1f} %){suffix}"
            )
    return "\n".join(lines)
