"""RampUp: incremental parallelism without prediction (Section 4.4).

RampUp starts every query sequentially.  If the query has not completed
after a predefined interval, its degree is increased by 1, repeating
every interval until the query completes or reaches the maximum degree.
Short queries thus finish sequentially while long queries eventually
accumulate threads — dynamic correction without prediction, in the
spirit of few-to-many incremental parallelism [15].  The interval
trades tail latency at light load (small intervals parallelize sooner)
against overhead at heavy load (small intervals parallelize everything).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigError
from .base import ParallelismPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = ["RampUpPolicy"]


class RampUpPolicy(ParallelismPolicy):
    """Degree +1 every ``interval_ms`` until completion or the maximum."""

    def __init__(self, interval_ms: float = 10.0) -> None:
        if interval_ms <= 0:
            raise ConfigError("interval_ms must be > 0")
        self.interval_ms = float(interval_ms)
        self.name = f"RampUp-{interval_ms:g}ms"

    def initial_degree(self, request: "Request", server: "Server") -> int:
        return 1

    def first_check_delay(
        self, request: "Request", server: "Server"
    ) -> float | None:
        return self.interval_ms

    def on_check(
        self, request: "Request", server: "Server"
    ) -> tuple[int | None, float | None]:
        max_degree = server.config.max_parallelism
        if request.degree >= max_degree:
            return (None, None)
        new_degree = request.degree + 1
        next_delay = self.interval_ms if new_degree < max_degree else None
        return (new_degree, next_delay)
