"""Integration tests for the assembled search workload."""

import numpy as np
import pytest

from repro.errors import WorkloadError


class TestWorkloadShape:
    def test_demand_statistics_match_paper_targets(self, tiny_search_workload):
        """Even the miniature corpus should land near the Section 2
        statistics the mixture was designed for."""
        stats = tiny_search_workload.statistics
        assert stats.mean_ms == pytest.approx(13.47, abs=0.01)  # exact by calibration
        assert 0.70 < stats.short_fraction < 0.95
        assert 0.01 < stats.long_fraction < 0.12
        assert stats.p99_ms > 5 * stats.mean_ms

    def test_group_weights_sum_to_one(self, tiny_search_workload):
        assert sum(tiny_search_workload.group_weights) == pytest.approx(1.0)
        assert tiny_search_workload.group_weights[0] > 0.5  # mostly short

    def test_speedup_book_orders_groups(self, tiny_search_workload):
        book = tiny_search_workload.speedup_book
        s6 = [book.profile_of_group(g).speedup(6) for g in range(3)]
        assert s6[0] < s6[1] < s6[2]

    def test_predictor_report_plausible(self, tiny_search_workload):
        report = tiny_search_workload.predictor_report
        assert report.l1_error_ms < tiny_search_workload.statistics.mean_ms * 2
        assert report.recall > 0.5
        assert report.precision > 0.5

    def test_pool_arrays_aligned(self, tiny_search_workload):
        w = tiny_search_workload
        assert len(w.pool_demands_ms) == len(w.pool_predictions_ms)
        assert len(w.pool_demands_ms) == len(w.pool_profiles)
        assert w.pool_size == len(w.pool_demands_ms)


class TestMakeRequests:
    def test_trace_sampling(self, tiny_search_workload, rng):
        reqs = tiny_search_workload.make_requests(500, rng)
        assert len(reqs) == 500
        assert len({r.rid for r in reqs}) == 500
        assert all(r.demand_ms > 0 for r in reqs)

    def test_rid_offset(self, tiny_search_workload, rng):
        reqs = tiny_search_workload.make_requests(5, rng, rid_offset=100)
        assert [r.rid for r in reqs] == [100, 101, 102, 103, 104]

    def test_perfect_prediction_equals_demand(self, tiny_search_workload, rng):
        reqs = tiny_search_workload.make_requests(100, rng, prediction="perfect")
        for r in reqs:
            assert r.predicted_ms == pytest.approx(r.demand_ms)

    def test_oracle_mode_perturbs(self, tiny_search_workload, rng):
        reqs = tiny_search_workload.make_requests(
            200, rng, prediction="oracle", oracle_sigma=0.5
        )
        ratios = [r.predicted_ms / r.demand_ms for r in reqs]
        assert np.std(np.log(ratios)) > 0.3

    def test_model_predictions_differ_from_truth(self, tiny_search_workload, rng):
        reqs = tiny_search_workload.make_requests(200, rng, prediction="model")
        assert any(
            abs(r.predicted_ms - r.demand_ms) > 0.5 for r in reqs
        )

    def test_execution_noise_varies_repeats(self, tiny_search_workload):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        a = tiny_search_workload.make_requests(50, rng_a)
        b = tiny_search_workload.make_requests(50, rng_b)
        # Same rng -> identical trace (reproducibility).
        assert all(
            x.demand_ms == y.demand_ms for x, y in zip(a, b)
        )

    def test_rejects_bad_mode(self, tiny_search_workload, rng):
        with pytest.raises(WorkloadError):
            tiny_search_workload.make_requests(5, rng, prediction="psychic")

    def test_rejects_zero_count(self, tiny_search_workload, rng):
        with pytest.raises(WorkloadError):
            tiny_search_workload.make_requests(0, rng)


class TestMispredictedLong:
    def test_some_long_queries_predicted_short(self, tiny_search_workload, rng):
        """The crux of the paper: an imperfect predictor leaves a small
        fraction of genuinely long queries classified short."""
        reqs = tiny_search_workload.make_requests(4000, rng)
        mispredicted = [
            r for r in reqs if r.demand_ms > 80.0 and r.predicted_ms <= 80.0
        ]
        long_total = [r for r in reqs if r.demand_ms > 80.0]
        assert 0 < len(mispredicted) < len(long_total)
