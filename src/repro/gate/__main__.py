"""``python -m repro.gate`` — run the fidelity & performance gate.

Exit status: 0 when every check passes, 1 on any band violation, 2 on
usage errors or a check that crashed.  The JSON artifact is written
regardless of the verdict so CI can upload it from failing runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..errors import ConfigError, ReproError
from ..exec.cache import ResultCache
from ..exec.pool import log_progress
from .baselines import (
    default_baselines_path,
    load_baselines,
    merge_baselines,
    save_baselines,
)
from .checks import CHECKS, scale_for_mode
from .report import git_sha
from .runner import baseline_metrics, run_gate

__all__ = ["main"]


def _parse_perturb(entries: Sequence[str]) -> dict[str, float]:
    perturb: dict[str, float] = {}
    for entry in entries:
        metric, sep, factor = entry.partition("=")
        if not sep or not metric:
            raise ConfigError(
                f"--perturb expects METRIC=FACTOR, got {entry!r}"
            )
        try:
            perturb[metric] = float(factor)
        except ValueError:
            raise ConfigError(
                f"--perturb factor must be a number, got {factor!r}"
            ) from None
    return perturb


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gate",
        description=(
            "Machine-checked fidelity & performance gate: re-derives the "
            "paper's headline metrics from deterministic simulations and "
            "judges them against tolerance bands."
        ),
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--fast",
        dest="mode",
        action="store_const",
        const="fast",
        help="CI sizing: small deterministic samples (default)",
    )
    mode.add_argument(
        "--full",
        dest="mode",
        action="store_const",
        const="full",
        help="paper-scale samples (slower, tighter statistics)",
    )
    parser.set_defaults(mode="fast")
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="CHECK",
        help="run only the named check (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered checks and exit",
    )
    parser.add_argument(
        "--output",
        default="BENCH_gate.json",
        metavar="PATH",
        help="where to write the JSON report (default BENCH_gate.json)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool width (default REPRO_BENCH_WORKERS / cpu count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the exec result cache (guaranteed-cold run)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="root of the exec result cache (default REPRO_EXEC_CACHE_DIR)",
    )
    parser.add_argument(
        "--baselines",
        default=None,
        metavar="PATH",
        help=(
            "baseline JSON for relative bands "
            f"(default {default_baselines_path()})"
        ),
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="run the checks, then store their measured values as the "
        "new baselines for this mode",
    )
    parser.add_argument(
        "--perturb",
        action="append",
        default=[],
        metavar="METRIC=FACTOR",
        help="multiply a measured metric before judgement (gate self-test)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-cell progress lines",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        scale = scale_for_mode(args.mode)
        print(f"registered gate checks (mode={args.mode}):")
        for check in CHECKS.values():
            n_cells = len(check.cells(scale))
            print(
                f"  {check.name:<22} {check.description} "
                f"[{check.paper_ref}; {n_cells} cells]"
            )
        return 0

    only = None
    if args.only:
        only = [
            name.strip()
            for entry in args.only
            for name in entry.split(",")
            if name.strip()
        ]

    cache = None
    use_cache = not args.no_cache
    if use_cache and args.cache_dir is not None:
        cache = ResultCache(args.cache_dir)

    try:
        perturb = _parse_perturb(args.perturb)
        report = run_gate(
            mode=args.mode,
            only=only,
            workers=args.workers,
            cache=cache,
            use_cache=use_cache,
            baselines_path=args.baselines,
            perturb=perturb or None,
            progress=None if args.quiet else log_progress,
        )
    except ReproError as exc:
        print(f"gate error: {exc}", file=sys.stderr)
        return 2

    path = report.write(args.output)
    print(report.render_summary())
    print(f"\nreport written to {path}")

    if args.update_baselines:
        metrics = baseline_metrics(report)
        document = load_baselines(args.baselines)
        target = save_baselines(
            merge_baselines(document, args.mode, metrics, git_sha()),
            args.baselines,
        )
        print(f"baselines for mode={args.mode} updated at {target}")

    if report.status == "pass":
        return 0
    return 2 if report.status == "error" else 1


if __name__ == "__main__":
    sys.exit(main())
