"""Declarative experiment cells: what to simulate, not how.

A :class:`CellSpec` describes one (policy, load) simulation cell — the
workload to build, the policy and its knobs, the load point, the seed
and the request count — as a frozen, picklable value object.  Because a
cell is *data*, it can be shipped to a worker process, hashed into a
cache key, or compared for equality; the live ``Server``/``Engine``
objects it expands into never cross a process boundary.

:class:`WorkloadSpec` plays the same role for the expensive workload
substrate: instead of pickling a built :class:`SearchWorkload` (index,
predictor, pools), workers receive the recipe and rebuild it locally.
Workload construction is deterministic given the spec, so a rebuilt
workload is bit-identical to the original.

:class:`SweepSpec` is an ordered tuple of cells; :class:`CellResult`
is the compact, serializable outcome (latency arrays + summary) that
travels back.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..config import (
    ClusterConfig,
    FinanceConfig,
    PolicyConfig,
    PredictorConfig,
    SearchWorkloadConfig,
    ServerConfig,
)
from ..core.target_table import TargetTable
from ..errors import ConfigError
from ..sim.load import LoadMetric
from ..sim.metrics import LatencyRecorder, LatencySummary

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.runner import ExperimentResult
    from ..resilience.faults import FaultSpec
    from ..resilience.hedging import HedgePolicy

__all__ = [
    "WorkloadSpec",
    "CellSpec",
    "SweepSpec",
    "CellResult",
    "spec_hash",
]

#: Bump to invalidate every cached result when the result format or the
#: simulation semantics change incompatibly.
#: v2: cluster/resilience cell fields on CellSpec, extras on CellResult.
SPEC_SCHEMA_VERSION = 2


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure for hashing."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips doubles exactly; format stays stable.
        return repr(obj)
    if isinstance(obj, LoadMetric):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = _canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, TargetTable):
        return {"__type__": "TargetTable", "entries": _canonical(obj.entries)}
    raise ConfigError(f"cannot canonicalise {type(obj).__name__} for hashing")


def spec_hash(obj: Any) -> str:
    """Stable content hash of any spec object (hex, 16 bytes)."""
    payload = json.dumps(
        {"schema": SPEC_SCHEMA_VERSION, "value": _canonical(obj)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for (re)building a workload inside any process.

    ``kind`` selects the builder: ``"search"`` runs the full offline
    search pipeline (corpus, index, calibration, predictor), and
    ``"finance"`` assembles the Section 5.1 option-pricing workload.
    Builds are deterministic, so every process that evaluates the same
    spec holds an identical workload.
    """

    kind: str
    seed: int = 0
    pool_size: int = 12_000
    search_config: SearchWorkloadConfig | None = None
    predictor_config: PredictorConfig | None = None
    finance_config: FinanceConfig | None = None
    max_degree: int = 6
    group_bounds_ms: tuple[float, ...] | None = None
    #: Allow the builder's own on-disk intermediate cache (npz pools).
    use_workload_cache: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("search", "finance"):
            raise ConfigError(f"unknown workload kind {self.kind!r}")
        # Normalise omitted configs to their defaults so two specs that
        # build identical workloads also hash identically.
        if self.kind == "search":
            if self.search_config is None:
                object.__setattr__(self, "search_config", SearchWorkloadConfig())
            if self.predictor_config is None:
                object.__setattr__(self, "predictor_config", PredictorConfig())
        elif self.finance_config is None:
            object.__setattr__(self, "finance_config", FinanceConfig())

    @classmethod
    def search(
        cls,
        seed: int,
        config: SearchWorkloadConfig | None = None,
        predictor_config: PredictorConfig | None = None,
        pool_size: int = 12_000,
        max_degree: int = 6,
        group_bounds_ms: tuple[float, ...] | None = None,
        use_workload_cache: bool = True,
    ) -> "WorkloadSpec":
        """Spec of a full search workload (see ``build_search_workload``)."""
        return cls(
            kind="search",
            seed=seed,
            pool_size=pool_size,
            search_config=config,
            predictor_config=predictor_config,
            max_degree=max_degree,
            group_bounds_ms=group_bounds_ms,
            use_workload_cache=use_workload_cache,
        )

    @classmethod
    def finance(cls, config: FinanceConfig | None = None) -> "WorkloadSpec":
        """Spec of the finance workload (deterministic given config)."""
        return cls(kind="finance", finance_config=config)

    @classmethod
    def from_workload(cls, workload: object) -> "WorkloadSpec | None":
        """Derive the spec a built workload was constructed from.

        Returns ``None`` when the workload does not carry enough
        provenance to be rebuilt in another process (e.g. it was
        assembled by hand); callers then fall back to in-process serial
        execution.
        """
        from ..finance.workload import FinanceWorkload
        from ..search.workload import SearchWorkload

        if isinstance(workload, FinanceWorkload):
            return cls.finance(workload.config)
        if isinstance(workload, SearchWorkload):
            prov = workload.provenance
            if prov is None:
                return None
            return cls.search(
                seed=prov.seed,
                config=workload.config,
                predictor_config=prov.predictor_config,
                pool_size=prov.pool_size,
                max_degree=prov.max_degree,
                group_bounds_ms=prov.group_bounds_ms,
                use_workload_cache=prov.use_cache,
            )
        return None

    def build(self):
        """Construct the workload this spec describes (deterministic)."""
        if self.kind == "finance":
            from ..finance.workload import build_finance_workload

            return build_finance_workload(self.finance_config)
        from ..search.workload import build_search_workload

        return build_search_workload(
            seed=self.seed,
            config=self.search_config,
            predictor_config=self.predictor_config,
            pool_size=self.pool_size,
            max_degree=self.max_degree,
            group_bounds_ms=self.group_bounds_ms,
            use_cache=self.use_workload_cache,
        )

    @property
    def content_hash(self) -> str:
        """Stable hash of the recipe (same spec, same hash, any process)."""
        return spec_hash(self)


@dataclass(frozen=True)
class CellSpec:
    """One (policy, load) simulation cell, fully declared.

    Expanding a cell — building the workload, instantiating the policy
    and server, replaying the trace — is a pure function of this value,
    so executing the same spec twice (in any process) yields
    bit-identical latency series.
    """

    workload: WorkloadSpec
    policy_name: str
    qps: float
    n_requests: int
    seed: int
    #: Serialized target table ((load, target) pairs) or None.
    target_entries: tuple[tuple[float, float], ...] | None = None
    server_config: ServerConfig | None = None
    policy_config: PolicyConfig | None = None
    load_metric: LoadMetric = LoadMetric.LONG_THREADS
    prediction: str = "model"
    oracle_sigma: float = 0.0
    rampup_interval_ms: float | None = None
    #: Non-None turns the cell into a cluster run (N ISNs behind an
    #: aggregator) instead of a single-server experiment.
    cluster_config: ClusterConfig | None = None
    #: Resilience options (cluster cells only); both are frozen plain
    #: data, so they participate in the content hash like every knob.
    fault_spec: "FaultSpec | None" = None
    hedge_policy: "HedgePolicy | None" = None

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigError("n_requests must be >= 1")
        if self.qps <= 0:
            raise ConfigError("qps must be > 0")
        if self.cluster_config is None and (
            self.fault_spec is not None or self.hedge_policy is not None
        ):
            raise ConfigError(
                "fault_spec / hedge_policy require a cluster cell "
                "(set cluster_config)"
            )

    @classmethod
    def for_experiment(
        cls,
        workload: WorkloadSpec,
        policy_name: str,
        qps: float,
        n_requests: int,
        seed: int,
        target_table: TargetTable | None = None,
        **kwargs: Any,
    ) -> "CellSpec":
        """Build a cell, serializing a live :class:`TargetTable`."""
        entries = target_table.entries if target_table is not None else None
        return cls(
            workload=workload,
            policy_name=policy_name,
            qps=float(qps),
            n_requests=int(n_requests),
            seed=int(seed),
            target_entries=entries,
            **kwargs,
        )

    @property
    def target_table(self) -> TargetTable | None:
        """The live target table (rebuilt from its entries)."""
        if self.target_entries is None:
            return None
        return TargetTable(self.target_entries)

    @property
    def content_hash(self) -> str:
        """Cache key: identical cells hash identically in any process."""
        return spec_hash(self)


@dataclass(frozen=True)
class SweepSpec:
    """An ordered collection of independent cells (one sweep)."""

    cells: tuple[CellSpec, ...]

    def __post_init__(self) -> None:
        if not self.cells:
            raise ConfigError("a sweep needs at least one cell")

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    @classmethod
    def grid(
        cls,
        workload: WorkloadSpec,
        policy_names: Sequence[str],
        qps_grid: Sequence[float],
        n_requests: int,
        seed: int,
        target_table: TargetTable | None = None,
        **kwargs: Any,
    ) -> "SweepSpec":
        """The cross product behind Figures 4-7: policy-major order."""
        cells = tuple(
            CellSpec.for_experiment(
                workload, name, qps, n_requests, seed,
                target_table=target_table, **kwargs,
            )
            for name in policy_names
            for qps in qps_grid
        )
        return cls(cells)

    @property
    def content_hash(self) -> str:
        """Stable hash of the whole sweep."""
        return spec_hash(self)


@dataclass
class CellResult:
    """Compact, serializable outcome of one executed cell.

    Carries everything the paper's figures and tables read — the full
    per-request latency arrays, the headline summary, and the degree
    bookkeeping — but no live simulation objects, so it pickles cheaply
    across process boundaries and onto disk.
    """

    spec_hash: str
    policy_name: str
    qps: float
    summary: LatencySummary
    responses_ms: np.ndarray
    queueing_ms: np.ndarray
    executions_ms: np.ndarray
    demands_ms: np.ndarray
    predictions_ms: np.ndarray
    initial_degrees: np.ndarray
    max_degrees: np.ndarray
    corrected: np.ndarray
    #: Wall-clock seconds the simulation took (0.0 on a cache hit).
    wall_time_s: float = 0.0
    #: Auxiliary scalar metrics (cluster cells: resilience accounting,
    #: per-ISN percentiles).  Empty for single-server cells.
    extras: dict[str, float] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_recorder(
        cls,
        spec: CellSpec,
        policy_name: str,
        recorder: LatencyRecorder,
        wall_time_s: float = 0.0,
        extras: dict[str, float] | None = None,
    ) -> "CellResult":
        """Extract the serializable outcome of a finished server run."""
        return cls(
            spec_hash=spec.content_hash,
            policy_name=policy_name,
            qps=spec.qps,
            summary=recorder.summary(),
            responses_ms=np.asarray(recorder.responses_ms, dtype=np.float64),
            queueing_ms=np.asarray(recorder.queueing_ms, dtype=np.float64),
            executions_ms=np.asarray(recorder.executions_ms, dtype=np.float64),
            demands_ms=np.asarray(recorder.demands_ms, dtype=np.float64),
            predictions_ms=np.asarray(recorder.predictions_ms, dtype=np.float64),
            initial_degrees=np.asarray(recorder.initial_degrees, dtype=np.int64),
            max_degrees=np.asarray(recorder.max_degrees, dtype=np.int64),
            corrected=np.asarray(recorder.corrected, dtype=bool),
            wall_time_s=wall_time_s,
            extras=extras if extras is not None else {},
        )

    def recorder(self) -> LatencyRecorder:
        """Rebuild a :class:`LatencyRecorder` view of this result."""
        return LatencyRecorder(
            responses_ms=self.responses_ms.tolist(),
            queueing_ms=self.queueing_ms.tolist(),
            executions_ms=self.executions_ms.tolist(),
            demands_ms=self.demands_ms.tolist(),
            predictions_ms=self.predictions_ms.tolist(),
            initial_degrees=self.initial_degrees.tolist(),
            max_degrees=self.max_degrees.tolist(),
            corrected=self.corrected.tolist(),
        )

    def to_experiment_result(self) -> "ExperimentResult":
        """Adapt to the :class:`ExperimentResult` the figure code reads."""
        from ..experiments.runner import ExperimentResult

        return ExperimentResult(
            policy_name=self.policy_name,
            qps=self.qps,
            recorder=self.recorder(),
            summary=self.summary,
        )
