"""``python -m repro.resilience`` — run named fault scenarios.

Compares Sequential / Pred / TPC under a fault campaign with and
without aggregator mitigations (wait-for-k, hedging) and writes a
``BENCH_resilience.json`` artifact in the gate's report style.

Exit status: 0 on success, 2 on usage errors or a failed run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..errors import ReproError
from ..exec.cache import ResultCache, default_cache
from ..exec.pool import log_progress
from .report import build_report, render_summary, write_report
from .scenarios import SCENARIOS, list_scenarios, run_scenario

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description=(
            "Fault-injection scenarios for the cluster layer: compare the "
            "paper's policies under stragglers, degraded nodes and "
            "blackouts, with and without hedging / partial-wait "
            "aggregation."
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario to run (repeatable; default: all shipped scenarios)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI sizing: fewer queries and ISNs per scenario",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list shipped scenarios and exit",
    )
    parser.add_argument(
        "--output",
        default="BENCH_resilience.json",
        metavar="PATH",
        help="where to write the JSON report (default BENCH_resilience.json)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool width (default REPRO_BENCH_WORKERS / cpu count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the exec result cache (guaranteed-cold run)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="root of the exec result cache (default REPRO_EXEC_CACHE_DIR)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-cell progress lines",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print("shipped resilience scenarios:")
        for scenario in list_scenarios():
            n_fast, isns_fast = scenario.sizing(True)
            n_full, isns_full = scenario.sizing(False)
            print(
                f"  {scenario.name:<20} {scenario.description} "
                f"[{isns_full} ISNs x {n_full} queries; "
                f"fast: {isns_fast} x {n_fast}]"
            )
        return 0

    names = args.scenario if args.scenario else list(SCENARIOS)
    cache = None
    if not args.no_cache:
        cache = (
            ResultCache(args.cache_dir)
            if args.cache_dir is not None
            else default_cache()
        )

    try:
        results = [
            run_scenario(
                name,
                fast=args.fast,
                workers=args.workers,
                cache=cache,
                progress=None if args.quiet else log_progress,
            )
            for name in names
        ]
    except ReproError as exc:
        print(f"resilience error: {exc}", file=sys.stderr)
        return 2

    report = build_report(results)
    path = write_report(report, args.output)
    print(render_summary(results))
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
