#!/usr/bin/env python3
"""Quickstart: run TPC against the baselines on one search server.

Builds the calibrated synthetic web-search workload (corpus, inverted
index, measured costs, trained boosted-tree predictor), then replays
the same trace through a simulated index-serving node under four
parallelism policies and prints their tail latencies.

Run:  python examples/quickstart.py
"""

from repro import default_target_table, default_workload, run_search_experiment
from repro.experiments.report import format_table


def main() -> None:
    print("Building the calibrated search workload (one-off, cached)...")
    workload = default_workload()
    stats = workload.statistics
    report = workload.predictor_report
    print(
        f"  demand: mean={stats.mean_ms:.2f} ms, median={stats.median_ms:.2f} ms, "
        f"p99={stats.p99_ms:.0f} ms, {100 * stats.long_fraction:.1f}% long (>80 ms)"
    )
    print(
        f"  predictor: L1={report.l1_error_ms:.1f} ms, "
        f"precision={report.precision:.2f}, recall={report.recall:.2f}"
    )

    qps = 450.0
    n_requests = 20_000
    table = default_target_table()
    print(f"\nReplaying {n_requests} queries at {qps:g} QPS per policy...")

    rows = []
    for policy in ("Sequential", "AP", "Pred", "TPC"):
        result = run_search_experiment(
            workload, policy, qps, n_requests, seed=1, target_table=table
        )
        summary = result.summary
        rows.append(
            [
                policy,
                round(summary.p50_ms, 1),
                round(summary.p95_ms, 1),
                round(summary.p99_ms, 1),
                round(summary.p999_ms, 1),
                f"{100 * result.recorder.correction_rate():.2f}%",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "P50", "P95", "P99", "P99.9", "corrected"],
            rows,
            title=f"Tail latency (ms) at {qps:g} QPS",
        )
    )
    print(
        "\nTPC holds the lowest P99 and P99.9: prediction parallelizes the"
        "\nlong queries early with minimal threads, and dynamic correction"
        "\nrescues the mispredicted ones before they reach the tail."
    )


if __name__ == "__main__":
    main()
