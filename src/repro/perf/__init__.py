"""Performance benchmark harness for the simulation core.

Microbenchmarks at three integration depths (bare engine, server under
load, end-to-end experiment cell), a best-of-N runner with peak-RSS
and cProfile hooks, and a JSON report (``BENCH_perf.json``) gated
against checked-in throughput baselines.  Run with::

    python -m repro.perf --fast

The ``server_under_load`` scenario is the single source of the
fidelity gate's ``perf_budget`` hot-path benchmark —
:mod:`repro.gate.checks` imports it from here.
"""

from .report import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_REGRESSION_THRESHOLD,
    build_report,
    compare_to_baseline,
    load_baseline,
    update_baseline,
    write_report,
)
from .runner import ScenarioRun, peak_rss_kb, run_scenario
from .scenarios import (
    HOTPATH_SEED,
    PRE_PR_EVENTS_PER_S,
    SCENARIOS,
    HotpathResult,
    ScenarioSpec,
    run_end_to_end_cell,
    run_engine_only,
    run_hotpath_benchmark,
    run_server_under_load,
    scenario,
)

__all__ = [
    "HOTPATH_SEED",
    "PRE_PR_EVENTS_PER_S",
    "SCENARIOS",
    "HotpathResult",
    "ScenarioSpec",
    "ScenarioRun",
    "scenario",
    "run_engine_only",
    "run_server_under_load",
    "run_end_to_end_cell",
    "run_hotpath_benchmark",
    "run_scenario",
    "peak_rss_kb",
    "build_report",
    "write_report",
    "load_baseline",
    "update_baseline",
    "compare_to_baseline",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_REGRESSION_THRESHOLD",
]
