"""W1 — Section 2 workload characterisation.

Regenerates the service-demand statistics the paper reports for the
production Bing workload: mean 13.47 ms, >85 % of queries under 15 ms,
~4 % over 80 ms, 99th-percentile demand ~200 ms (15x mean, 56x median),
and the predictor operating point of Section 2.5 (recall 0.86,
precision 0.91, mispredicted-long ~0.56 % of all queries).
"""

from conftest import emit
from repro.experiments.report import format_table

PAPER = {
    "mean_ms": 13.47,
    "median_ms": 3.57,
    "p99_ms": 200.0,
    "short_fraction(<15ms)": 0.85,
    "long_fraction(>80ms)": 0.04,
    "p99/median": 56.0,
}


def test_workload_statistics(benchmark, workload):
    stats = benchmark.pedantic(
        lambda: workload.statistics, rounds=1, iterations=1
    )
    row = stats.as_row()
    rows = [
        [key, PAPER.get(key, float("nan")), round(value, 3)]
        for key, value in row.items()
    ]
    emit(
        "workload_stats",
        format_table(
            ["statistic", "paper", "reproduced"],
            rows,
            title="Section 2 - service demand distribution",
        ),
    )
    assert abs(row["mean_ms"] - 13.47) < 0.05
    assert row["short_fraction(<15ms)"] > 0.80
    assert 0.02 < row["long_fraction(>80ms)"] < 0.08
    assert row["p99_ms"] > 10 * row["mean_ms"]


def test_predictor_operating_point(benchmark, workload):
    report = benchmark.pedantic(
        lambda: workload.predictor_report, rounds=1, iterations=1
    )
    mispred = (1 - report.recall) * workload.statistics.long_fraction
    rows = [
        ["L1 error (ms)", 14.0, round(report.l1_error_ms, 2)],
        ["precision", 0.91, round(report.precision, 3)],
        ["recall", 0.86, round(report.recall, 3)],
        ["mispredicted long (% of all)", 0.56, round(100 * mispred, 2)],
    ]
    emit(
        "predictor_operating_point",
        format_table(
            ["metric", "paper", "reproduced"],
            rows,
            title="Section 2.5 - predictor accuracy",
        ),
    )
    assert report.recall > 0.8
    assert report.precision > 0.8
    assert 0.2 < 100 * mispred < 1.2
