"""Tolerance bands and measurements: the gate's unit of judgement.

A :class:`Band` bounds one scalar metric, with absolute bounds
(``lo``/``hi``, from the paper's reported statistics) and/or
baseline-relative bounds (``rel_lo``/``rel_hi``, multiples of a
blessed measurement stored under ``benchmarks/baselines/``).  A
:class:`Measurement` pairs a metric id with its measured value and
band; :func:`evaluate_measurement` resolves the effective bounds
against the baseline and produces the pass/fail verdict the report
records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "Band",
    "Measurement",
    "EvaluatedMeasurement",
    "evaluate_measurement",
]


@dataclass(frozen=True)
class Band:
    """Acceptance bounds for one metric.

    ``lo``/``hi`` are absolute bounds.  ``rel_lo``/``rel_hi`` are
    multiples of the stored baseline value; when both an absolute and
    a relative bound exist on the same side, the *tighter* effective
    bound wins.  Relative bounds are skipped (with a note) when no
    baseline exists — a fresh clone degrades to paper-absolute
    checking instead of failing.
    """

    lo: float | None = None
    hi: float | None = None
    rel_lo: float | None = None
    rel_hi: float | None = None
    unit: str = "ms"

    def __post_init__(self) -> None:
        if all(
            b is None for b in (self.lo, self.hi, self.rel_lo, self.rel_hi)
        ):
            raise ValueError("a band needs at least one bound")

    def bounds(
        self, baseline: float | None
    ) -> tuple[float | None, float | None]:
        """Effective ``(lo, hi)`` once the baseline is folded in."""
        lo, hi = self.lo, self.hi
        if baseline is not None:
            if self.rel_lo is not None:
                rlo = baseline * self.rel_lo
                lo = rlo if lo is None else max(lo, rlo)
            if self.rel_hi is not None:
                rhi = baseline * self.rel_hi
                hi = rhi if hi is None else min(hi, rhi)
        return lo, hi

    def describe(self, baseline: float | None) -> str:
        """Human-readable rendering of the effective bounds."""
        lo, hi = self.bounds(baseline)
        left = f"{lo:g}" if lo is not None else "-inf"
        right = f"{hi:g}" if hi is not None else "+inf"
        return f"[{left}, {right}] {self.unit}".rstrip()


@dataclass(frozen=True)
class Measurement:
    """One measured metric, its band, and its provenance.

    ``band=None`` marks an informational measurement: recorded in the
    report but never judged.  ``baseline_key=True`` opts the metric
    into ``--update-baselines``: its measured value becomes the stored
    baseline other runs compare against.
    """

    metric: str
    value: float
    band: Band | None
    paper_ref: str = ""
    baseline_key: bool = False


@dataclass(frozen=True)
class EvaluatedMeasurement:
    """A measurement judged against its effective bounds."""

    metric: str
    value: float
    passed: bool
    lo: float | None
    hi: float | None
    unit: str
    baseline: float | None
    paper_ref: str
    informational: bool
    perturbed: bool
    baseline_key: bool = False
    note: str = ""

    def describe(self) -> str:
        """One summary line: value vs band, flagged on violation."""
        if self.informational:
            return f"{self.metric} = {self.value:g} {self.unit} (recorded)"
        left = f"{self.lo:g}" if self.lo is not None else "-inf"
        right = f"{self.hi:g}" if self.hi is not None else "+inf"
        verdict = "ok" if self.passed else "VIOLATED"
        tags = []
        if self.perturbed:
            tags.append("perturbed")
        if self.note:
            tags.append(self.note)
        suffix = f" ({'; '.join(tags)})" if tags else ""
        ref = f" [{self.paper_ref}]" if self.paper_ref else ""
        return (
            f"{self.metric} = {self.value:g} vs band [{left}, {right}] "
            f"{self.unit}: {verdict}{ref}{suffix}"
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready rendering for ``BENCH_gate.json``."""
        return {
            "metric": self.metric,
            "value": self.value,
            "passed": self.passed,
            "lo": self.lo,
            "hi": self.hi,
            "unit": self.unit,
            "baseline": self.baseline,
            "paper_ref": self.paper_ref,
            "informational": self.informational,
            "perturbed": self.perturbed,
            "baseline_key": self.baseline_key,
            "note": self.note,
        }


def evaluate_measurement(
    measurement: Measurement,
    baselines: Mapping[str, float] | None = None,
    perturb: Mapping[str, float] | None = None,
) -> EvaluatedMeasurement:
    """Judge one measurement: resolve bounds, apply perturbation, verdict.

    ``perturb`` maps metric ids to multiplicative factors applied to the
    measured value *before* band evaluation — the gate's self-test hook
    (a +30 % perturbation on a fidelity metric must fail exactly its
    check; see ``--perturb``).
    """
    # Coerce up front: measured values often arrive as numpy scalars,
    # which would otherwise poison the JSON report (np.bool_ verdicts).
    value = float(measurement.value)
    perturbed = False
    if perturb and measurement.metric in perturb:
        value *= float(perturb[measurement.metric])
        perturbed = True
    if measurement.band is None:
        return EvaluatedMeasurement(
            metric=measurement.metric,
            value=value,
            passed=True,
            lo=None,
            hi=None,
            unit="",
            baseline=None,
            paper_ref=measurement.paper_ref,
            informational=True,
            perturbed=perturbed,
            baseline_key=measurement.baseline_key,
        )
    band = measurement.band
    baseline = baselines.get(measurement.metric) if baselines else None
    note = ""
    if baseline is None and (band.rel_lo is not None or band.rel_hi is not None):
        note = "no baseline; relative bounds skipped"
    lo, hi = band.bounds(baseline)
    passed = bool(
        (lo is None or value >= lo) and (hi is None or value <= hi)
    )
    return EvaluatedMeasurement(
        metric=measurement.metric,
        value=value,
        passed=passed,
        lo=lo,
        hi=hi,
        unit=band.unit,
        baseline=baseline,
        paper_ref=measurement.paper_ref,
        informational=False,
        perturbed=perturbed,
        baseline_key=measurement.baseline_key,
        note=note,
    )
