"""Work-unit -> millisecond calibration against the paper's statistics.

Section 2 publishes the demand distribution of the production workload:
mean service demand 13.47 ms, more than 85 % of queries under 15 ms,
~4 % of queries over 80 ms, and a 99th-percentile demand near 200 ms
(15x the mean; 56x the median).  The synthetic workload reproduces the
*shape* through its query mixture; this module fixes the single free
unit — milliseconds per work unit — by matching the mean, and reports
the full achieved statistics so EXPERIMENTS.md can record them against
the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SearchWorkloadConfig
from ..errors import CalibrationError

__all__ = ["CalibrationResult", "calibrate_workload", "workload_statistics"]


@dataclass(frozen=True)
class WorkloadStatistics:
    """Demand-distribution statistics in the paper's terms."""

    mean_ms: float
    median_ms: float
    p99_ms: float
    max_ms: float
    short_fraction: float
    long_fraction: float
    p99_over_mean: float
    p99_over_median: float

    def as_row(self) -> dict[str, float]:
        """Flat dict for tabular reports."""
        return {
            "mean_ms": self.mean_ms,
            "median_ms": self.median_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
            "short_fraction(<15ms)": self.short_fraction,
            "long_fraction(>80ms)": self.long_fraction,
            "p99/mean": self.p99_over_mean,
            "p99/median": self.p99_over_median,
        }


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of workload calibration."""

    ms_per_unit: float
    statistics: WorkloadStatistics


def workload_statistics(
    demands_ms: np.ndarray,
    short_threshold_ms: float = 15.0,
    long_threshold_ms: float = 80.0,
) -> WorkloadStatistics:
    """Compute the paper's Section 2 statistics for a demand sample."""
    arr = np.asarray(demands_ms, dtype=np.float64)
    if arr.size == 0:
        raise CalibrationError("empty demand sample")
    mean = float(arr.mean())
    median = float(np.median(arr))
    p99 = float(np.percentile(arr, 99))
    return WorkloadStatistics(
        mean_ms=mean,
        median_ms=median,
        p99_ms=p99,
        max_ms=float(arr.max()),
        short_fraction=float((arr < short_threshold_ms).mean()),
        long_fraction=float((arr > long_threshold_ms).mean()),
        p99_over_mean=p99 / mean if mean > 0 else float("inf"),
        p99_over_median=p99 / median if median > 0 else float("inf"),
    )


def calibrate_workload(
    total_units: np.ndarray, config: SearchWorkloadConfig
) -> CalibrationResult:
    """Fix the ms-per-work-unit scale by matching the mean demand.

    The mean is the most robust anchor (the paper quotes it to two
    decimals); the rest of the distribution shape comes from the query
    mixture itself and is reported, not forced.
    """
    units = np.asarray(total_units, dtype=np.float64)
    if units.size == 0:
        raise CalibrationError("no executions to calibrate against")
    if units.min() <= 0:
        raise CalibrationError("work units must be positive")
    scale = config.target_mean_ms / float(units.mean())
    stats = workload_statistics(
        units * scale,
        short_threshold_ms=config.target_short_threshold_ms,
    )
    return CalibrationResult(ms_per_unit=scale, statistics=stats)
