"""F10 — Figure 10: 99th-percentile latency on the finance server.

Expected shape (Section 5.1): TPC lowest at every load; it beats Pred
by up to ~40 % at light/moderate load (Pred is stuck at degree 2 for
long requests) and beats AP by a large margin at high load (AP wastes
CPU parallelizing short requests).  Paper spot values at 200 RPS:
TPC P99 = 37 ms, AP = 77 ms, Pred = 46 ms, with on average 3.5
concurrent requests in the system.
"""

from conftest import (
    BENCH_SEED,
    bench_queries,
    emit,
    exec_kwargs,
)
from repro.experiments import run_load_sweep
from repro.experiments.report import format_table
from repro.experiments.scenarios import DEFAULT_RPS_GRID_FINANCE

POLICIES = ("Sequential", "AP", "Pred", "TPC")


_SWEEP_CACHE: dict[str, dict] = {}


def run_finance_sweep(finance, finance_table, finance_server_config,
                      finance_policy_config):
    """Shared by Figures 10 and 11 (computed once per session).

    Declared as one (policy x RPS) sweep so the exec pool runs the
    cells concurrently; the finance workload is rebuilt from its config
    inside each worker.
    """
    if "sweep" in _SWEEP_CACHE:
        return _SWEEP_CACHE["sweep"]
    results = run_load_sweep(
        finance,
        POLICIES,
        DEFAULT_RPS_GRID_FINANCE,
        n_requests=bench_queries(),
        seed=BENCH_SEED,
        target_table=finance_table,
        server_config=finance_server_config,
        policy_config=finance_policy_config,
        **exec_kwargs(),
    )
    _SWEEP_CACHE["sweep"] = results
    return results


def test_fig10_finance_p99(benchmark, finance, finance_table,
                           finance_server_config, finance_policy_config):
    results = benchmark.pedantic(
        lambda: run_finance_sweep(
            finance, finance_table, finance_server_config,
            finance_policy_config,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [int(rps)] + [round(results[p][i].p99_ms, 1) for p in POLICIES]
        for i, rps in enumerate(DEFAULT_RPS_GRID_FINANCE)
    ]
    emit(
        "fig10_finance_p99",
        format_table(
            ["RPS", *POLICIES],
            rows,
            title="Figure 10 - finance server P99 (ms) vs load",
        ),
    )

    for i, rps in enumerate(DEFAULT_RPS_GRID_FINANCE):
        best_prior = min(results[p][i].p99_ms for p in POLICIES[:-1])
        # TPC at or below the best prior policy at every load.
        assert results["TPC"][i].p99_ms <= best_prior * 1.10, f"rps={rps}"
        # TPC always clearly better than Sequential.
        assert results["TPC"][i].p99_ms < results["Sequential"][i].p99_ms * 0.7
    # TPC beats Pred substantially at light/moderate load (paper: 40 %).
    i200 = DEFAULT_RPS_GRID_FINANCE.index(200)
    assert results["TPC"][i200].p99_ms < results["Pred"][i200].p99_ms * 0.85
    # TPC beats AP by a large margin at high load (paper: up to 50 %).
    top = len(DEFAULT_RPS_GRID_FINANCE) - 1
    assert results["TPC"][top].p99_ms < results["AP"][top].p99_ms * 0.7
    # TPC reduces P99 over Sequential by ~half at 200 RPS (paper: 52 %).
    reduction = 1 - results["TPC"][i200].p99_ms / results["Sequential"][i200].p99_ms
    assert reduction > 0.45
