"""Scenario execution: repeats, best-of timing, RSS and profiling.

Wall-clock throughput is reported as the *best* of ``repeats`` runs —
the run least disturbed by the OS — which is the standard way to
benchmark a deterministic workload whose true cost is its minimum.

Peak RSS comes from ``resource.getrusage``: a process-wide high-water
mark, monotone over the process lifetime, so a scenario's reading
includes every scenario that ran before it in the same process.  It
bounds memory from above; run a scenario alone for an isolated figure.
"""

from __future__ import annotations

import cProfile
import sys
import time
from dataclasses import dataclass, field

from .scenarios import ScenarioSpec

__all__ = ["ScenarioRun", "run_scenario", "peak_rss_kb"]


def peak_rss_kb() -> float:
    """Process-wide peak resident set size in KiB (0.0 if unavailable).

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalise
    to KiB.  The value is a monotone high-water mark, never a
    per-scenario delta.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return rss / 1024.0
    return float(rss)


@dataclass(frozen=True)
class ScenarioRun:
    """Best-of-``repeats`` outcome of one scenario at one size."""

    name: str
    size: int
    repeats: int
    #: Metrics of the fastest repeat (scenario-specific keys; always
    #: includes ``wall_time_s`` and a throughput key).
    metrics: dict[str, float]
    #: Process peak RSS (KiB) sampled after the last repeat — a
    #: monotone high-water mark, see :func:`peak_rss_kb`.
    peak_rss_kb: float
    #: Wall time of every repeat, for dispersion reporting.
    all_wall_times_s: tuple[float, ...] = field(default_factory=tuple)

    def throughput(self, key: str) -> float:
        return self.metrics[key]


def run_scenario(
    spec: ScenarioSpec,
    size: int,
    repeats: int = 3,
    seed: int | None = None,
    profile_path: str | None = None,
) -> ScenarioRun:
    """Run ``spec`` ``repeats`` times at ``size``; keep the fastest.

    When ``profile_path`` is given one extra repeat runs under
    :mod:`cProfile` and the stats are dumped there (the profiled run
    is excluded from timing).
    """
    from .scenarios import HOTPATH_SEED

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    seed = HOTPATH_SEED if seed is None else seed
    best: dict[str, float] | None = None
    walls: list[float] = []
    for _ in range(repeats):
        metrics = dict(spec.runner(size, seed))
        walls.append(metrics["wall_time_s"])
        if best is None or metrics["wall_time_s"] < best["wall_time_s"]:
            best = metrics
    assert best is not None
    if profile_path is not None:
        profiler = cProfile.Profile(timer=time.perf_counter)
        profiler.enable()
        spec.runner(size, seed)
        profiler.disable()
        profiler.dump_stats(profile_path)
    return ScenarioRun(
        name=spec.name,
        size=size,
        repeats=repeats,
        metrics=best,
        peak_rss_kb=peak_rss_kb(),
        all_wall_times_s=tuple(walls),
    )
