"""F4 — Figure 4: 99th-percentile latency vs load, five policies.

Expected shape (Section 4.2): TPC and Pred hold ~100 ms P99 through
moderate/heavy load by parallelizing long queries only; AP and
WQ-Linear degrade with load because they parallelize indiscriminately;
Sequential is worst.  TPC additionally beats Pred at low-to-moderate
load by adapting its parallelism to spare capacity.
"""

from conftest import emit, qps_grid
from repro.experiments.report import format_table

POLICIES = ("Sequential", "WQ-Linear", "AP", "Pred", "TPC")


def test_fig4_p99_vs_load(benchmark, main_sweep):
    sweep = benchmark.pedantic(lambda: main_sweep, rounds=1, iterations=1)
    grid = qps_grid()
    rows = [
        [int(qps)] + [round(sweep[p][i].p99_ms, 1) for p in POLICIES]
        for i, qps in enumerate(grid)
    ]
    emit(
        "fig4_p99",
        format_table(
            ["QPS", *POLICIES],
            rows,
            title="Figure 4 - P99 latency (ms) vs load",
        ),
    )

    mid = len(grid) // 2  # a moderate-load index
    # TPC within the best prior work at every load (small tolerance).
    for i in range(len(grid)):
        best_prior = min(sweep[p][i].p99_ms for p in POLICIES[:-1])
        assert sweep["TPC"][i].p99_ms <= best_prior * 1.10, f"load index {i}"
    # Load-ignoring Pred loses to TPC at low/moderate load.
    assert sweep["TPC"][0].p99_ms < sweep["Pred"][0].p99_ms
    assert sweep["TPC"][mid].p99_ms < sweep["Pred"][mid].p99_ms
    # Prediction-free policies degrade sharply by the top load.
    top = len(grid) - 1
    assert sweep["AP"][top].p99_ms > sweep["TPC"][top].p99_ms * 1.3
    # Sequential is far worse than TPC everywhere.
    for i in range(len(grid)):
        assert sweep["Sequential"][i].p99_ms > sweep["TPC"][i].p99_ms * 1.5
