"""Unified observability layer: spans, metrics, attribution, export.

Zero-cost when disabled: nothing here runs unless an
:class:`Observation` (or a bare tracer) is explicitly attached to a
server, and an unobserved server executes exactly the float operations
it always did — goldens and gate event counts are unchanged.

The pieces:

``registry``
    :class:`MetricRegistry` — named counters, gauges and histograms
    with dotted per-server/per-cluster scopes.
``spans``
    :func:`assemble_spans` — per-request spans (queue wait, one
    segment per parallelism degree, terminal cause) built from the
    tracer's event stream.
``attribution``
    :class:`DecisionLog` — the policy observer recording predicted vs
    realized demand per dispatch and the trigger state of every
    correction check; :func:`tail_report` — P99/P99.9 decomposition
    into queueing / mispredicted-degree / correction-too-late /
    inherent buckets.
``export``
    Chrome trace-event JSON (:func:`chrome_trace`), its validator, and
    ASCII timeline rendering.
``observe``
    :class:`Observation` — one handle bundling all sinks;
    :func:`observe_cell` — run a declarative cell observed, results
    bit-identical to the unobserved path.
"""

from .attribution import (
    CorrectionCheck,
    DecisionLog,
    DispatchDecision,
    RequestInfo,
    TailBucket,
    TailReport,
    classify_span,
    render_tail_report,
    tail_report,
)
from .export import (
    chrome_trace,
    render_timeline,
    render_timelines,
    validate_chrome_trace,
    write_chrome_trace,
)
from .observe import Observation, observe_cell
from .registry import Counter, Gauge, Histogram, MetricRegistry, MetricScope
from .spans import RequestSpan, Segment, SpanCause, assemble_spans, slowest_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricScope",
    "RequestSpan",
    "Segment",
    "SpanCause",
    "assemble_spans",
    "slowest_spans",
    "DispatchDecision",
    "CorrectionCheck",
    "DecisionLog",
    "RequestInfo",
    "TailBucket",
    "TailReport",
    "classify_span",
    "tail_report",
    "render_tail_report",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "render_timeline",
    "render_timelines",
    "Observation",
    "observe_cell",
]
