#!/usr/bin/env python3
"""Build a target table with Algorithm 1 and inspect its effect.

The target table maps instantaneous system load to the completion
target E that drives both predictive parallelism and the dynamic-
correction trigger.  This example runs the offline construction
(Section 3.3) at reduced scale and shows what the table buys over
naive constant targets.

Run:  python examples/target_table_tuning.py   (takes ~1-2 minutes)
"""

from repro import default_workload
from repro.config import TargetTableConfig
from repro.core.table_builder import build_target_table_multistart
from repro.core.target_table import TargetTable
from repro.experiments.report import format_table
from repro.experiments.runner import make_measure_tail


def main() -> None:
    workload = default_workload()
    config = TargetTableConfig(
        load_grid=(0.0, 4.0, 10.0, 20.0),
        step_ms=10.0,
        measure_loads_qps=(150.0, 500.0, 800.0),
        measure_weights=(1.0, 1.0, 1.0),
        queries_per_measurement=4_000,
    )
    measure = make_measure_tail(workload, config, seed=42)

    print("Running BuildTargetTable (greedy gradient descent, multi-start)...")
    result = build_target_table_multistart(
        config.load_grid,
        initial_levels_ms=[25.0, 45.0],
        step_ms=config.step_ms,
        measure_tail=measure,
        max_iterations=10,
    )
    print(
        f"  {result.measurements} MeasureTail runs; best weighted tail = "
        f"{result.tail_latency_ms:.1f} ms"
    )
    print()
    print(
        format_table(
            ["load (long threads)", "target E (ms)"],
            [[f"{d:g}", f"{e:g}"] for d, e in result.table.entries],
            title="Searched target table",
        )
    )

    print("\nComparing against constant-target tables:")
    rows = []
    for name, table in (
        ("tight constant (25 ms)", TargetTable.constant(25.0)),
        ("loose constant (80 ms)", TargetTable.constant(80.0)),
        ("searched table", result.table),
    ):
        rows.append([name, round(measure(table), 1)])
    print(format_table(["table", "weighted tail (ms)"], rows))
    print(
        "\nTight targets over-parallelize under load; loose targets waste"
        "\nidle capacity.  The searched table adapts E to the load the"
        "\nscheduler actually observes."
    )


if __name__ == "__main__":
    main()
