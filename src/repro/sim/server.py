"""The ISN server model: worker pool, queue, processor sharing.

The server owns a FIFO waiting queue and a fixed pool of worker
threads.  A running request with parallelism degree ``d`` occupies
``d`` workers and progresses at rate ``S(d)`` sequential-work units per
millisecond (its true speedup), scaled by the processor-sharing factor
``min(1, C / T)`` when the total number of active threads ``T`` exceeds
the ``C`` hardware threads — modelling the OS time-sharing of Section
4.1.  Between events the remaining work of every running request is
integrated analytically (rates are piecewise constant), so the
simulation is exact, not time-stepped.

Parallelism policies plug in via three hooks: the degree chosen when a
request starts, an optional first runtime-check delay, and a check
callback that may raise the degree mid-flight (dynamic correction,
RampUp).  Raising a degree charges a configurable ramp-up penalty to
model task re-partitioning and synchronisation overhead.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..errors import SchedulingError, SimulationError
from .engine import Engine, EventHandle
from .metrics import LatencyRecorder
from .request import Request, RequestState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import ServerConfig
    from ..policies.base import ParallelismPolicy

__all__ = ["Server"]

_EPS = 1e-9


class Server:
    """One simulated index-serving node.

    Parameters
    ----------
    config:
        Hardware/worker-pool model.
    policy:
        The parallelism policy making degree decisions.
    engine:
        Event loop this server schedules on (shared in cluster runs).
    recorder:
        Destination for completed-request metrics.
    long_threshold_ms:
        Predicted-time threshold above which a request's threads count
        toward the LongT load metric (Section 4.6).
    """

    def __init__(
        self,
        config: "ServerConfig",
        policy: "ParallelismPolicy",
        engine: Engine | None = None,
        recorder: LatencyRecorder | None = None,
        long_threshold_ms: float = 80.0,
        completion_callback=None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.engine = engine if engine is not None else Engine()
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self.long_threshold_ms = float(long_threshold_ms)
        #: Optional hook invoked with each completed request (used by
        #: the cluster aggregator to observe ISN completions).
        self.completion_callback = completion_callback

        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []
        self._busy_workers = 0
        self._long_threads = 0
        self._last_advance = self.engine.now
        self._completion_handle: EventHandle | None = None
        #: Temporary cap on dispatchable workers (degraded-core fault
        #: windows); None means the full configured pool.
        self._worker_limit: int | None = None
        #: Requests withdrawn mid-flight via :meth:`cancel_request`.
        self.cancelled_count = 0

        # CPU-utilisation performance counter (sampled EMA, Section 4.6).
        self._cpu_util_ema = 0.0
        self._cpu_busy_integral = 0.0
        self._cpu_window_start = self.engine.now
        self._sampler_handle: EventHandle | None = None

        policy.bind(self)

    # ------------------------------------------------------------------
    # Load-metric surface read by policies (Section 4.6).
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.engine.now

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a worker (WQ-Linear's metric)."""
        return len(self.waiting)

    @property
    def running_count(self) -> int:
        """Number of requests currently executing."""
        return len(self.running)

    @property
    def total_active_threads(self) -> int:
        """AllT: total worker threads currently assigned to requests."""
        return self._busy_workers

    @property
    def active_long_threads(self) -> int:
        """LongT: threads of running requests predicted long (default
        TPC load metric; long threads persist and shape availability)."""
        return self._long_threads

    @property
    def worker_limit(self) -> int:
        """Workers currently dispatchable (may be degraded below config)."""
        if self._worker_limit is None:
            return self.config.worker_threads
        return self._worker_limit

    @property
    def idle_workers(self) -> int:
        """Spare worker threads (TPC's dynamic-correction resource)."""
        return max(0, self.worker_limit - self._busy_workers)

    @property
    def cpu_utilization(self) -> float:
        """CpuUtil: EMA of sampled utilisation, in [0, 1].

        Deliberately laggy — it aggregates a whole sampling window and
        carries EMA history — which is exactly why the paper finds it a
        poor instantaneous-load proxy (Figure 9).
        """
        return self._cpu_util_ema

    @property
    def completed_count(self) -> int:
        """Requests completed so far."""
        return len(self.recorder)

    # ------------------------------------------------------------------
    # Request lifecycle.
    # ------------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Accept a request at the current simulated time."""
        if request.state is not RequestState.CREATED:
            raise SimulationError(f"request {request.rid} already submitted")
        self._advance()
        request.arrival_ms = self.now
        request.state = RequestState.QUEUED
        self.waiting.append(request)
        self._ensure_sampler()
        self._dispatch()
        self._reschedule_completion()

    def _dispatch(self) -> None:
        """Start queued requests while workers are idle (FIFO)."""
        while self.waiting and self.idle_workers > 0:
            request = self.waiting.popleft()
            degree = int(self.policy.initial_degree(request, self))
            if degree < 1:
                raise SchedulingError(
                    f"{self.policy.name} chose degree {degree} < 1"
                )
            degree = min(degree, self.config.max_parallelism, self.idle_workers)
            request.state = RequestState.RUNNING
            request.start_ms = self.now
            request.degree = degree
            request.initial_degree = degree
            request.max_degree_seen = degree
            self._busy_workers += degree
            if request.predicted_ms > self.long_threshold_ms:
                self._long_threads += degree
            self.running.append(request)
            delay = self.policy.first_check_delay(request, self)
            if delay is not None:
                request.check_handle = self.engine.schedule(
                    max(0.0, float(delay)), lambda r=request: self._on_check(r)
                )

    def _on_check(self, request: Request) -> None:
        """Runtime policy check (dynamic correction / RampUp tick)."""
        request.check_handle = None
        if request.state is not RequestState.RUNNING:
            return
        self._advance()
        new_degree, next_delay = self.policy.on_check(request, self)
        if new_degree is not None and new_degree > request.degree:
            self.raise_degree(request, int(new_degree))
        if next_delay is not None and request.state is RequestState.RUNNING:
            request.check_handle = self.engine.schedule(
                max(0.0, float(next_delay)), lambda r=request: self._on_check(r)
            )
        self._reschedule_completion()

    def raise_degree(self, request: Request, new_degree: int) -> int:
        """Raise a running request's parallelism degree mid-flight.

        The grant is clamped by idle workers and the server-wide maximum
        degree; the ramp-up penalty is charged once per increase.
        Returns the degree actually granted.
        """
        if request.state is not RequestState.RUNNING:
            raise SchedulingError(
                f"cannot change degree of non-running request {request.rid}"
            )
        self._advance()
        granted = min(
            new_degree,
            self.config.max_parallelism,
            request.degree + self.idle_workers,
        )
        if granted <= request.degree:
            return request.degree
        delta = granted - request.degree
        self._busy_workers += delta
        if request.predicted_ms > self.long_threshold_ms:
            self._long_threads += delta
        request.degree = granted
        request.max_degree_seen = max(request.max_degree_seen, granted)
        request.degree_changes += 1
        request.remaining_work_ms += self.config.rampup_penalty_ms
        self._reschedule_completion()
        return granted

    def set_worker_limit(self, limit: int | None) -> None:
        """Cap the dispatchable worker pool (degraded-core fault window).

        Already-running requests keep their workers — the cap only gates
        new dispatches and degree raises — so a limit below the current
        busy count drains naturally instead of preempting.  ``None``
        restores the full configured pool.
        """
        if limit is not None:
            if limit < 1:
                raise SimulationError(f"worker limit must be >= 1, got {limit}")
            limit = min(int(limit), self.config.worker_threads)
        self._advance()
        self._worker_limit = limit
        self._dispatch()
        self._reschedule_completion()

    def cancel_request(self, request: Request) -> float:
        """Withdraw a queued or running request; returns executed work (ms).

        Frees the request's workers immediately and cancels its pending
        runtime-check event through the engine's event-cancel machinery
        (tied-request cancellation, replica kills).  Cancelled requests
        never reach the recorder or the completion callback.
        """
        if request.state is RequestState.QUEUED:
            try:
                self.waiting.remove(request)
            except ValueError:
                raise SimulationError(
                    f"request {request.rid} is not queued on this server"
                ) from None
            request.state = RequestState.CANCELLED
            request.finish_ms = self.now
            self.cancelled_count += 1
            return 0.0
        if request.state is not RequestState.RUNNING:
            raise SimulationError(
                f"cannot cancel request {request.rid} in state "
                f"{request.state.value}"
            )
        if request not in self.running:
            raise SimulationError(
                f"request {request.rid} is not running on this server"
            )
        self._advance()
        work_done = max(
            0.0, request.demand_ms - max(request.remaining_work_ms, 0.0)
        )
        self._busy_workers -= request.degree
        if request.predicted_ms > self.long_threshold_ms:
            self._long_threads -= request.degree
        if request.check_handle is not None:
            request.check_handle.cancel()
            request.check_handle = None
        self.running.remove(request)
        request.state = RequestState.CANCELLED
        request.finish_ms = self.now
        self.cancelled_count += 1
        self._dispatch()
        self._reschedule_completion()
        return work_done

    def _complete(self, request: Request) -> None:
        request.state = RequestState.COMPLETED
        request.finish_ms = self.now
        self._busy_workers -= request.degree
        if request.predicted_ms > self.long_threshold_ms:
            self._long_threads -= request.degree
        if request.check_handle is not None:
            request.check_handle.cancel()
            request.check_handle = None
        self.running.remove(request)
        self.recorder.record(request)
        if self.completion_callback is not None:
            self.completion_callback(request)

    # ------------------------------------------------------------------
    # Fluid progress integration.
    # ------------------------------------------------------------------

    def _contention_factor(self) -> float:
        """Processor-sharing slowdown of one thread.

        With ``T`` active threads the machine delivers
        ``total_throughput(T)`` core-equivalents (full speed up to the
        physical core count, diminished SMT-sibling speed beyond, a
        hard ceiling past the hardware-thread count), shared equally.
        """
        busy = self._busy_workers
        if busy <= self.config.physical_cores:
            return 1.0
        return self.config.total_throughput(busy) / busy

    def _advance(self) -> None:
        """Integrate remaining work of running requests up to ``now``."""
        now = self.now
        dt = now - self._last_advance
        if dt <= 0:
            return
        self._cpu_busy_integral += dt * self.config.total_throughput(
            self._busy_workers
        )
        factor = self._contention_factor()
        for request in self.running:
            rate = request.speedup.speedup(request.degree) * factor
            request.remaining_work_ms -= dt * rate
        self._last_advance = now

    def _reschedule_completion(self) -> None:
        """(Re)schedule the single next-completion event."""
        if self._completion_handle is not None:
            self._completion_handle.cancel()
            self._completion_handle = None
        if not self.running:
            return
        factor = self._contention_factor()
        horizon = min(
            max(r.remaining_work_ms, 0.0)
            / (r.speedup.speedup(r.degree) * factor)
            for r in self.running
        )
        self._completion_handle = self.engine.schedule(
            horizon, self._on_completion_event
        )

    def _on_completion_event(self) -> None:
        self._completion_handle = None
        self._advance()
        # A request counts as finished when its remaining work is gone or
        # its time-to-finish drops below 1 ns (guards against the clock
        # no longer resolving the step, which would re-arm forever).
        factor = self._contention_factor()
        finished = [
            r
            for r in self.running
            if r.remaining_work_ms <= _EPS
            or max(r.remaining_work_ms, 0.0)
            / (r.speedup.speedup(r.degree) * factor)
            <= 1e-6
        ]
        if not finished:
            # Rates changed between scheduling and firing; just re-arm.
            self._reschedule_completion()
            return
        for request in finished:
            self._complete(request)
        self._dispatch()
        self._reschedule_completion()

    # ------------------------------------------------------------------
    # CPU-utilisation sampler.
    # ------------------------------------------------------------------

    def _ensure_sampler(self) -> None:
        if self._sampler_handle is None:
            self._cpu_window_start = self.now
            self._cpu_busy_integral = 0.0
            self._sampler_handle = self.engine.schedule(
                self.config.cpu_sample_interval_ms, self._on_cpu_sample
            )

    def _on_cpu_sample(self) -> None:
        self._sampler_handle = None
        self._advance()
        window = self.now - self._cpu_window_start
        if window > 0:
            sample = self._cpu_busy_integral / (
                window * self.config.capacity_core_equivalents
            )
            alpha = self.config.cpu_ema_alpha
            self._cpu_util_ema = (
                alpha * min(sample, 1.0) + (1 - alpha) * self._cpu_util_ema
            )
        self._cpu_busy_integral = 0.0
        self._cpu_window_start = self.now
        if self.running or self.waiting:
            self._sampler_handle = self.engine.schedule(
                self.config.cpu_sample_interval_ms, self._on_cpu_sample
            )
        else:
            self._cpu_util_ema = 0.0

    # ------------------------------------------------------------------

    def run_to_completion(self, expected: int, max_events: int | None = None) -> None:
        """Drive the engine until ``expected`` requests have completed.

        Convenience for single-server experiments; cluster runs drive a
        shared engine externally.
        """
        budget = max_events
        while self.completed_count < expected:
            if not self.engine.step():
                raise SimulationError(
                    f"engine drained with {self.completed_count}/{expected} "
                    "requests complete"
                )
            if budget is not None:
                budget -= 1
                if budget <= 0:
                    raise SimulationError("event budget exhausted")

    def __repr__(self) -> str:
        return (
            f"Server(policy={self.policy.name}, queued={self.queue_length}, "
            f"running={self.running_count}, busy={self._busy_workers}/"
            f"{self.config.worker_threads})"
        )
