"""Parallelism policies (Table 1 of the paper, plus RampUp and TP).

Every policy decides a request's parallelism degree when it starts and
may adjust it at runtime via scheduled checks.  The information each
policy consumes is the paper's Table 1:

============  ====================  ===========  =================
Policy        Predicted exec. time  System load  Para. efficiency
============  ====================  ===========  =================
TPC           yes                   yes          yes
TP            yes                   yes          yes (no correction)
AP            no                    yes          yes
Pred          yes                   no           no
WQ-Linear     no                    yes          no
RampUp        no                    no           no
Sequential    no                    no           no
============  ====================  ===========  =================
"""

from .base import ParallelismPolicy
from .sequential import SequentialPolicy
from .ap import AdaptiveParallelismPolicy
from .pred import PredPolicy
from .wq_linear import WQLinearPolicy
from .rampup import RampUpPolicy
from .adaptive_rampup import AdaptiveRampUpPolicy
from .tp import TPPolicy
from .tpc import TPCPolicy
from .registry import POLICY_INFO, make_policy, policy_names

__all__ = [
    "ParallelismPolicy",
    "SequentialPolicy",
    "AdaptiveParallelismPolicy",
    "PredPolicy",
    "WQLinearPolicy",
    "RampUpPolicy",
    "AdaptiveRampUpPolicy",
    "TPPolicy",
    "TPCPolicy",
    "POLICY_INFO",
    "make_policy",
    "policy_names",
]
