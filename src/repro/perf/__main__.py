"""``python -m repro.perf`` — run the hot-path benchmark harness.

Runs the registered scenarios (best-of-``--repeats`` each), writes
``BENCH_perf.json``, compares throughput against the checked-in
baseline and exits non-zero on a regression beyond the threshold.

Examples::

    python -m repro.perf --fast
    python -m repro.perf --only server_under_load --repeats 5
    python -m repro.perf --fast --update-baselines
    python -m repro.perf --only engine_only --profile prof.out
"""

from __future__ import annotations

import argparse
import sys

from .report import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_REGRESSION_THRESHOLD,
    build_report,
    compare_to_baseline,
    load_baseline,
    update_baseline,
    write_report,
)
from .runner import run_scenario
from .scenarios import SCENARIOS, scenario

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark the simulation hot path.",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="small scenario sizes (CI smoke); default is full sizes",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help=f"run only this scenario (repeatable); known: {sorted(SCENARIOS)}",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per scenario"
    )
    parser.add_argument(
        "--output",
        default="BENCH_perf.json",
        help="report path (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE_PATH),
        help="baseline JSON path",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="refresh the baseline for this mode instead of gating",
    )
    parser.add_argument(
        "--regression-threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        help="relative throughput drop that fails the run (default 0.30)",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        help="also run each scenario once under cProfile; stats are "
        "dumped to PATH (single scenario) or PATH.<name> (several)",
    )
    args = parser.parse_args(argv)

    names = args.only if args.only else sorted(SCENARIOS)
    specs = [scenario(n) for n in names]

    runs = []
    for spec in specs:
        size = spec.size_for(args.fast)
        profile_path = None
        if args.profile:
            profile_path = (
                args.profile
                if len(specs) == 1
                else f"{args.profile}.{spec.name}"
            )
        print(
            f"[perf] {spec.name} (size={size}, repeats={args.repeats}) ...",
            flush=True,
        )
        run = run_scenario(
            spec, size, repeats=args.repeats, profile_path=profile_path
        )
        key = spec.throughput_key
        print(
            f"[perf]   {key}={run.metrics[key]:,.0f} "
            f"wall={run.metrics['wall_time_s']:.3f}s "
            f"peak_rss={run.peak_rss_kb / 1024.0:.0f} MiB"
        )
        runs.append(run)

    report = build_report(runs, fast=args.fast)
    write_report(report, args.output)
    print(f"[perf] wrote {args.output}")

    if args.update_baselines:
        update_baseline(report, args.baseline)
        print(f"[perf] baseline updated: {args.baseline}")
        return 0

    failures = compare_to_baseline(
        report, load_baseline(args.baseline), args.regression_threshold
    )
    for message in failures:
        print(f"[perf] REGRESSION {message}", file=sys.stderr)
    if failures:
        return 1
    print("[perf] no regressions against baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
