"""Tests for predictive-parallelism degree selection (Section 3.1)."""

import pytest

from repro.core.predictive import select_degree

from conftest import LONG_PROFILE, SHORT_PROFILE


class TestSelectDegree:
    def test_short_request_runs_sequentially(self):
        # Predicted time already below target -> degree 1.
        assert select_degree(10.0, 50.0, LONG_PROFILE) == 1

    def test_boundary_exactly_at_target_is_sequential(self):
        assert select_degree(50.0, 50.0, LONG_PROFILE) == 1

    def test_minimal_degree_meeting_target(self):
        # L = 100, E = 50: need speedup >= 2 -> degree 3 (S3 = 2.5).
        assert select_degree(100.0, 50.0, LONG_PROFILE) == 3

    def test_never_overshoots_with_extra_threads(self):
        # Degree 4 would also meet the target but wastes a thread.
        degree = select_degree(100.0, 50.0, LONG_PROFILE)
        assert LONG_PROFILE.execution_time(100.0, degree) <= 50.0
        assert LONG_PROFILE.execution_time(100.0, degree - 1) > 50.0

    def test_unattainable_target_uses_max_degree(self):
        # L = 400, E = 50: even S6 = 4.1 gives 97 ms -> use max.
        assert select_degree(400.0, 50.0, LONG_PROFILE) == 6

    def test_max_degree_cap_respected(self):
        assert select_degree(400.0, 50.0, LONG_PROFILE, max_degree=4) == 4

    def test_poor_profile_saturates_early(self):
        # Short-profile speedups barely move; an unattainable target
        # still climbs to the cap.
        assert select_degree(100.0, 50.0, SHORT_PROFILE) == 6

    def test_degree_monotone_in_predicted_time(self):
        degrees = [
            select_degree(L, 50.0, LONG_PROFILE)
            for L in (10, 40, 60, 90, 130, 200, 500)
        ]
        assert all(b >= a for a, b in zip(degrees, degrees[1:]))

    def test_degree_antimonotone_in_target(self):
        degrees = [
            select_degree(120.0, E, LONG_PROFILE)
            for E in (20, 40, 60, 80, 130)
        ]
        assert all(b <= a for a, b in zip(degrees, degrees[1:]))

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            select_degree(100.0, 50.0, LONG_PROFILE, max_degree=0)
