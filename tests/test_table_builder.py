"""Tests for Algorithm 1 (BuildTargetTable) and its extensions."""

import pytest

from repro.core.table_builder import (
    build_target_table,
    build_target_table_multistart,
    heuristic_target_table,
)
from repro.core.target_table import TargetTable
from repro.errors import TargetTableError


def quadratic_objective(optimum: dict[int, float]):
    """A synthetic MeasureTail: tail = sum of squared distances of each
    target from a per-entry optimum (plus a floor)."""

    def measure(table: TargetTable) -> float:
        return 100.0 + sum(
            (table.targets[i] - opt) ** 2 for i, opt in optimum.items()
        )

    return measure


class TestBuildTargetTable:
    def test_converges_to_separable_optimum(self):
        initial = TargetTable.uniform([0, 4, 8], 20.0)
        measure = quadratic_objective({0: 30.0, 1: 40.0, 2: 50.0})
        result = build_target_table(initial, 5.0, measure)
        assert result.table.targets == (30.0, 40.0, 50.0)

    def test_stops_at_first_local_minimum(self):
        initial = TargetTable.uniform([0], 50.0)
        measure = quadratic_objective({0: 40.0})  # optimum is BELOW start
        result = build_target_table(initial, 5.0, measure)
        # Bumps only increase targets, so the search cannot move down.
        assert result.table.targets == (50.0,)
        assert result.iterations == 0

    def test_measurement_count_bounded(self):
        initial = TargetTable.uniform([0, 4], 20.0)
        calls = []

        def measure(table):
            calls.append(table)
            return 100.0 + sum((t - 40.0) ** 2 for t in table.targets)

        result = build_target_table(initial, 10.0, measure)
        # 1 initial + (m bumps per iteration) * (iterations + final).
        assert result.measurements == len(calls)
        assert result.measurements <= 1 + 2 * (result.iterations + 1)

    def test_history_records_accepted_bumps(self):
        initial = TargetTable.uniform([0], 20.0)
        measure = quadratic_objective({0: 40.0})
        result = build_target_table(initial, 10.0, measure)
        assert len(result.history) == result.iterations == 2
        assert [h[1] for h in result.history] == [0, 0]

    def test_max_iterations_bounds_search(self):
        initial = TargetTable.uniform([0], 0.001)

        def always_improving(table):
            return 1000.0 - table.targets[0]  # monotone: never converges

        result = build_target_table(
            initial, 1.0, always_improving, max_iterations=7
        )
        assert result.iterations == 7

    def test_max_target_ceiling_respected(self):
        initial = TargetTable.uniform([0], 90.0)

        def always_improving(table):
            return 1000.0 - table.targets[0]

        result = build_target_table(
            initial, 10.0, always_improving, max_target_ms=100.0
        )
        assert result.table.targets[0] <= 100.0

    def test_rejects_bad_step(self):
        with pytest.raises(TargetTableError):
            build_target_table(TargetTable.uniform([0], 10.0), 0.0, lambda t: 1.0)


class TestMultistart:
    def test_crosses_coordination_valleys(self):
        """A coupled objective where single bumps from level 20 fail but
        a flat level 40 is optimal — multistart must find it."""

        def measure(table: TargetTable) -> float:
            spread = max(table.targets) - min(table.targets)
            centre = sum(table.targets) / len(table.targets)
            return 100.0 + 50.0 * spread + (centre - 40.0) ** 2

        grid = [0, 4, 8]
        single = build_target_table(
            TargetTable.uniform(grid, 20.0), 5.0, measure
        )
        multi = build_target_table_multistart(
            grid, [20.0, 30.0, 40.0], 5.0, measure
        )
        assert multi.tail_latency_ms < single.tail_latency_ms
        assert multi.table.targets == (40.0, 40.0, 40.0)

    def test_measurements_accumulate_across_starts(self):
        measure = quadratic_objective({0: 25.0})
        result = build_target_table_multistart([0], [20.0, 25.0], 5.0, measure)
        assert result.measurements > 2

    def test_rejects_empty_levels(self):
        with pytest.raises(TargetTableError):
            build_target_table_multistart([0], [], 5.0, lambda t: 1.0)


class TestHeuristicTable:
    def test_targets_grow_linearly_with_load(self):
        table = heuristic_target_table([0, 12, 24], 40.0, hardware_threads=24)
        assert table.targets == (40.0, 60.0, 80.0)

    def test_zero_sensitivity_is_flat(self):
        table = heuristic_target_table([0, 12], 40.0, load_sensitivity=0.0)
        assert table.targets == (40.0, 40.0)

    def test_rejects_bad_base(self):
        with pytest.raises(TargetTableError):
            heuristic_target_table([0], 0.0)
