#!/usr/bin/env python3
"""Option-pricing server: TPC beyond web search (Section 5).

Demonstrates both halves of the finance substrate:

1. the *actual* Monte Carlo pricer valuing a path-dependent Asian
   option (the computation the simulated requests stand for), and
2. the tail-latency comparison of TPC vs AP/Pred/Sequential on the
   bimodal pricing workload (10 % long requests at 9x demand).

Run:  python examples/finance_pricing.py
"""

import numpy as np

from repro.config import PolicyConfig, ServerConfig
from repro.experiments import DEFAULT_FINANCE_TARGET_TABLE, run_search_experiment
from repro.experiments.report import format_table
from repro.finance import AsianOption, MonteCarloPricer, build_finance_workload


def price_some_options() -> None:
    """Show the real pricing computation behind the workload."""
    pricer = MonteCarloPricer()
    rng = np.random.default_rng(7)
    print("Pricing Asian options by Monte Carlo (the real computation):")
    for name, option in (
        ("at-the-money call", AsianOption(spot=100, strike=100)),
        ("out-of-the-money call", AsianOption(spot=100, strike=120)),
        ("in-the-money put", AsianOption(spot=100, strike=120, is_call=False)),
    ):
        result = pricer.price(option, n_paths=20_000, n_steps=100, rng=rng)
        print(
            f"  {name:22s} value = {result.price:6.2f} "
            f"(+/- {1.96 * result.std_error:.2f}), "
            f"{result.path_steps / 1e6:.1f}M path-steps"
        )
    cost = pricer.calibrate_ms_per_path_step(n_paths=20_000, n_steps=100)
    print(f"  measured cost on this host: {cost * 1e6:.2f} ns per path-step\n")


def compare_policies() -> None:
    workload = build_finance_workload()
    server_cfg = ServerConfig(max_parallelism=workload.config.max_parallelism)
    policy_cfg = PolicyConfig(
        pred_fixed_degree=workload.config.pred_fixed_degree
    )
    print(
        f"Workload: {100 * workload.config.long_fraction:.0f}% long requests "
        f"at {workload.config.long_demand_multiplier:g}x demand "
        f"({workload.long_paths} vs {workload.short_paths} paths); "
        f"max degree {workload.config.max_parallelism}."
    )

    rows = []
    for rps in (100.0, 200.0, 400.0, 600.0):
        row = [int(rps)]
        for policy in ("Sequential", "AP", "Pred", "TPC"):
            result = run_search_experiment(
                workload, policy, rps, 15_000, seed=5,
                target_table=DEFAULT_FINANCE_TARGET_TABLE,
                server_config=server_cfg,
                policy_config=policy_cfg,
            )
            row.append(round(result.p99_ms, 1))
        rows.append(row)
    print()
    print(
        format_table(
            ["RPS", "Sequential", "AP", "Pred", "TPC"],
            rows,
            title="Finance server P99 latency (ms)",
        )
    )
    print(
        "\nBecause execution time is an accurate function of the request"
        "\nstructure (paths x steps), prediction is near-perfect here:"
        "\nTPC wins on prediction + load adaptation alone and dynamic"
        "\ncorrection (almost) never fires."
    )


if __name__ == "__main__":
    price_some_options()
    compare_policies()
