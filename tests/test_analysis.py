"""Tests for the analysis package (queueing checks, comparisons)."""

import pytest

from repro.analysis import (
    crossover_load,
    dominance_fraction,
    max_relative_reduction,
    mean_concurrency,
    offered_load_core_equivalents,
    relative_reduction,
    utilisation,
    verify_littles_law,
)
from repro.config import ServerConfig
from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.client import OpenLoopClient
from repro.sim.server import Server
import numpy as np

from conftest import make_request
from test_server import FixedDegreePolicy


class TestQueueingIdentities:
    def test_offered_load(self):
        assert offered_load_core_equivalents(450, 13.47) == pytest.approx(
            6.06, abs=0.01
        )

    def test_utilisation_matches_paper_regime(self):
        # Paper: ~73% CPU utilisation at high load; 900 QPS of 13.47 ms
        # queries on a 16.2 core-equivalent box is 75%.
        cap = ServerConfig().capacity_core_equivalents
        assert utilisation(900, 13.47, cap) == pytest.approx(0.75, abs=0.02)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            offered_load_core_equivalents(0, 10)
        with pytest.raises(SimulationError):
            utilisation(100, 10, 0)

    def test_littles_law_on_real_simulation(self):
        """Mean concurrency measured by time-integration must agree
        with lambda * W computed from the recorder."""
        server = Server(ServerConfig(), FixedDegreePolicy(1), engine=Engine())
        rng = np.random.default_rng(3)
        n, qps = 4000, 700.0
        reqs = [
            make_request(i, float(d))
            for i, d in enumerate(rng.exponential(12.0, n) + 0.5)
        ]
        client = OpenLoopClient([server])
        client.schedule_trace(server.engine, reqs, qps, rng)

        # Integrate concurrency over time by sampling busy requests.
        area = 0.0
        last = 0.0
        makespan_events = 0
        while server.completed_count < n:
            running = server.running_count + server.queue_length
            now_before = server.engine.now
            if not server.engine.step():
                break
            area += running * (server.engine.now - now_before)
            last = server.engine.now
            makespan_events += 1
        observed = area / last
        verify_littles_law(server.recorder, qps, observed, tolerance=0.1)

    def test_littles_law_detects_violations(self):
        server = Server(ServerConfig(), FixedDegreePolicy(1), engine=Engine())
        req = make_request(0, 10.0)
        server.submit(req)
        server.run_to_completion(1)
        with pytest.raises(SimulationError):
            verify_littles_law(server.recorder, 100.0, 50.0)


class TestComparisons:
    def test_relative_reduction(self):
        assert relative_reduction(100.0, 60.0) == pytest.approx(0.40)
        assert relative_reduction(100.0, 120.0) == pytest.approx(-0.20)

    def test_relative_reduction_rejects_zero_baseline(self):
        with pytest.raises(SimulationError):
            relative_reduction(0.0, 10.0)

    def test_max_relative_reduction(self):
        baseline = [100, 100, 100]
        improved = [90, 60, 80]
        best, index = max_relative_reduction(baseline, improved)
        assert best == pytest.approx(0.40)
        assert index == 1

    def test_crossover_interpolates(self):
        loads = [100, 200, 300]
        a = [10, 20, 40]
        b = [20, 20, 20]
        # a-b: -10, 0, +20 -> crossover exactly at 200.
        assert crossover_load(loads, a, b) == pytest.approx(200.0)

    def test_crossover_none_when_dominated(self):
        assert crossover_load([1, 2], [1, 1], [5, 5]) is None

    def test_crossover_fractional(self):
        loads = [0, 100]
        a = [-10, 30]
        b = [0, 0]
        assert crossover_load(loads, a, b) == pytest.approx(25.0)

    def test_dominance_fraction(self):
        a = [10, 20, 30, 45]
        b = [12, 20, 28, 40]
        assert dominance_fraction(a, b) == pytest.approx(0.5)
        assert dominance_fraction(a, b, tolerance=0.2) == pytest.approx(1.0)

    def test_misaligned_rejected(self):
        with pytest.raises(SimulationError):
            dominance_fraction([1], [1, 2])
        with pytest.raises(SimulationError):
            max_relative_reduction([], [])
        with pytest.raises(SimulationError):
            crossover_load([1], [1], [1])
