"""Tests for the open-loop client and trace replay."""

import numpy as np
import pytest

from repro.config import ServerConfig
from repro.errors import WorkloadError
from repro.sim.client import OpenLoopClient, poisson_arrival_times, replay_trace
from repro.sim.engine import Engine
from repro.sim.server import Server

from conftest import make_request
from test_server import FixedDegreePolicy


class TestPoissonArrivals:
    def test_mean_rate_matches_qps(self, rng):
        times = poisson_arrival_times(20_000, qps=500.0, rng=rng)
        mean_gap = float(np.diff(times).mean())
        assert mean_gap == pytest.approx(2.0, rel=0.05)  # 1000/500 ms

    def test_times_are_increasing(self, rng):
        times = poisson_arrival_times(100, 100.0, rng)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(WorkloadError):
            poisson_arrival_times(0, 100.0, rng)
        with pytest.raises(WorkloadError):
            poisson_arrival_times(10, 0.0, rng)


class TestOpenLoopClient:
    def test_single_server_receives_all(self, rng):
        engine = Engine()
        server = Server(ServerConfig(), FixedDegreePolicy(1), engine=engine)
        client = OpenLoopClient([server])
        reqs = [make_request(i, 5.0) for i in range(10)]
        n = client.schedule_trace(engine, reqs, qps=1000.0, rng=rng)
        assert n == 10
        server.run_to_completion(10)
        assert server.completed_count == 10

    def test_round_robin_across_servers(self, rng):
        engine = Engine()
        servers = [
            Server(ServerConfig(), FixedDegreePolicy(1), engine=engine)
            for _ in range(2)
        ]
        client = OpenLoopClient(servers, fanout=False)
        reqs = [make_request(i, 5.0) for i in range(10)]
        client.schedule_trace(engine, reqs, 1000.0, rng)
        engine.run()
        assert servers[0].completed_count == 5
        assert servers[1].completed_count == 5

    def test_fanout_requires_replica_factory(self):
        engine = Engine()
        servers = [
            Server(ServerConfig(), FixedDegreePolicy(1), engine=engine)
            for _ in range(2)
        ]
        with pytest.raises(WorkloadError):
            OpenLoopClient(servers, fanout=True)

    def test_fanout_clones_to_every_server(self, rng):
        engine = Engine()
        servers = [
            Server(ServerConfig(), FixedDegreePolicy(1), engine=engine)
            for _ in range(3)
        ]
        client = OpenLoopClient(
            servers,
            fanout=True,
            make_replica=lambda req, idx: make_request(req.rid, req.demand_ms),
        )
        reqs = [make_request(i, 5.0) for i in range(4)]
        client.schedule_trace(engine, reqs, 1000.0, rng)
        engine.run()
        for server in servers:
            assert server.completed_count == 4

    def test_empty_server_list_rejected(self):
        with pytest.raises(WorkloadError):
            OpenLoopClient([])


class TestReplayTrace:
    def test_runs_to_completion(self, rng):
        server = Server(ServerConfig(), FixedDegreePolicy(1), engine=Engine())
        reqs = [make_request(i, 10.0) for i in range(20)]
        replay_trace(server, reqs, qps=200.0, rng=rng)
        assert server.completed_count == 20
        assert len(server.recorder) == 20
