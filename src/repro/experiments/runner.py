"""Single-ISN experiment runner.

``run_search_experiment`` executes one (policy, load) cell: sample a
request trace from the workload pool, replay it through a simulated
server under the chosen policy, and collect latency and degree
statistics.  ``run_load_sweep`` produces the series behind Figures 4-7;
``make_measure_tail`` packages a predefined multi-load experiment as
the MeasureTail procedure of Algorithm 1.

Sweeps and MeasureTail route their independent cells through the
:mod:`repro.exec` layer: cells are declared as specs, optionally fanned
out across a process pool (``workers`` / ``REPRO_BENCH_WORKERS``) and
optionally memoised on disk (``cache``).  Parallel execution is
bit-identical to the serial path — every cell is deterministically
seeded and simulated in isolation either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..config import PolicyConfig, ServerConfig, TargetTableConfig
from ..core.table_builder import TableSearchResult, build_target_table
from ..core.target_table import TargetTable
from ..errors import ConfigError
from ..exec.cache import ResultCache
from ..exec.pool import ProgressEvent, run_sweep
from ..exec.spec import CellSpec, SweepSpec, WorkloadSpec
from ..policies.registry import make_policy
from ..rng import RngFactory
from ..search.workload import SearchWorkload
from ..sim.engine import Engine
from ..sim.load import LoadMetric
from ..sim.metrics import (
    LatencyRecorder,
    LatencySummary,
    degree_distribution,
    weighted_tail_latency,
)
from ..sim.server import Server
from ..sim.client import OpenLoopClient

__all__ = [
    "ExperimentResult",
    "run_search_experiment",
    "run_load_sweep",
    "make_measure_tail",
    "make_measure_tail_batch",
    "build_search_target_table",
]


@dataclass
class ExperimentResult:
    """Outcome of one (policy, load) experiment cell."""

    policy_name: str
    qps: float
    recorder: LatencyRecorder
    summary: LatencySummary

    @property
    def p99_ms(self) -> float:
        """99th-percentile response time."""
        return self.summary.p99_ms

    @property
    def p999_ms(self) -> float:
        """99.9th-percentile response time."""
        return self.summary.p999_ms

    def degree_distribution(
        self,
        long_threshold_ms: float = 80.0,
        max_degree: int = 6,
        use_max_degree: bool = True,
    ) -> dict[str, list[float]]:
        """Table 2-style degree distribution of this run."""
        return degree_distribution(
            self.recorder, long_threshold_ms, max_degree, use_max_degree
        )


def run_search_experiment(
    workload: SearchWorkload,
    policy_name: str,
    qps: float,
    n_requests: int,
    seed: int,
    target_table: TargetTable | None = None,
    server_config: ServerConfig | None = None,
    policy_config: PolicyConfig | None = None,
    load_metric: LoadMetric = LoadMetric.LONG_THREADS,
    prediction: str = "model",
    oracle_sigma: float = 0.0,
    rampup_interval_ms: float | None = None,
    speedup_book=None,
    observation=None,
) -> ExperimentResult:
    """Run one policy at one load over a freshly sampled trace.

    ``seed`` controls both the trace sample and the arrival process, so
    different policies at the same ``(seed, qps)`` see the *same*
    request sequence and arrival times — paired comparisons, like
    replaying one query log against every policy.

    ``observation`` (a :class:`repro.obs.Observation`) attaches the
    observability layer — request spans, metrics, policy-decision
    attribution — to the server before any request is submitted.  The
    latency results are bit-identical with or without it.
    """
    if n_requests < 1:
        raise ConfigError("n_requests must be >= 1")
    rngs = RngFactory(seed)
    server_cfg = server_config if server_config is not None else ServerConfig()
    book = speedup_book if speedup_book is not None else workload.speedup_book
    policy = make_policy(
        policy_name,
        speedup_book=book,
        group_weights=workload.group_weights,
        target_table=target_table,
        policy_config=policy_config,
        load_metric=load_metric,
        rampup_interval_ms=rampup_interval_ms,
    )
    engine = Engine()
    server = Server(server_cfg, policy, engine=engine)
    if observation is not None:
        observation.attach(server)
    requests = workload.make_requests(
        n_requests,
        rngs.get("trace"),
        prediction=prediction,
        oracle_sigma=oracle_sigma,
    )
    client = OpenLoopClient([server])
    client.schedule_trace(engine, requests, qps, rngs.get("arrivals"))
    server.run_to_completion(n_requests)
    return ExperimentResult(
        policy_name=policy.name,
        qps=qps,
        recorder=server.recorder,
        summary=server.recorder.summary(),
    )


def run_load_sweep(
    workload: SearchWorkload,
    policy_names: Sequence[str],
    qps_grid: Sequence[float],
    n_requests: int,
    seed: int,
    target_table: TargetTable | None = None,
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
    **kwargs,
) -> dict[str, list[ExperimentResult]]:
    """All (policy, load) cells: ``{policy: [result per QPS]}``.

    Independent cells are executed through :func:`repro.exec.run_sweep`
    when the workload can be declared as a spec (it carries build
    provenance and no in-memory overrides like ``speedup_book`` are in
    play); otherwise the sweep falls back to an in-process serial loop.
    Either path returns identical numbers.
    """
    wspec = (
        WorkloadSpec.from_workload(workload)
        if kwargs.get("speedup_book") is None
        else None
    )
    if wspec is None:
        results: dict[str, list[ExperimentResult]] = {}
        for name in policy_names:
            results[name] = [
                run_search_experiment(
                    workload, name, qps, n_requests, seed,
                    target_table=target_table, **kwargs,
                )
                for qps in qps_grid
            ]
        return results

    kwargs.pop("speedup_book", None)
    sweep = SweepSpec.grid(
        wspec, policy_names, qps_grid, n_requests, seed,
        target_table=target_table, **kwargs,
    )
    cell_results = run_sweep(sweep, workers=workers, cache=cache, progress=progress)
    results = {}
    per_policy = len(qps_grid)
    for p, name in enumerate(policy_names):
        series = cell_results[p * per_policy : (p + 1) * per_policy]
        results[name] = [r.to_experiment_result() for r in series]
    return results


def _measure_cells(
    wspec: WorkloadSpec,
    tables: Sequence[TargetTable],
    table_config: TargetTableConfig,
    seed: int,
    count: int,
    server_config: ServerConfig | None,
    load_metric: LoadMetric,
) -> list[CellSpec]:
    """The (candidate table x measure load) cells of MeasureTail."""
    return [
        CellSpec.for_experiment(
            wspec, "TPC", qps, count, seed,
            target_table=table,
            server_config=server_config,
            load_metric=load_metric,
        )
        for table in tables
        for qps in table_config.measure_loads_qps
    ]


def make_measure_tail(
    workload: SearchWorkload,
    table_config: TargetTableConfig,
    seed: int,
    n_requests: int | None = None,
    server_config: ServerConfig | None = None,
    load_metric: LoadMetric = LoadMetric.LONG_THREADS,
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> Callable[[TargetTable], float]:
    """The MeasureTail procedure of Algorithm 1.

    Returns a callable that runs the predefined experiment — TPC over
    every load in ``table_config.measure_loads_qps`` — with a candidate
    table and returns the weighted sum of the per-load tail latencies.
    The per-load runs route through :mod:`repro.exec`, so a result
    cache makes repeated evaluations of the same candidate table free.
    """
    measure_batch = make_measure_tail_batch(
        workload, table_config, seed,
        n_requests=n_requests,
        server_config=server_config,
        load_metric=load_metric,
        workers=workers,
        cache=cache,
    )

    def measure(table: TargetTable) -> float:
        return measure_batch([table])[0]

    return measure


def make_measure_tail_batch(
    workload: SearchWorkload,
    table_config: TargetTableConfig,
    seed: int,
    n_requests: int | None = None,
    server_config: ServerConfig | None = None,
    load_metric: LoadMetric = LoadMetric.LONG_THREADS,
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> Callable[[Sequence[TargetTable]], list[float]]:
    """Batched MeasureTail: evaluate several candidate tables at once.

    The greedy search of Algorithm 1 measures every single-entry bump of
    the current table per iteration; those candidates are independent,
    so evaluating them as one sweep lets the process pool run
    ``len(tables) * len(measure_loads_qps)`` simulations concurrently.
    """
    count = (
        n_requests
        if n_requests is not None
        else table_config.queries_per_measurement
    )
    wspec = WorkloadSpec.from_workload(workload)
    loads = len(table_config.measure_loads_qps)

    def measure_batch(tables: Sequence[TargetTable]) -> list[float]:
        if wspec is None:
            # No rebuildable spec: run in-process, serially.
            samples_per_table = [
                [
                    run_search_experiment(
                        workload, "TPC", qps, count, seed,
                        target_table=table,
                        server_config=server_config,
                        load_metric=load_metric,
                    ).recorder.responses
                    for qps in table_config.measure_loads_qps
                ]
                for table in tables
            ]
        else:
            cells = _measure_cells(
                wspec, tables, table_config, seed, count,
                server_config, load_metric,
            )
            results = run_sweep(cells, workers=workers, cache=cache)
            samples_per_table = [
                [r.responses_ms for r in results[t * loads : (t + 1) * loads]]
                for t in range(len(tables))
            ]
        return [
            weighted_tail_latency(
                samples, table_config.measure_weights, table_config.percentile
            )
            for samples in samples_per_table
        ]

    return measure_batch


def build_search_target_table(
    workload: SearchWorkload,
    table_config: TargetTableConfig | None = None,
    seed: int = 1234,
    workers: int | None = None,
    cache: ResultCache | None = None,
    **measure_kwargs,
) -> TableSearchResult:
    """Run Algorithm 1 end-to-end for a search workload.

    The candidate measurements of each greedy iteration fan out across
    the :mod:`repro.exec` process pool; the accepted table, iteration
    trace and measurement count are bit-identical to a serial search.
    """
    cfg = table_config if table_config is not None else TargetTableConfig()
    initial = TargetTable.uniform(cfg.load_grid, cfg.initial_target_ms)
    measure = make_measure_tail(
        workload, cfg, seed, workers=workers, cache=cache, **measure_kwargs
    )
    measure_batch = make_measure_tail_batch(
        workload, cfg, seed, workers=workers, cache=cache, **measure_kwargs
    )
    return build_target_table(
        initial,
        cfg.step_ms,
        measure,
        max_iterations=cfg.max_iterations,
        measure_tail_batch=measure_batch,
    )
