"""Tests for configuration validation."""

import pytest

from repro.config import (
    ClusterConfig,
    FinanceConfig,
    PolicyConfig,
    PredictorConfig,
    SearchWorkloadConfig,
    ServerConfig,
    TargetTableConfig,
    validate_group_bounds,
)
from repro.errors import ConfigError


class TestServerConfig:
    def test_defaults_match_paper_testbed(self):
        cfg = ServerConfig()
        assert cfg.hardware_threads == 24
        assert cfg.physical_cores == 12
        assert cfg.worker_threads == 28
        assert cfg.max_parallelism == 6

    def test_rejects_max_parallelism_above_workers(self):
        with pytest.raises(ConfigError):
            ServerConfig(worker_threads=4, max_parallelism=5)

    def test_rejects_zero_hardware_threads(self):
        with pytest.raises(ConfigError):
            ServerConfig(hardware_threads=0)

    def test_rejects_physical_cores_above_hardware_threads(self):
        with pytest.raises(ConfigError):
            ServerConfig(hardware_threads=8, physical_cores=9)

    def test_with_returns_modified_copy(self):
        cfg = ServerConfig()
        other = cfg.with_(max_parallelism=4)
        assert other.max_parallelism == 4
        assert cfg.max_parallelism == 6

    def test_total_throughput_linear_below_physical(self):
        cfg = ServerConfig()
        assert cfg.total_throughput(6) == 6.0
        assert cfg.total_throughput(12) == 12.0

    def test_total_throughput_smt_region(self):
        cfg = ServerConfig()
        expected = 12 + 0.35 * 6
        assert cfg.total_throughput(18) == pytest.approx(expected)

    def test_total_throughput_saturates_at_hardware_threads(self):
        cfg = ServerConfig()
        cap = cfg.capacity_core_equivalents
        assert cfg.total_throughput(24) == pytest.approx(cap)
        assert cfg.total_throughput(28) == pytest.approx(cap)

    def test_capacity_core_equivalents(self):
        cfg = ServerConfig()
        assert cfg.capacity_core_equivalents == pytest.approx(12 + 0.35 * 12)


class TestSearchWorkloadConfig:
    def test_defaults_valid(self):
        cfg = SearchWorkloadConfig()
        assert cfg.target_mean_ms == pytest.approx(13.47)

    def test_rejects_bad_hard_fraction(self):
        with pytest.raises(ConfigError):
            SearchWorkloadConfig(hard_query_fraction=1.5)

    def test_rejects_inverted_keyword_range(self):
        with pytest.raises(ConfigError):
            SearchWorkloadConfig(easy_keywords=(4, 2))

    def test_rejects_nonpositive_grain(self):
        with pytest.raises(ConfigError):
            SearchWorkloadConfig(task_grain_units=0)


class TestPredictorConfig:
    def test_defaults_valid(self):
        cfg = PredictorConfig()
        assert cfg.long_threshold_ms == 80.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_trees": 0},
            {"learning_rate": 0},
            {"learning_rate": 1.5},
            {"max_depth": 0},
            {"subsample": 0},
            {"train_fraction": 1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            PredictorConfig(**kwargs)


class TestPolicyConfig:
    def test_defaults_valid(self):
        cfg = PolicyConfig()
        assert cfg.pred_fixed_degree == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"long_threshold_ms": 0},
            {"pred_fixed_degree": 0},
            {"rampup_interval_ms": 0},
            {"wq_linear_beta": 0},
            {"correction_recheck_ms": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            PolicyConfig(**kwargs)


class TestTargetTableConfig:
    def test_defaults_valid(self):
        cfg = TargetTableConfig()
        assert len(cfg.measure_weights) == len(cfg.measure_loads_qps)

    def test_rejects_descending_grid(self):
        with pytest.raises(ConfigError):
            TargetTableConfig(load_grid=(4.0, 2.0))

    def test_rejects_weight_mismatch(self):
        with pytest.raises(ConfigError):
            TargetTableConfig(
                measure_loads_qps=(100.0,), measure_weights=(1.0, 2.0)
            )

    def test_rejects_bad_percentile(self):
        with pytest.raises(ConfigError):
            TargetTableConfig(percentile=100.0)


class TestClusterConfig:
    def test_defaults_are_forty_isns(self):
        assert ClusterConfig().num_isns == 40

    def test_rejects_zero_isns(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_isns=0)


class TestFinanceConfig:
    def test_defaults_match_section_5(self):
        cfg = FinanceConfig()
        assert cfg.long_fraction == pytest.approx(0.10)
        assert cfg.long_demand_multiplier == pytest.approx(9.0)
        assert cfg.max_parallelism == 4
        assert cfg.pred_fixed_degree == 2

    def test_rejects_long_not_longer(self):
        with pytest.raises(ConfigError):
            FinanceConfig(long_demand_multiplier=1.0)

    def test_rejects_serial_fraction_one(self):
        with pytest.raises(ConfigError):
            FinanceConfig(serial_fraction=1.0)


class TestGroupBounds:
    def test_valid_bounds_pass_through(self):
        assert validate_group_bounds([30.0, 80.0]) == (30.0, 80.0)

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigError):
            validate_group_bounds([80.0, 30.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            validate_group_bounds([0.0, 30.0])
