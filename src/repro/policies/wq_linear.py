"""WQ-Linear [33]: degree inversely proportional to queue length.

Work-Queue Linear considers only system load, measured as the number of
queries waiting in the queue: every query — short or long alike — is
parallelized with ``degree = clamp(P / (1 + queue / beta))``.  An empty
queue yields the maximum degree; a backlog collapses everything toward
sequential execution.  Because it cannot tell short from long queries,
it wastes threads parallelizing short queries at light load and starves
long queries at heavy load (Section 4.2).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..errors import ConfigError
from .base import ParallelismPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = ["WQLinearPolicy"]


class WQLinearPolicy(ParallelismPolicy):
    """Queue-length-driven degree selection (DoPE-style)."""

    name = "WQ-Linear"

    def __init__(self, beta: float = 1.0) -> None:
        if beta <= 0:
            raise ConfigError("beta must be > 0")
        self.beta = float(beta)

    def initial_degree(self, request: "Request", server: "Server") -> int:
        max_degree = server.config.max_parallelism
        degree = math.ceil(max_degree / (1.0 + server.queue_length / self.beta))
        return max(1, min(max_degree, degree))
