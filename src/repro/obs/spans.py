"""Span-based view of request timelines.

A :class:`RequestSpan` upgrades the flat per-request event stream of
:class:`repro.sim.tracing.RequestTracer` into a structured span: the
queue-wait phase, one execution :class:`Segment` per parallelism
degree the request ran at, and a terminal cause (completed, cancelled,
hedge-superseded, or still open when the trace was truncated).  Spans
are what the exporters render and what the tail-attribution report
classifies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..errors import SimulationError
from ..sim.tracing import TraceEventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.tracing import RequestTracer, TraceEvent

__all__ = ["SpanCause", "Segment", "RequestSpan", "assemble_spans", "slowest_spans"]


class SpanCause(enum.Enum):
    """How (or whether) a request's span ended."""

    COMPLETED = "completed"
    CANCELLED = "cancelled"
    #: Cancelled because the other member of its hedge pair delivered
    #: the shard's result first (tied-request cancellation).
    HEDGE_SUPERSEDED = "hedge-superseded"
    #: No terminal event in the trace (capacity truncation, or the
    #: request was still in flight when tracing stopped).
    OPEN = "open"

    @property
    def terminal(self) -> bool:
        """Whether the span actually ended inside the trace."""
        return self is not SpanCause.OPEN


@dataclass(frozen=True)
class Segment:
    """One contiguous stretch of execution at a fixed degree."""

    start_ms: float
    end_ms: float
    degree: int

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class RequestSpan:
    """The structured lifetime of one request.

    ``dispatch_ms`` is None for requests cancelled while still queued
    (or whose dispatch event was dropped); ``end_ms`` is None only for
    OPEN spans.
    """

    rid: int
    arrival_ms: float
    dispatch_ms: float | None
    end_ms: float | None
    cause: SpanCause
    segments: tuple[Segment, ...]

    @property
    def queue_wait_ms(self) -> float:
        """Arrival to dispatch (to termination if never dispatched)."""
        if self.dispatch_ms is not None:
            return self.dispatch_ms - self.arrival_ms
        if self.end_ms is not None:
            return self.end_ms - self.arrival_ms
        return 0.0

    @property
    def response_ms(self) -> float:
        """Arrival to termination (raises on OPEN spans)."""
        if self.end_ms is None:
            raise SimulationError(f"span of request {self.rid} is still open")
        return self.end_ms - self.arrival_ms

    @property
    def execution_ms(self) -> float:
        """Dispatch to termination (0.0 if never dispatched)."""
        if self.end_ms is None:
            raise SimulationError(f"span of request {self.rid} is still open")
        if self.dispatch_ms is None:
            return 0.0
        return self.end_ms - self.dispatch_ms

    @property
    def initial_degree(self) -> int:
        """Degree of the first execution segment (0 if never dispatched)."""
        return self.segments[0].degree if self.segments else 0

    @property
    def max_degree(self) -> int:
        """Highest degree any segment ran at (0 if never dispatched)."""
        return max((s.degree for s in self.segments), default=0)

    @property
    def degree_raises(self) -> int:
        """Number of mid-flight degree increases."""
        return max(0, len(self.segments) - 1)

    @property
    def corrected(self) -> bool:
        """Whether the degree was raised mid-flight."""
        return len(self.segments) > 1


def _span_from_timeline(
    rid: int, timeline: "list[TraceEvent]"
) -> RequestSpan:
    arrival_ms = timeline[0].time_ms
    dispatch_ms: float | None = None
    end_ms: float | None = None
    cause = SpanCause.OPEN
    segments: list[Segment] = []
    open_start: float | None = None
    open_degree = 0
    for event in timeline:
        kind = event.kind
        if kind is TraceEventKind.ARRIVAL:
            arrival_ms = event.time_ms
        elif kind is TraceEventKind.DISPATCH:
            dispatch_ms = event.time_ms
            open_start = event.time_ms
            open_degree = event.degree
        elif kind is TraceEventKind.DEGREE_CHANGE:
            if open_start is not None:
                segments.append(
                    Segment(open_start, event.time_ms, open_degree)
                )
            open_start = event.time_ms
            open_degree = event.degree
        else:  # COMPLETION or CANCELLED
            end_ms = event.time_ms
            if open_start is not None:
                segments.append(Segment(open_start, event.time_ms, open_degree))
                open_start = None
            if kind is TraceEventKind.COMPLETION:
                cause = SpanCause.COMPLETED
            elif event.cause == SpanCause.HEDGE_SUPERSEDED.value:
                cause = SpanCause.HEDGE_SUPERSEDED
            else:
                cause = SpanCause.CANCELLED
            break
    if cause is SpanCause.OPEN and open_start is not None:
        # Truncated trace: close the trailing segment at its own start
        # so exporters still emit balanced, monotone phase pairs.
        segments.append(Segment(open_start, open_start, open_degree))
    return RequestSpan(
        rid=rid,
        arrival_ms=arrival_ms,
        dispatch_ms=dispatch_ms,
        end_ms=end_ms,
        cause=cause,
        segments=tuple(segments),
    )


def assemble_spans(tracer: "RequestTracer") -> list[RequestSpan]:
    """One span per traced request, in rid order.

    O(total events): each request's timeline is read once through the
    tracer's per-rid index.
    """
    return [
        _span_from_timeline(rid, tracer.timeline(rid))
        for rid in sorted(tracer.requests_traced())
    ]


def slowest_spans(
    spans: Iterable[RequestSpan], n: int = 3
) -> list[RequestSpan]:
    """The ``n`` terminal spans with the largest response time."""
    closed = [s for s in spans if s.cause.terminal]
    closed.sort(key=lambda s: s.response_ms, reverse=True)
    return closed[:n]
