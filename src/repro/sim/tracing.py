"""Per-request timeline tracing.

Optional observability layer: attach a :class:`RequestTracer` to a
server and it records a timestamped event timeline for every request —
arrival, dispatch (with chosen degree), every degree change, and
completion.  Useful for debugging policies, for the examples, and for
asserting fine-grained scheduling behaviour in tests without poking at
server internals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .request import Request
    from .server import Server

__all__ = ["TraceEventKind", "TraceEvent", "RequestTracer", "attach_tracer"]


class TraceEventKind(enum.Enum):
    """Kinds of timeline events."""

    ARRIVAL = "arrival"
    DISPATCH = "dispatch"
    DEGREE_CHANGE = "degree_change"
    COMPLETION = "completion"
    #: Withdrawn mid-flight (tied-request cancellation, replica kill):
    #: terminal like COMPLETION, but may follow ARRIVAL directly when a
    #: request is cancelled while still queued.
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry of one request."""

    time_ms: float
    rid: int
    kind: TraceEventKind
    degree: int

    def __str__(self) -> str:
        return (
            f"[{self.time_ms:9.3f} ms] request {self.rid}: "
            f"{self.kind.value} (degree={self.degree})"
        )


class RequestTracer:
    """Collects :class:`TraceEvent` timelines from one server."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("capacity must be >= 1 or None")
        self.capacity = capacity
        self._events: list[TraceEvent] = []

    def record(
        self, time_ms: float, rid: int, kind: TraceEventKind, degree: int
    ) -> None:
        """Append one event (drops silently once capacity is reached)."""
        if self.capacity is not None and len(self._events) >= self.capacity:
            return
        self._events.append(TraceEvent(time_ms, rid, kind, degree))

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """All recorded events in simulation order."""
        return tuple(self._events)

    def timeline(self, rid: int) -> list[TraceEvent]:
        """Events of one request, in order."""
        return [e for e in self._events if e.rid == rid]

    def requests_traced(self) -> set[int]:
        """Ids of all requests with at least one event."""
        return {e.rid for e in self._events}

    def degree_changes(self, rid: int) -> list[tuple[float, int]]:
        """(time, new_degree) pairs of one request's mid-flight changes."""
        return [
            (e.time_ms, e.degree)
            for e in self.timeline(rid)
            if e.kind is TraceEventKind.DEGREE_CHANGE
        ]

    def format_timeline(self, rid: int) -> str:
        """Human-readable timeline of one request."""
        lines = [str(e) for e in self.timeline(rid)]
        return "\n".join(lines) if lines else f"(no events for request {rid})"

    def validate(self) -> None:
        """Check per-request event-order invariants.

        Raises :class:`SimulationError` on a malformed timeline
        (e.g. dispatch before arrival, events after completion).
        """
        order = {
            TraceEventKind.ARRIVAL: 0,
            TraceEventKind.DISPATCH: 1,
            TraceEventKind.DEGREE_CHANGE: 2,
            TraceEventKind.COMPLETION: 3,
            TraceEventKind.CANCELLED: 3,
        }
        last_time: dict[int, float] = {}
        last_stage: dict[int, int] = {}
        done: set[int] = set()
        for event in self._events:
            if event.rid in done:
                raise SimulationError(
                    f"request {event.rid} has events after completion"
                )
            if event.time_ms < last_time.get(event.rid, float("-inf")) - 1e-9:
                raise SimulationError(
                    f"request {event.rid} timeline is not monotone"
                )
            stage = order[event.kind]
            previous = last_stage.get(event.rid, -1)
            if event.kind is TraceEventKind.DEGREE_CHANGE:
                if previous < order[TraceEventKind.DISPATCH]:
                    raise SimulationError(
                        f"request {event.rid} changed degree before dispatch"
                    )
            elif stage <= previous:
                raise SimulationError(
                    f"request {event.rid} repeated stage {event.kind.value}"
                )
            last_time[event.rid] = event.time_ms
            last_stage[event.rid] = max(previous, stage)
            if event.kind in (
                TraceEventKind.COMPLETION,
                TraceEventKind.CANCELLED,
            ):
                done.add(event.rid)


def attach_tracer(
    server: "Server", capacity: int | None = None
) -> RequestTracer:
    """Instrument a server with a tracer (wraps its internal hooks).

    Must be called before any request is submitted.
    """
    if server.running or server.waiting or len(server.recorder):
        raise SimulationError("attach_tracer requires a fresh server")
    tracer = RequestTracer(capacity)

    original_submit = server.submit
    original_dispatch = server._dispatch
    original_raise = server.raise_degree
    original_complete = server._complete
    original_cancel = server.cancel_request

    def submit(request: "Request") -> None:
        original_submit(request)
        # submit() may have dispatched the request immediately; the
        # arrival event is still recorded first, then the dispatch.
        tracer._events.insert(
            _find_insert_point(tracer, server.now, request.rid),
            TraceEvent(server.now, request.rid, TraceEventKind.ARRIVAL, 0),
        )

    def dispatch() -> None:
        already_running = {id(r) for r in server.running}
        original_dispatch()
        for request in server.running:
            if id(request) not in already_running:
                tracer.record(
                    server.now,
                    request.rid,
                    TraceEventKind.DISPATCH,
                    request.degree,
                )

    def raise_degree(request: "Request", new_degree: int) -> int:
        before = request.degree
        granted = original_raise(request, new_degree)
        if granted > before:
            tracer.record(
                server.now, request.rid, TraceEventKind.DEGREE_CHANGE, granted
            )
        return granted

    def complete(request: "Request") -> None:
        original_complete(request)
        tracer.record(
            server.now, request.rid, TraceEventKind.COMPLETION, request.degree
        )

    def cancel_request(request: "Request") -> float:
        degree = request.degree
        work_done = original_cancel(request)
        tracer.record(
            server.now, request.rid, TraceEventKind.CANCELLED, degree
        )
        return work_done

    server.submit = submit  # type: ignore[method-assign]
    server._dispatch = dispatch  # type: ignore[method-assign]
    server.raise_degree = raise_degree  # type: ignore[method-assign]
    server._complete = complete  # type: ignore[method-assign]
    server.cancel_request = cancel_request  # type: ignore[method-assign]
    return tracer


def _find_insert_point(tracer: RequestTracer, now: float, rid: int) -> int:
    """Index before any same-time events of ``rid`` (its dispatch)."""
    events = tracer._events
    index = len(events)
    while index > 0:
        prev = events[index - 1]
        if prev.rid == rid and prev.time_ms >= now - 1e-12:
            index -= 1
        else:
            break
    return index
