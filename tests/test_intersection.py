"""Tests for posting-list intersection algorithms."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import WorkloadError
from repro.search.intersection import (
    intersect_gallop,
    intersect_many,
    intersect_merge,
)

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=500), max_size=80
).map(lambda xs: np.unique(np.asarray(xs, dtype=np.int64)))


class TestMerge:
    def test_known_intersection(self):
        result, _ = intersect_merge(
            np.array([1, 3, 5, 7]), np.array([3, 4, 5, 8])
        )
        np.testing.assert_array_equal(result, [3, 5])

    def test_disjoint(self):
        result, comparisons = intersect_merge(
            np.array([1, 2]), np.array([3, 4])
        )
        assert len(result) == 0
        assert comparisons <= 4

    def test_empty_input(self):
        result, comparisons = intersect_merge(np.array([]), np.array([1, 2]))
        assert len(result) == 0
        assert comparisons == 0

    def test_cost_linear_in_sizes(self):
        a = np.arange(0, 1000, 2)
        b = np.arange(1, 1001, 2)
        _, comparisons = intersect_merge(a, b)
        assert comparisons <= len(a) + len(b)

    def test_rejects_2d(self):
        with pytest.raises(WorkloadError):
            intersect_merge(np.zeros((2, 2)), np.array([1]))


class TestGallop:
    def test_matches_merge_result(self):
        a = np.array([2, 9, 14, 100, 205])
        b = np.arange(0, 300, 3)
        gallop, _ = intersect_gallop(a, b)
        merge, _ = intersect_merge(a, b)
        np.testing.assert_array_equal(gallop, merge)

    def test_cheaper_than_merge_when_skewed(self):
        small = np.array([5_000, 20_000, 80_000])
        big = np.arange(100_000)
        _, gallop_cost = intersect_gallop(small, big)
        _, merge_cost = intersect_merge(small, big)
        assert gallop_cost < merge_cost / 100

    def test_order_insensitive(self):
        a = np.array([1, 5, 9])
        b = np.arange(10)
        r1, _ = intersect_gallop(a, b)
        r2, _ = intersect_gallop(b, a)
        np.testing.assert_array_equal(r1, r2)

    @given(sorted_arrays, sorted_arrays)
    def test_agrees_with_numpy(self, a, b):
        gallop, cost = intersect_gallop(a, b)
        np.testing.assert_array_equal(gallop, np.intersect1d(a, b))
        assert cost >= 0

    @given(sorted_arrays, sorted_arrays)
    def test_merge_agrees_with_numpy(self, a, b):
        merge, cost = intersect_merge(a, b)
        np.testing.assert_array_equal(merge, np.intersect1d(a, b))
        assert cost <= len(a) + len(b)


class TestKWay:
    def test_three_way(self):
        lists = [
            np.array([1, 2, 3, 4, 5, 6]),
            np.array([2, 4, 6, 8]),
            np.array([4, 6, 10]),
        ]
        result, _ = intersect_many(lists)
        np.testing.assert_array_equal(result, [4, 6])

    def test_single_list_is_identity(self):
        a = np.array([1, 2, 3])
        result, cost = intersect_many([a])
        np.testing.assert_array_equal(result, a)
        assert cost == 0

    def test_early_exit_on_empty(self):
        lists = [np.array([]), np.arange(1000), np.arange(1000)]
        result, cost = intersect_many(lists)
        assert len(result) == 0
        assert cost == 0  # smallest-first ordering short-circuits

    def test_merge_and_gallop_agree(self):
        rng = np.random.default_rng(0)
        lists = [
            np.unique(rng.integers(0, 2000, size=s)) for s in (50, 400, 900)
        ]
        ga, _ = intersect_many(lists, gallop=True)
        me, _ = intersect_many(lists, gallop=False)
        np.testing.assert_array_equal(ga, me)

    def test_rejects_empty_list_of_lists(self):
        with pytest.raises(WorkloadError):
            intersect_many([])
