"""Pred [21]: prediction-only parallelization with a fixed degree.

Pred predicts each query's execution time with the boosted-tree
regressor and parallelizes queries predicted to exceed the long-query
threshold (80 ms for web search) using a *fixed* degree — 3 for web
search, 2 for finance, per the reported guidelines.  All other queries
run sequentially.  Pred uses no system-load information, which is why
it over-commits at light load (it could afford more parallelism) and
why mispredicted long queries dominate its 99.9th percentile.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigError
from .base import ParallelismPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = ["PredPolicy"]


class PredPolicy(ParallelismPolicy):
    """Fixed-degree parallelization of predicted-long queries."""

    name = "Pred"

    def __init__(
        self, long_threshold_ms: float = 80.0, fixed_degree: int = 3
    ) -> None:
        if long_threshold_ms <= 0:
            raise ConfigError("long_threshold_ms must be > 0")
        if fixed_degree < 1:
            raise ConfigError("fixed_degree must be >= 1")
        self.long_threshold_ms = float(long_threshold_ms)
        self.fixed_degree = int(fixed_degree)

    def initial_degree(self, request: "Request", server: "Server") -> int:
        degree = (
            self.fixed_degree
            if request.predicted_ms > self.long_threshold_ms
            else 1
        )
        observer = self.observer
        if observer is not None:
            observer.on_dispatch_decision(request, server, degree)
        return degree
