"""The execution-time predictor and its accuracy report.

Wraps the gradient-boosted regressor with the paper's two evaluation
lenses (Section 2.5): the regressor view (L1 error in ms) and the
classifier view (precision and recall of "is this query long?" at the
80 ms threshold).  An optional feature-noise knob degrades accuracy
toward a desired operating point — production features are noisier
than our synthetic index statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PredictorConfig
from ..errors import PredictionError
from .boosted import GradientBoostedRegressor

__all__ = ["ExecutionTimePredictor", "PredictorReport"]


@dataclass(frozen=True)
class PredictorReport:
    """Accuracy of a trained predictor on held-out queries."""

    l1_error_ms: float
    precision: float
    recall: float
    long_threshold_ms: float
    num_eval: int

    def as_row(self) -> dict[str, float]:
        """Flat dict for tabular reports."""
        return {
            "l1_error_ms": self.l1_error_ms,
            "precision": self.precision,
            "recall": self.recall,
            "long_threshold_ms": self.long_threshold_ms,
            "num_eval": self.num_eval,
        }


class ExecutionTimePredictor:
    """Boosted-tree predictor of sequential query execution time."""

    def __init__(self, config: PredictorConfig | None = None) -> None:
        self.config = config if config is not None else PredictorConfig()
        self._model = GradientBoostedRegressor(
            num_trees=self.config.num_trees,
            learning_rate=self.config.learning_rate,
            max_depth=self.config.max_depth,
            min_samples_leaf=self.config.min_samples_leaf,
            subsample=self.config.subsample,
        )
        self._noise_rng: np.random.Generator | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._model.is_fitted

    def fit(
        self,
        features: np.ndarray,
        demands_ms: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> "ExecutionTimePredictor":
        """Train on query features and measured sequential demands.

        Targets are fit in log space (demands span two orders of
        magnitude; log targets keep short-query accuracy from being
        drowned out) and exponentiated at prediction time.
        """
        y = np.asarray(demands_ms, dtype=np.float64)
        if (y <= 0).any():
            raise PredictionError("demands must be positive")
        X = self._noisy(np.asarray(features, dtype=np.float64), rng)
        self._model.fit(X, np.log(y), rng=rng)
        self._noise_rng = rng
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted execution time (ms) for a feature matrix."""
        X = np.asarray(features, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        X = self._noisy(X, self._noise_rng)
        return np.exp(self._model.predict(X))

    def evaluate(
        self, features: np.ndarray, demands_ms: np.ndarray
    ) -> PredictorReport:
        """L1 error plus long-query precision/recall on held-out data."""
        y = np.asarray(demands_ms, dtype=np.float64)
        predictions = self.predict(features)
        if len(predictions) != len(y):
            raise PredictionError("features and demands must align")
        threshold = self.config.long_threshold_ms
        predicted_long = predictions > threshold
        actual_long = y > threshold
        true_positive = int((predicted_long & actual_long).sum())
        precision = (
            true_positive / predicted_long.sum() if predicted_long.any() else 1.0
        )
        recall = true_positive / actual_long.sum() if actual_long.any() else 1.0
        return PredictorReport(
            l1_error_ms=float(np.abs(predictions - y).mean()),
            precision=float(precision),
            recall=float(recall),
            long_threshold_ms=threshold,
            num_eval=len(y),
        )

    def _noisy(
        self, X: np.ndarray, rng: np.random.Generator | None
    ) -> np.ndarray:
        sigma = self.config.feature_noise_sigma
        if sigma <= 0 or rng is None:
            return X
        return X * rng.lognormal(0.0, sigma, size=X.shape)
