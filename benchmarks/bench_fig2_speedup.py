"""F2 — Figure 2: average parallel speedup per demand group.

The paper measures, for short (<30 ms), mid (30-80 ms) and long
(>80 ms) queries, the average speedup at parallelism degrees 1-6:
long ~4.1x on 6 threads, mid ~2.05x, short ~1.16x.  Our speedups are
*measured* from the task-pool execution model over the calibrated
query pool, not asserted.
"""

from conftest import emit
from repro.experiments.report import format_table

PAPER_S6 = {"short": 1.16, "mid": 2.05, "long": 4.1}
GROUP_NAMES = ("short", "mid", "long")


def test_group_speedups(benchmark, workload):
    book = benchmark.pedantic(
        lambda: workload.speedup_book, rounds=1, iterations=1
    )
    rows = []
    for g, name in enumerate(GROUP_NAMES):
        profile = book.profile_of_group(g)
        rows.append(
            [name, PAPER_S6[name]]
            + [round(profile.speedup(d), 2) for d in range(1, 7)]
        )
    emit(
        "fig2_speedup",
        format_table(
            ["group", "paper S6", "S1", "S2", "S3", "S4", "S5", "S6"],
            rows,
            title="Figure 2 - average speedup by demand group",
        ),
    )
    s6 = [book.profile_of_group(g).speedup(6) for g in range(3)]
    # Ordering and rough magnitudes of Figure 2.
    assert s6[0] < 1.6
    assert 1.5 < s6[1] < 3.2
    assert 2.8 < s6[2] < 5.2
    assert s6[0] < s6[1] < s6[2]


def test_long_queries_dominate_speedup_benefit(benchmark, workload):
    """The long group's 6-thread speedup must be at least ~3x the short
    group's — the inequality that makes selective parallelism pay."""
    book = benchmark.pedantic(
        lambda: workload.speedup_book, rounds=1, iterations=1
    )
    assert book.profile_of_group(2).speedup(6) > 2.5 * book.profile_of_group(
        0
    ).speedup(6)
