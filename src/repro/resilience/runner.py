"""Cluster-cell execution for the ``repro.exec`` layer.

A :class:`~repro.exec.spec.CellSpec` with ``cluster_config`` set
expands into a full partition-aggregate cluster run instead of a
single-server experiment.  The compact result maps the aggregator's
user-visible latencies onto the ``responses_ms`` array (the sample
every downstream consumer reads percentiles from) and carries the
resilience accounting and per-ISN percentiles in ``extras``; the
per-request single-server arrays stay empty because a cluster cell has
no single meaningful per-replica decomposition of queueing vs
execution time.

Because :class:`~repro.resilience.faults.FaultSpec` and
:class:`~repro.resilience.hedging.HedgePolicy` are frozen plain data,
they participate in the cell's content hash, so faulted runs cache in
the same on-disk :class:`~repro.exec.cache.ResultCache` as everything
else: same seed, same spec — same cell, any process.
"""

from __future__ import annotations

import time

import numpy as np

from ..exec.spec import CellResult, CellSpec
from ..sim.metrics import LatencySummary, percentile

__all__ = ["execute_cluster_cell"]


def _empty_f64() -> np.ndarray:
    return np.empty(0, dtype=np.float64)


def execute_cluster_cell(spec: CellSpec) -> CellResult:
    """Expand and simulate one cluster cell (deterministic per spec)."""
    from ..cluster.cluster import run_cluster_experiment
    from ..exec.pool import memoised_workload
    from .cluster import ResilientClusterResult

    assert spec.cluster_config is not None
    started = time.perf_counter()
    workload = memoised_workload(spec.workload)
    result = run_cluster_experiment(
        workload,
        spec.policy_name,
        spec.qps,
        spec.n_requests,
        spec.seed,
        cluster_config=spec.cluster_config,
        server_config=spec.server_config,
        policy_config=spec.policy_config,
        target_table=spec.target_table,
        load_metric=spec.load_metric,
        prediction=spec.prediction,
        workers=1,  # the exec pool already parallelises across cells
        fault_spec=spec.fault_spec,
        hedge_policy=spec.hedge_policy,
    )
    latencies = np.asarray(result.aggregator_latencies_ms, dtype=np.float64)
    summary = LatencySummary(
        count=int(latencies.size),
        mean_ms=float(latencies.mean()),
        p50_ms=percentile(latencies, 50),
        p95_ms=percentile(latencies, 95),
        p99_ms=percentile(latencies, 99),
        p999_ms=percentile(latencies, 99.9),
        max_ms=float(latencies.max()),
    )
    extras: dict[str, float] = {
        "num_isns": float(result.num_isns),
        "isn_p99_ms": result.isn_percentile(99),
        "isn_p999_ms": result.isn_percentile(99.9),
    }
    if isinstance(result, ResilientClusterResult) and result.resilience:
        extras.update(result.resilience.as_row())
    return CellResult(
        spec_hash=spec.content_hash,
        policy_name=result.policy_name,
        qps=spec.qps,
        summary=summary,
        responses_ms=latencies,
        queueing_ms=_empty_f64(),
        executions_ms=_empty_f64(),
        demands_ms=_empty_f64(),
        predictions_ms=_empty_f64(),
        initial_degrees=np.empty(0, dtype=np.int64),
        max_degrees=np.empty(0, dtype=np.int64),
        corrected=np.empty(0, dtype=bool),
        wall_time_s=time.perf_counter() - started,
        extras=extras,
    )
