"""Stored gate baselines: blessed measurements for relative bands.

Machine-relative bands (e.g. "TPC p99 within 25 % of the blessed
run", "hot-path throughput at least a quarter of the blessed run")
need a reference value.  Those references live in one JSON file under
``benchmarks/baselines/``, keyed by gate mode and metric id, and are
refreshed with ``python -m repro.gate --update-baselines`` after an
intentional change to the simulation or its calibration.

Serialisation is canonical — sorted keys, fixed indentation, trailing
newline — so a write → load → write round trip is bit-stable and
baseline diffs in review show only genuinely changed values.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from ..errors import ConfigError

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "default_baselines_path",
    "load_baselines",
    "save_baselines",
    "merge_baselines",
]

BASELINE_SCHEMA_VERSION = 1

#: Filename of the single baseline store.
BASELINE_FILENAME = "gate_baseline.json"


def default_baselines_path() -> Path:
    """``benchmarks/baselines/gate_baseline.json`` in a source checkout.

    Resolved relative to this file (``src/repro/gate`` → repo root);
    for a non-editable install without the benchmarks tree, callers
    get a path that does not exist and degrade to absolute bands.
    """
    return (
        Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "baselines"
        / BASELINE_FILENAME
    )


def _canonical_bytes(payload: dict) -> bytes:
    """The one true serialisation of a baseline document."""
    return (
        json.dumps(payload, sort_keys=True, indent=2, separators=(",", ": "))
        + "\n"
    ).encode("utf-8")


def load_baselines(
    path: str | Path | None = None, mode: str | None = None
) -> dict:
    """Load the baseline document (or one mode's metric map).

    Returns ``{}`` when the file is absent — a fresh clone runs with
    paper-absolute bands only.  With ``mode`` given, returns just that
    mode's ``{metric: value}`` mapping.
    """
    target = Path(path) if path is not None else default_baselines_path()
    if not target.is_file():
        return {}
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"unreadable baseline file {target}: {exc}") from exc
    if not isinstance(document, dict):
        raise ConfigError(f"baseline file {target} is not a JSON object")
    if document.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ConfigError(
            f"baseline file {target} has schema "
            f"{document.get('schema_version')!r}, "
            f"expected {BASELINE_SCHEMA_VERSION}"
        )
    if mode is None:
        return document
    modes = document.get("modes", {})
    metrics = modes.get(mode, {})
    if not isinstance(metrics, dict):
        raise ConfigError(f"baseline mode {mode!r} is not a JSON object")
    return {str(k): float(v) for k, v in metrics.items()}


def save_baselines(document: dict, path: str | Path | None = None) -> Path:
    """Write a baseline document canonically; returns the path."""
    target = Path(path) if path is not None else default_baselines_path()
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(_canonical_bytes(document))
    return target


def merge_baselines(
    document: dict,
    mode: str,
    metrics: Mapping[str, float],
    git_sha: str = "unknown",
) -> dict:
    """Fold freshly measured values for one mode into the document.

    Other modes' entries are preserved, so fast and full baselines can
    be refreshed independently.
    """
    modes = {
        str(name): dict(values)
        for name, values in document.get("modes", {}).items()
    }
    modes[mode] = {str(k): round(float(v), 6) for k, v in metrics.items()}
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "updated_from_git_sha": git_sha,
        "modes": modes,
    }
