"""Shared-engine cluster run with fault injection and hedging.

:func:`run_shared_resilient` is the coupled counterpart of the plain
cluster experiment: faults are wall-clock windows on the shared
simulation clock and hedges move replicas between ISNs, so the run
cannot decompose into independent per-ISN simulations.  All shared
randomness (trace, arrivals, demand jitters) is drawn by the caller —
:func:`repro.cluster.cluster.run_cluster_experiment` — in the exact
stream order of the plain path, so a no-op fault spec and a no-op
hedge policy would reproduce the plain run bit-for-bit (and the plain
path is used in that case).

Replica bookkeeping
-------------------
Each logical query fans out one *shard replica* per ISN; shard ``s`` of
query ``q`` is primarily served by ISN ``s``.  A hedge re-issues a
lagging shard to a secondary ISN (the least-loaded healthy node), so a
shard can have up to two live replicas — a *tied pair*.  The first
member of the pair to complete reports to the aggregator under the
shard's id; with ``tie_cancel`` the other member is withdrawn through
:meth:`repro.sim.server.Server.cancel_request`, and its executed work
is charged to ``wasted_work_ms``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ClusterConfig, PolicyConfig, ServerConfig
from ..core.target_table import TargetTable
from ..errors import ConfigError, SimulationError
from ..policies.registry import make_policy
from ..search.workload import SearchWorkload
from ..sim.engine import Engine, EventHandle
from ..sim.load import LoadMetric
from ..sim.metrics import ResilienceStats
from ..sim.request import Request, RequestState
from ..sim.server import Server
from ..cluster.aggregator import Aggregator
from ..cluster.cluster import ClusterExperimentResult
from .faults import FaultKind, FaultSpec
from .hedging import HedgePolicy

__all__ = ["ResilientClusterResult", "run_shared_resilient"]

#: Request states a replica can still be withdrawn from.
_LIVE = (RequestState.QUEUED, RequestState.RUNNING)


@dataclass
class ResilientClusterResult(ClusterExperimentResult):
    """Cluster result plus mitigation accounting."""

    resilience: ResilienceStats | None = None
    fault_spec: FaultSpec | None = None
    hedge_policy: HedgePolicy | None = None


@dataclass
class _Replica:
    """One issued copy of a shard's work (primary or hedge)."""

    request: Request
    qid: int
    #: Shard slot this replica answers for (the primary ISN's index).
    shard: int
    #: ISN actually executing the replica.
    node: int
    is_hedge: bool
    #: The other member of a tied pair, if any.
    partner: "_Replica | None" = None


@dataclass
class _QueryState:
    """Per-logical-query progress the hedging logic needs."""

    qid: int
    arrival_ms: float
    #: Shard slots whose result has reached the aggregator.
    shards_done: set[int]
    #: First-issued (primary) replica per shard slot, if not dropped.
    primaries: dict[int, _Replica]
    emitted: bool = False
    hedges_issued: int = 0
    timer: EventHandle | None = None


def run_shared_resilient(
    workload: SearchWorkload,
    policy_name: str,
    qps: float,
    ccfg: ClusterConfig,
    scfg: ServerConfig,
    policy_config: PolicyConfig | None,
    target_table: TargetTable | None,
    load_metric: LoadMetric,
    logical,
    arrivals: np.ndarray,
    jitters: list[np.ndarray],
    fault_spec: FaultSpec | None = None,
    hedge_policy: HedgePolicy | None = None,
) -> ResilientClusterResult:
    """Run a faulted and/or hedged cluster on one shared engine.

    ``logical``, ``arrivals`` and ``jitters`` are the pre-drawn shared
    randomness (see module docstring).  Raises :class:`ConfigError`
    when the configuration cannot terminate (blackouts under strict
    wait-for-all with no hedging).
    """
    fspec = fault_spec if fault_spec is not None else FaultSpec.none()
    hpolicy = hedge_policy if hedge_policy is not None else HedgePolicy()
    num_isns = ccfg.num_isns
    n_queries = len(logical)
    fspec.validate_for(num_isns)
    wait_k = hpolicy.effective_k(num_isns)
    if fspec.has_blackouts and wait_k == num_isns and not hpolicy.hedging_enabled:
        raise ConfigError(
            "blackout windows under strict wait-for-all aggregation can "
            "drop a shard forever; enable hedging or set wait_for_k < "
            "num_isns"
        )

    engine = Engine()
    aggregator = Aggregator(
        num_isns, ccfg.network_overhead_ms, wait_for_k=wait_k
    )
    #: Replica metadata keyed by id(request) (rids are shared across a
    #: query's primary replicas, so they cannot key this map).
    meta: dict[int, _Replica] = {}
    queries: dict[int, _QueryState] = {}
    #: Live replicas per node, keyed by id(request) (blackout kills).
    node_live: list[dict[int, _Replica]] = [{} for _ in range(num_isns)]

    stats = {
        "hedges_issued": 0,
        "hedged_queries": 0,
        "hedge_wins": 0,
        "timeout_fires": 0,
        "cancelled_replicas": 0,
        "dropped_replicas": 0,
        "redundant_completions": 0,
        "wasted_work_ms": 0.0,
        "useful_work_ms": 0.0,
    }

    servers: list[Server] = []
    for isn in range(num_isns):
        policy = make_policy(
            policy_name,
            speedup_book=workload.speedup_book,
            group_weights=workload.group_weights,
            target_table=target_table,
            policy_config=policy_config,
            load_metric=load_metric,
        )

        def on_isn_complete(request: Request, isn: int = isn) -> None:
            _on_replica_complete(request)

        servers.append(
            Server(
                scfg,
                policy,
                engine=engine,
                completion_callback=on_isn_complete,
            )
        )

    def _cancel_partner(rep: _Replica) -> None:
        partner = rep.partner
        if partner is None or partner.request.state not in _LIVE:
            return
        work_done = servers[partner.node].cancel_request(
            partner.request, cause="hedge-superseded"
        )
        node_live[partner.node].pop(id(partner.request), None)
        stats["cancelled_replicas"] += 1
        stats["wasted_work_ms"] += work_done

    def _on_replica_complete(request: Request) -> None:
        rep = meta[id(request)]
        node_live[rep.node].pop(id(request), None)
        q = queries[rep.qid]
        if rep.shard in q.shards_done:
            # The tied partner already delivered this shard's result
            # (tie cancellation disabled or too late to stop this one).
            stats["redundant_completions"] += 1
            stats["wasted_work_ms"] += request.demand_ms
            return
        q.shards_done.add(rep.shard)
        was_emitted = q.emitted
        emitted_now = aggregator.on_isn_complete(rep.qid, engine.now, rep.shard)
        if was_emitted:
            # Delivered, but after the aggregator had already answered
            # (wait-for-k < n): the work bought nothing user-visible.
            stats["wasted_work_ms"] += request.demand_ms
        else:
            stats["useful_work_ms"] += request.demand_ms
        if rep.is_hedge:
            stats["hedge_wins"] += 1
        if hpolicy.tie_cancel:
            _cancel_partner(rep)
        if emitted_now:
            q.emitted = True
            if q.timer is not None:
                q.timer.cancel()
                q.timer = None

    # -- fault transitions ---------------------------------------------
    # Scheduled before the fan-outs so same-instant transitions resolve
    # first; arrival-time fault checks are time-based anyway.

    def _on_blackout_edge(isn: int, t_ms: float) -> None:
        if not fspec.is_blacked_out(isn, t_ms):
            return  # window closed; the node simply takes traffic again
        for rep in list(node_live[isn].values()):
            if rep.request.state not in _LIVE:  # pragma: no cover - guard
                continue
            work_done = servers[isn].cancel_request(
                rep.request, cause="blackout"
            )
            node_live[isn].pop(id(rep.request), None)
            stats["cancelled_replicas"] += 1
            stats["wasted_work_ms"] += work_done

    for t, isn in fspec.transition_times(FaultKind.BLACKOUT):
        engine.schedule_at(
            t, lambda isn=isn, t=t: _on_blackout_edge(isn, t)
        )
    for t, isn in fspec.transition_times(FaultKind.DEGRADED):
        engine.schedule_at(
            t,
            lambda isn=isn, t=t: servers[isn].set_worker_limit(
                fspec.worker_limit(isn, t)
            ),
        )

    # -- hedging --------------------------------------------------------

    hedge_rid = max((r.rid for r in logical), default=0) + 1  # fresh rids
    #: Position of each logical query in the pre-drawn arrays.
    position = {request.rid: i for i, request in enumerate(logical)}

    def _pick_secondary(shard: int, t_ms: float) -> int | None:
        """Least-loaded healthy node other than the shard's own ISN."""
        best: int | None = None
        best_load = -1
        for isn in range(num_isns):
            if isn == shard or fspec.is_blacked_out(isn, t_ms):
                continue
            load = servers[isn].total_active_threads
            if best is None or load < best_load:
                best, best_load = isn, load
        return best

    def _on_hedge_timer(qid: int) -> None:
        nonlocal hedge_rid
        q = queries[qid]
        q.timer = None
        if q.emitted:
            return
        stats["timeout_fires"] += 1
        now = engine.now
        lagging = sorted(set(range(num_isns)) - q.shards_done)
        issued_any = False
        for shard in lagging:
            if q.hedges_issued >= hpolicy.max_hedges_per_query:
                break
            secondary = _pick_secondary(shard, now)
            if secondary is None:
                continue
            request = logical[position[qid]]
            demand = float(
                request.demand_ms
                * jitters[position[qid]][shard]
                * fspec.demand_multiplier(secondary, now)
            )
            hedge = Request(
                rid=hedge_rid,
                demand_ms=demand,
                predicted_ms=request.predicted_ms,
                speedup=request.speedup,
            )
            hedge_rid += 1
            primary = q.primaries.get(shard)
            rep = _Replica(
                request=hedge,
                qid=qid,
                shard=shard,
                node=secondary,
                is_hedge=True,
                partner=primary,
            )
            if primary is not None:
                primary.partner = rep
            meta[id(hedge)] = rep
            node_live[secondary][id(hedge)] = rep
            servers[secondary].submit(hedge)
            q.hedges_issued += 1
            stats["hedges_issued"] += 1
            issued_any = True
        if issued_any:
            stats["hedged_queries"] += 1

    # -- fan-out --------------------------------------------------------

    for request, at, jitter in zip(logical, arrivals, jitters):
        at_ms = float(at)
        replicas: list[Request | None] = []
        for isn in range(num_isns):
            if fspec.is_blacked_out(isn, at_ms):
                replicas.append(None)
                continue
            replicas.append(
                Request(
                    rid=request.rid,
                    demand_ms=float(
                        request.demand_ms
                        * jitter[isn]
                        * fspec.demand_multiplier(isn, at_ms)
                    ),
                    predicted_ms=request.predicted_ms,
                    speedup=request.speedup,
                )
            )

        def fan_out(
            at_ms: float = at_ms,
            reps: list[Request | None] = replicas,
            qid: int = request.rid,
        ) -> None:
            q = _QueryState(
                qid=qid, arrival_ms=at_ms, shards_done=set(), primaries={}
            )
            queries[qid] = q
            aggregator.begin(qid, at_ms)
            for isn, replica in enumerate(reps):
                if replica is None:
                    stats["dropped_replicas"] += 1
                    continue
                rep = _Replica(
                    request=replica,
                    qid=qid,
                    shard=isn,
                    node=isn,
                    is_hedge=False,
                )
                q.primaries[isn] = rep
                meta[id(replica)] = rep
                node_live[isn][id(replica)] = rep
                servers[isn].submit(replica)
            if hpolicy.hedging_enabled:
                q.timer = engine.schedule_at(
                    at_ms + float(hpolicy.hedge_timeout_ms),
                    lambda qid=qid: _on_hedge_timer(qid),
                )

        engine.schedule_at(at_ms, fan_out)

    # -- drive ----------------------------------------------------------

    while aggregator.completed < n_queries:
        if not engine.step():
            raise SimulationError(
                f"engine drained with {aggregator.completed}/{n_queries} "
                "queries aggregated; a blackout likely dropped more "
                "shards than wait_for_k tolerates and no hedge recovered "
                "them"
            )
    # Drain remaining events (late replicas, timers) so the wasted-work
    # and late-completion accounting covers the whole run.
    while engine.step():
        pass

    k_coverages = aggregator.k_coverages
    resilience = ResilienceStats(
        queries=n_queries,
        num_isns=num_isns,
        hedges_issued=stats["hedges_issued"],
        hedged_queries=stats["hedged_queries"],
        hedge_wins=stats["hedge_wins"],
        timeout_fires=stats["timeout_fires"],
        cancelled_replicas=stats["cancelled_replicas"],
        dropped_replicas=stats["dropped_replicas"],
        redundant_completions=stats["redundant_completions"],
        late_completions=aggregator.late_completions,
        wasted_work_ms=stats["wasted_work_ms"],
        useful_work_ms=stats["useful_work_ms"],
        k_coverage_mean=(
            float(np.mean(k_coverages)) if k_coverages else 0.0
        ),
    )
    return ResilientClusterResult(
        policy_name=policy_name,
        qps=qps,
        num_isns=num_isns,
        aggregator_latencies_ms=np.asarray(aggregator.latencies_ms),
        isn_latencies_ms=np.asarray(aggregator.isn_latencies_ms),
        isn_recorders=[s.recorder for s in servers],
        resilience=resilience,
        fault_spec=fspec,
        hedge_policy=hpolicy,
    )
