"""Tests for the prediction substrate: trees, boosting, predictor."""

import numpy as np
import pytest

from repro.config import PredictorConfig
from repro.errors import PredictionError
from repro.prediction.boosted import GradientBoostedRegressor
from repro.prediction.oracle import NoisyOraclePredictor, PerfectPredictor
from repro.prediction.predictor import ExecutionTimePredictor
from repro.prediction.tree import FeatureBinner, RegressionTree


def toy_regression(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 3))
    y = 3.0 * X[:, 0] + np.sin(4 * X[:, 1]) + 0.1 * rng.standard_normal(n)
    return X, y


class TestFeatureBinner:
    def test_bins_are_small_ints(self):
        X, _ = toy_regression()
        binner = FeatureBinner(max_bins=32)
        binned = binner.fit(X).transform(X)
        assert binned.dtype == np.uint8
        assert binned.max() < 32

    def test_monotone_in_feature_value(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        binner = FeatureBinner(16)
        codes = binner.fit(X).transform(X)[:, 0]
        assert all(b >= a for a, b in zip(codes, codes[1:]))

    def test_transform_before_fit_rejected(self):
        with pytest.raises(PredictionError):
            FeatureBinner().transform(np.ones((3, 2)))

    def test_feature_count_mismatch_rejected(self):
        X, _ = toy_regression()
        binner = FeatureBinner().fit(X)
        with pytest.raises(PredictionError):
            binner.transform(np.ones((3, 5)))

    def test_bad_max_bins_rejected(self):
        with pytest.raises(PredictionError):
            FeatureBinner(max_bins=1)


class TestRegressionTree:
    def test_fits_a_step_function_exactly(self):
        X = np.array([[0.0], [0.1], [0.9], [1.0]] * 10)
        y = np.array([1.0, 1.0, 5.0, 5.0] * 10)
        binner = FeatureBinner(8).fit(X)
        tree = RegressionTree(max_depth=2, min_samples_leaf=2)
        tree.fit(binner.transform(X), y)
        pred = tree.predict(binner.transform(X))
        np.testing.assert_allclose(pred, y)

    def test_depth_zero_like_behaviour_on_constant_target(self):
        X = np.random.default_rng(0).uniform(size=(50, 2))
        y = np.full(50, 3.0)
        binner = FeatureBinner().fit(X)
        tree = RegressionTree().fit(binner.transform(X), y)
        assert np.allclose(tree.predict(binner.transform(X)), 3.0)

    def test_min_samples_leaf_respected(self):
        X, y = toy_regression(n=40)
        binner = FeatureBinner().fit(X)
        tree = RegressionTree(max_depth=10, min_samples_leaf=20)
        tree.fit(binner.transform(X), y)
        assert tree.num_nodes <= 3  # at most one split possible

    def test_predict_before_fit_rejected(self):
        with pytest.raises(PredictionError):
            RegressionTree().predict(np.zeros((2, 2), dtype=np.uint8))

    def test_reduces_variance_versus_mean(self):
        X, y = toy_regression()
        binner = FeatureBinner().fit(X)
        tree = RegressionTree(max_depth=4).fit(binner.transform(X), y)
        pred = tree.predict(binner.transform(X))
        assert np.var(y - pred) < 0.5 * np.var(y - y.mean())


class TestBoosting:
    def test_improves_over_single_tree(self):
        X, y = toy_regression()
        gbrt = GradientBoostedRegressor(num_trees=50, learning_rate=0.2)
        gbrt.fit(X, y)
        errors = gbrt.staged_l1(X, y)
        assert errors[-1] < errors[0] * 0.7

    def test_staged_errors_mostly_decreasing(self):
        X, y = toy_regression()
        gbrt = GradientBoostedRegressor(num_trees=30, learning_rate=0.3)
        gbrt.fit(X, y)
        errors = gbrt.staged_l1(X, y)
        assert errors[-1] == min(errors)

    def test_generalises_to_held_out_data(self):
        X, y = toy_regression(seed=1)
        X_test, y_test = toy_regression(seed=2)
        gbrt = GradientBoostedRegressor(num_trees=80, learning_rate=0.2)
        gbrt.fit(X, y, rng=np.random.default_rng(0))
        l1 = np.abs(gbrt.predict(X_test) - y_test).mean()
        baseline = np.abs(y_test.mean() - y_test).mean()
        assert l1 < 0.4 * baseline

    def test_subsampling_is_reproducible_with_seed(self):
        X, y = toy_regression(n=500)
        a = GradientBoostedRegressor(num_trees=10, subsample=0.5)
        a.fit(X, y, rng=np.random.default_rng(7))
        b = GradientBoostedRegressor(num_trees=10, subsample=0.5)
        b.fit(X, y, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(PredictionError):
            GradientBoostedRegressor().predict(np.ones((2, 3)))

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(PredictionError):
            GradientBoostedRegressor().fit(np.ones((10, 2)), np.ones(5))


class TestExecutionTimePredictor:
    def test_trains_and_reports_sane_accuracy(self):
        rng = np.random.default_rng(3)
        n = 3000
        X = rng.uniform(1, 10, size=(n, 4))
        demand = np.exp(0.5 * X[:, 0]) * rng.lognormal(0, 0.2, n)
        predictor = ExecutionTimePredictor(
            PredictorConfig(num_trees=60, max_depth=3)
        )
        predictor.fit(X[: n // 2], demand[: n // 2], rng=rng)
        report = predictor.evaluate(X[n // 2 :], demand[n // 2 :])
        assert report.num_eval == n // 2
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        assert report.l1_error_ms < np.abs(demand - demand.mean()).mean()

    def test_predictions_positive(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(0, 1, size=(200, 2))
        y = rng.uniform(0.5, 5.0, size=200)
        predictor = ExecutionTimePredictor(
            PredictorConfig(num_trees=10, max_depth=2)
        )
        predictor.fit(X, y, rng=rng)
        assert (predictor.predict(X) > 0).all()

    def test_rejects_nonpositive_demands(self):
        predictor = ExecutionTimePredictor()
        with pytest.raises(PredictionError):
            predictor.fit(np.ones((50, 2)), np.zeros(50))

    def test_report_as_row(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(0, 1, size=(400, 2))
        y = rng.uniform(1, 100, size=400)
        predictor = ExecutionTimePredictor(
            PredictorConfig(num_trees=5, max_depth=2)
        )
        predictor.fit(X, y, rng=rng)
        row = predictor.evaluate(X, y).as_row()
        assert set(row) == {
            "l1_error_ms", "precision", "recall",
            "long_threshold_ms", "num_eval",
        }


class TestOracles:
    def test_perfect_predictor_returns_demands(self):
        demands = np.array([1.0, 50.0, 200.0])
        out = PerfectPredictor().predict_demands(demands)
        np.testing.assert_array_equal(out, demands)
        assert out is not demands  # defensive copy

    def test_noisy_oracle_zero_sigma_is_perfect(self, rng):
        demands = np.array([10.0, 20.0])
        oracle = NoisyOraclePredictor(0.0, rng)
        np.testing.assert_array_equal(oracle.predict_demands(demands), demands)

    def test_noisy_oracle_perturbs_multiplicatively(self, rng):
        demands = np.full(10_000, 100.0)
        oracle = NoisyOraclePredictor(0.5, rng)
        out = oracle.predict_demands(demands)
        assert (out > 0).all()
        ratio = np.log(out / demands)
        assert np.std(ratio) == pytest.approx(0.5, rel=0.05)

    def test_rejects_negative_sigma(self, rng):
        with pytest.raises(PredictionError):
            NoisyOraclePredictor(-0.1, rng)

    def test_rejects_nonpositive_demands(self, rng):
        with pytest.raises(PredictionError):
            PerfectPredictor().predict_demands(np.array([0.0]))
