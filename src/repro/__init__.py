"""repro — reproduction of "TPC: Target-Driven Parallelism Combining
Prediction and Correction to Reduce Tail Latency in Interactive
Services" (Jeon et al., ASPLOS 2016).

The package implements the paper's full system and every substrate it
depends on (see DESIGN.md):

* :mod:`repro.core` — the TPC algorithm: speedup profiles, target
  tables, predictive parallelism, dynamic correction, Algorithm 1.
* :mod:`repro.sim` — a discrete-event multi-core ISN server model.
* :mod:`repro.search` — a from-scratch web-search substrate (corpus,
  inverted index, BM25 scoring, task-pool parallel execution) whose
  measured behaviour is calibrated against the paper's Section 2.
* :mod:`repro.prediction` — boosted-tree execution-time prediction.
* :mod:`repro.policies` — TPC plus every baseline of the evaluation
  (Sequential, AP, Pred, WQ-Linear, RampUp, TP).
* :mod:`repro.cluster` — the 40-ISN partition-aggregate cluster.
* :mod:`repro.finance` — the Monte Carlo option-pricing server.
* :mod:`repro.experiments` — the harness regenerating every figure
  and table of the evaluation.
* :mod:`repro.exec` — the execution layer: declarative experiment
  cells fanned out over a process pool with an on-disk result cache.
* :mod:`repro.resilience` — fault injection (stragglers, degraded
  cores, blackouts), request hedging and wait-for-k aggregation for
  the cluster layer.

Quickstart
----------
>>> from repro import default_workload, run_search_experiment
>>> from repro import default_target_table
>>> workload = default_workload()                       # offline pipeline
>>> result = run_search_experiment(
...     workload, "TPC", qps=450, n_requests=5000, seed=1,
...     target_table=default_target_table())
>>> result.p99_ms < 150                                  # doctest: +SKIP
True
"""

from ._version import __version__
from .config import (
    ClusterConfig,
    FinanceConfig,
    PolicyConfig,
    PredictorConfig,
    SearchWorkloadConfig,
    ServerConfig,
    TargetTableConfig,
)
from .core import (
    CorrectionController,
    SpeedupBook,
    SpeedupProfile,
    TargetTable,
    build_target_table,
    select_degree,
)
from .errors import ReproError
from .exec import (
    CellSpec,
    ResultCache,
    SweepSpec,
    WorkloadSpec,
    run_sweep,
)
from .experiments import (
    default_target_table,
    default_workload,
    run_load_sweep,
    run_search_experiment,
)
from .policies import make_policy, policy_names
from .search import build_search_workload
from .finance import build_finance_workload
from .cluster import run_cluster_experiment
from .resilience import FaultSpec, HedgePolicy, run_scenario
from .sim import Engine, LatencyRecorder, Request, Server

__all__ = [
    "__version__",
    # configs
    "ServerConfig",
    "SearchWorkloadConfig",
    "PredictorConfig",
    "PolicyConfig",
    "TargetTableConfig",
    "ClusterConfig",
    "FinanceConfig",
    # core
    "SpeedupProfile",
    "SpeedupBook",
    "TargetTable",
    "CorrectionController",
    "select_degree",
    "build_target_table",
    # errors
    "ReproError",
    # workloads & experiments
    "build_search_workload",
    "build_finance_workload",
    "default_workload",
    "default_target_table",
    "run_search_experiment",
    "run_load_sweep",
    "run_cluster_experiment",
    # resilience
    "FaultSpec",
    "HedgePolicy",
    "run_scenario",
    # execution layer
    "CellSpec",
    "SweepSpec",
    "WorkloadSpec",
    "ResultCache",
    "run_sweep",
    # policies
    "make_policy",
    "policy_names",
    # simulation
    "Engine",
    "Server",
    "Request",
    "LatencyRecorder",
]
