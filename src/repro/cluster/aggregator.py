"""The aggregator: fan-out, wait-for-all, merge.

Tracks every in-flight logical query and records its aggregator-level
response time once the last ISN replica completes, plus a fixed
network/merge overhead (the paper measures ~2 ms average of
non-compute time per query, Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = ["AggregatedQuery", "Aggregator"]


@dataclass
class AggregatedQuery:
    """In-flight bookkeeping of one logical query."""

    qid: int
    arrival_ms: float
    pending: int
    slowest_finish_ms: float = float("-inf")
    isn_responses_ms: list[float] = field(default_factory=list)


class Aggregator:
    """Collects per-ISN completions and emits aggregator latencies."""

    def __init__(self, num_isns: int, network_overhead_ms: float = 2.0) -> None:
        if num_isns < 1:
            raise SimulationError("num_isns must be >= 1")
        if network_overhead_ms < 0:
            raise SimulationError("network_overhead_ms must be >= 0")
        self.num_isns = num_isns
        self.network_overhead_ms = float(network_overhead_ms)
        self._inflight: dict[int, AggregatedQuery] = {}
        self.latencies_ms: list[float] = []
        #: Per-query list of individual ISN response times (for the
        #: aggregator-vs-ISN percentile comparison of Figure 8(b)).
        self.isn_latencies_ms: list[float] = []

    @property
    def completed(self) -> int:
        """Logical queries fully aggregated so far."""
        return len(self.latencies_ms)

    @property
    def inflight(self) -> int:
        """Logical queries still waiting for at least one ISN."""
        return len(self._inflight)

    def begin(self, qid: int, arrival_ms: float) -> None:
        """Register the fan-out of a new logical query."""
        if qid in self._inflight:
            raise SimulationError(f"query {qid} already in flight")
        self._inflight[qid] = AggregatedQuery(
            qid=qid, arrival_ms=arrival_ms, pending=self.num_isns
        )

    def on_isn_complete(self, qid: int, finish_ms: float) -> bool:
        """Record one ISN replica completion.

        Returns True when this was the last pending replica (the
        aggregator responds to the user at that moment).
        """
        entry = self._inflight.get(qid)
        if entry is None:
            raise SimulationError(f"query {qid} is not in flight")
        if finish_ms < entry.arrival_ms:
            raise SimulationError("completion precedes arrival")
        entry.pending -= 1
        entry.slowest_finish_ms = max(entry.slowest_finish_ms, finish_ms)
        entry.isn_responses_ms.append(finish_ms - entry.arrival_ms)
        if entry.pending > 0:
            return False
        del self._inflight[entry.qid]
        latency = (
            entry.slowest_finish_ms - entry.arrival_ms + self.network_overhead_ms
        )
        self.latencies_ms.append(latency)
        self.isn_latencies_ms.extend(entry.isn_responses_ms)
        return True
