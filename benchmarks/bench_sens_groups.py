"""S2 — Section 4.6 sensitivity: number of efficiency groups.

The paper moves from 3 to 6 parallelism-efficiency groups (halving
each group) and observes at most 0.65 % improvement across loads —
neighbouring groups' speedup profiles are too similar to matter.
A single-group book (treating all queries alike) does cost latency.
"""

import numpy as np

from conftest import BENCH_SEED, bench_queries, emit, qps_grid
from repro.core.speedup import SpeedupBook
from repro.experiments import run_search_experiment
from repro.experiments.report import format_table


def _sweep(workload, search_table, book):
    return [
        run_search_experiment(
            workload, "TPC", qps, bench_queries(), BENCH_SEED,
            target_table=search_table, speedup_book=book,
        ).p99_ms
        for qps in qps_grid()
    ]


def test_group_count_sensitivity(benchmark, workload, search_table):
    def run():
        three = workload.speedup_book
        six = three.split_groups()
        # Single group: everything uses the average profile.
        from repro.policies.ap import average_profile

        avg = average_profile(three, list(workload.group_weights))
        one = SpeedupBook([avg] * 3, three.bounds_ms)
        return {
            "1 group": _sweep(workload, search_table, one),
            "3 groups": _sweep(workload, search_table, three),
            "6 groups": _sweep(workload, search_table, six),
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    grid = qps_grid()
    rows = [
        [int(qps)] + [round(series[k][i], 1) for k in series]
        for i, qps in enumerate(grid)
    ]
    emit(
        "sens_groups",
        format_table(
            ["QPS", *series.keys()],
            rows,
            title="Section 4.6 - TPC P99 (ms) by efficiency-group count",
        ),
    )

    mean = {k: float(np.mean(v)) for k, v in series.items()}
    # 3 -> 6 groups: negligible change (paper: <= 0.65 %).
    assert abs(mean["6 groups"] / mean["3 groups"] - 1.0) < 0.05
    # 1 -> 3 groups: grouping by demand does matter.
    assert mean["3 groups"] <= mean["1 group"] * 1.02
