"""Oracle predictors for sensitivity studies (Section 4.6).

The paper mimics a perfect predictor "by using the sequential execution
time collected in advance for each input query" and compares TPC under
the real and perfect predictors.  :class:`NoisyOraclePredictor` spans
the space in between: the true demand perturbed by controllable
lognormal noise, used by the prediction-accuracy sweep ablation.
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError

__all__ = ["PerfectPredictor", "NoisyOraclePredictor"]


class PerfectPredictor:
    """Predicts exactly the true sequential demand."""

    def predict_demands(self, demands_ms: np.ndarray) -> np.ndarray:
        """Return the demands unchanged."""
        arr = np.asarray(demands_ms, dtype=np.float64)
        if (arr <= 0).any():
            raise PredictionError("demands must be positive")
        return arr.copy()


class NoisyOraclePredictor:
    """True demand times lognormal noise of configurable magnitude.

    ``sigma = 0`` reduces to the perfect predictor; larger sigmas
    degrade recall/precision smoothly, letting experiments sweep the
    predictor-accuracy axis without retraining models.
    """

    def __init__(self, sigma: float, rng: np.random.Generator) -> None:
        if sigma < 0:
            raise PredictionError(f"sigma must be >= 0, got {sigma}")
        self.sigma = float(sigma)
        self._rng = rng

    def predict_demands(self, demands_ms: np.ndarray) -> np.ndarray:
        """Perturbed copies of the true demands."""
        arr = np.asarray(demands_ms, dtype=np.float64)
        if (arr <= 0).any():
            raise PredictionError("demands must be positive")
        if self.sigma == 0:
            return arr.copy()
        noise = self._rng.lognormal(0.0, self.sigma, size=arr.shape)
        return arr * noise
