"""Query model and query-log generator.

Real query logs mix mostly-short queries (few keywords, arbitrary
popularity) with a minority of expensive ones (many keywords over
popular terms — the paper notes ten-keyword queries run roughly an
order of magnitude longer than two-keyword ones, Section 2.3).  The
generator reproduces that mixture with two components:

* **easy** queries: 1-4 keywords sampled from the full Zipf-ranked
  vocabulary by query popularity;
* **hard** queries: 4-10 keywords drawn from the most popular ranks,
  whose long posting lists make traversal expensive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SearchWorkloadConfig
from ..errors import WorkloadError
from .corpus import zipf_probabilities

__all__ = ["Query", "QueryGenerator"]


@dataclass(frozen=True)
class Query:
    """A keyword query against one index fragment."""

    qid: int
    term_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.term_ids:
            raise WorkloadError("query must contain at least one term")

    @property
    def num_keywords(self) -> int:
        """Keyword count (a strong latency predictor, Section 2.3)."""
        return len(self.term_ids)


class QueryGenerator:
    """Samples queries per the two-component mixture above."""

    def __init__(
        self, config: SearchWorkloadConfig, rng: np.random.Generator
    ) -> None:
        self.config = config
        self._rng = rng
        # Query-side term popularity is flatter than corpus frequency
        # and skips the stopword head: users rarely search bare
        # stopwords, and mid-frequency terms dominate real query logs.
        skip = min(config.easy_skip_top, config.vocabulary_size - 1)
        easy_size = config.vocabulary_size - skip
        self._easy_offset = skip
        self._easy_probs = zipf_probabilities(
            easy_size, config.query_zipf_exponent
        )
        # Hard queries draw from the most popular ranks, whose long
        # posting lists make traversal expensive (corpus-Zipf weighted).
        pool = min(config.hard_term_pool, config.vocabulary_size)
        hard_weights = zipf_probabilities(config.vocabulary_size, config.zipf_exponent)[:pool]
        self._hard_probs = hard_weights / hard_weights.sum()
        self._hard_pool = pool
        self._next_qid = 0

    def generate(self, n: int) -> list[Query]:
        """Generate ``n`` queries following the configured mixture."""
        if n < 1:
            raise WorkloadError(f"n must be >= 1, got {n}")
        queries = []
        hard_draws = self._rng.random(n) < self.config.hard_query_fraction
        for is_hard in hard_draws:
            queries.append(self._generate_one(bool(is_hard)))
        return queries

    def _generate_one(self, is_hard: bool) -> Query:
        cfg = self.config
        if is_hard:
            lo, hi = cfg.hard_keywords
            k = int(self._rng.integers(lo, hi + 1))
            k = min(k, self._hard_pool)
            terms = self._rng.choice(
                self._hard_pool, size=k, replace=False, p=self._hard_probs
            )
        else:
            lo, hi = cfg.easy_keywords
            k = int(self._rng.integers(lo, hi + 1))
            terms = self._easy_offset + self._rng.choice(
                len(self._easy_probs), size=k, replace=False, p=self._easy_probs
            )
        query = Query(self._next_qid, tuple(int(t) for t in sorted(terms)))
        self._next_qid += 1
        return query
