"""Sorted posting-list intersection algorithms.

Section 2.3 attributes long queries partly to "the intersection of
inverted indices for a larger number of keywords".  This module
implements the classic algorithms with explicit cost accounting, so the
conjunctive execution mode can meter its work the same way the
majority-match mode does:

* :func:`intersect_merge` — linear two-pointer merge, O(m + n);
* :func:`intersect_gallop` — galloping/exponential search from the
  smaller list into the larger, O(m log(n/m)), the standard choice when
  the lists are skewed;
* :func:`intersect_many` — k-way intersection, smallest list first
  (each step can only shrink the candidate set).

All functions return ``(result, comparisons)`` where ``comparisons``
is the number of element comparisons performed — the work-unit metric.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = ["intersect_merge", "intersect_gallop", "intersect_many"]


def _check(a: np.ndarray) -> np.ndarray:
    arr = np.asarray(a)
    if arr.ndim != 1:
        raise WorkloadError("posting lists must be 1-D")
    return arr


def intersect_merge(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, int]:
    """Two-pointer merge intersection of sorted arrays.

    Cost: one comparison per pointer advance — Theta(m + n).
    """
    a = _check(a)
    b = _check(b)
    out = []
    i = j = comparisons = 0
    while i < len(a) and j < len(b):
        comparisons += 1
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return np.asarray(out, dtype=a.dtype if len(a) else np.int64), comparisons


def _gallop_search(arr: np.ndarray, lo: int, target) -> tuple[int, int]:
    """First index ``>= target`` in ``arr[lo:]`` via exponential probing.

    Returns ``(index, comparisons)``.
    """
    comparisons = 0
    bound = 1
    n = len(arr)
    while lo + bound < n and arr[lo + bound] < target:
        comparisons += 1
        bound *= 2
    if lo + bound < n:
        comparisons += 1  # the probe that stopped the doubling
    hi = min(lo + bound, n)
    base = lo + bound // 2
    position = base + int(np.searchsorted(arr[base:hi], target, side="left"))
    comparisons += max(int(np.ceil(np.log2(max(hi - base, 1) + 1))), 1)
    return position, comparisons


def intersect_gallop(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, int]:
    """Galloping intersection: iterate the smaller list, gallop in the
    larger.  Cost: O(m log(n/m)) comparisons for |a|=m << |b|=n.
    """
    a = _check(a)
    b = _check(b)
    if len(a) > len(b):
        a, b = b, a
    out = []
    comparisons = 0
    position = 0
    for value in a:
        position, cost = _gallop_search(b, position, value)
        comparisons += cost
        if position < len(b) and b[position] == value:
            comparisons += 1
            out.append(value)
            position += 1
    return np.asarray(out, dtype=a.dtype if len(a) else np.int64), comparisons


def intersect_many(
    lists: list[np.ndarray], gallop: bool = True
) -> tuple[np.ndarray, int]:
    """k-way intersection, smallest-first.

    Sorting the lists by length means every pairwise step intersects
    the (shrinking) candidate set against the next-larger list — the
    standard query-processing order.
    """
    if not lists:
        raise WorkloadError("need at least one posting list")
    ordered = sorted((_check(l) for l in lists), key=len)
    result = ordered[0]
    total = 0
    algorithm = intersect_gallop if gallop else intersect_merge
    for other in ordered[1:]:
        if len(result) == 0:
            break
        result, comparisons = algorithm(result, other)
        total += comparisons
    return result, total
