"""Tests for seeded RNG streams."""

import numpy as np
import pytest

from repro.rng import RngFactory, stream


class TestRngFactory:
    def test_same_stream_is_reproducible(self):
        rngs = RngFactory(42)
        a = rngs.get("arrivals").random(10)
        b = rngs.get("arrivals").random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_streams_differ(self):
        rngs = RngFactory(42)
        a = rngs.get("arrivals").random(10)
        b = rngs.get("corpus").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).get("x").random(10)
        b = RngFactory(2).get("x").random(10)
        assert not np.array_equal(a, b)

    def test_stream_shorthand_matches_factory(self):
        a = stream(7, "foo").random(5)
        b = RngFactory(7).get("foo").random(5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_derives_child_factory(self):
        parent = RngFactory(5)
        child1 = parent.spawn("isn-0")
        child2 = parent.spawn("isn-1")
        assert child1.root_seed != child2.root_seed
        # deterministic derivation
        assert parent.spawn("isn-0").root_seed == child1.root_seed

    def test_spawn_names_never_collide(self):
        # Regression: the XOR-based derivation could collide for names
        # whose hashes cancelled against the root seed; the
        # SeedSequence-based derivation avalanches instead.
        parent = RngFactory(123)
        seeds = {parent.spawn(f"isn-{i}").root_seed for i in range(256)}
        assert len(seeds) == 256

    def test_spawn_streams_are_distinct(self):
        parent = RngFactory(7)
        draws = [
            tuple(parent.spawn(f"shard-{i}").get("demand").random(8))
            for i in range(64)
        ]
        assert len(set(draws)) == 64

    def test_nested_spawn_is_order_sensitive(self):
        # XOR is commutative, so the old derivation gave
        # spawn("a").spawn("b") and spawn("b").spawn("a") the SAME
        # child seed.  The fixed derivation distinguishes them.
        parent = RngFactory(42)
        ab = parent.spawn("a").spawn("b").root_seed
        ba = parent.spawn("b").spawn("a").root_seed
        assert ab != ba

    def test_spawn_rejects_empty_name(self):
        with pytest.raises(ValueError):
            RngFactory(3).spawn("")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(-1)

    def test_empty_stream_name_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(0).get("")

    def test_root_seed_property(self):
        assert RngFactory(9).root_seed == 9
