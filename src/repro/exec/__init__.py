"""Experiment-execution layer: declarative cells, process pool, cache.

``repro.exec`` separates *what* an experiment is from *how* it runs.
Sweeps are declared as frozen :class:`CellSpec`/:class:`SweepSpec`
values, executed inline or across a process pool (:func:`run_sweep`),
and optionally memoised on disk by content hash (:class:`ResultCache`).
The layers above — the experiment runner, the Algorithm 1 table
builder, the cluster harness and the benchmarks — all route their
independent simulation cells through this module.
"""

from .cache import ResultCache, default_cache
from .pool import (
    ProgressEvent,
    log_progress,
    forget_workload,
    memoised_workload,
    resolve_worker_count,
    run_cell,
    run_sweep,
    run_tasks,
)
from .spec import CellResult, CellSpec, SweepSpec, WorkloadSpec, spec_hash

__all__ = [
    "CellSpec",
    "SweepSpec",
    "WorkloadSpec",
    "CellResult",
    "spec_hash",
    "ResultCache",
    "default_cache",
    "ProgressEvent",
    "log_progress",
    "forget_workload",
    "memoised_workload",
    "resolve_worker_count",
    "run_cell",
    "run_sweep",
    "run_tasks",
]
