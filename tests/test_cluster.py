"""Tests for the aggregator and cluster experiment (Section 4.5)."""

import numpy as np
import pytest

from repro.cluster import Aggregator, run_cluster_experiment
from repro.config import ClusterConfig
from repro.errors import ConfigError, SimulationError


class TestAggregator:
    def test_latency_is_slowest_isn_plus_network(self):
        agg = Aggregator(num_isns=3, network_overhead_ms=2.0)
        agg.begin(0, arrival_ms=10.0)
        assert agg.on_isn_complete(0, 15.0, isn=0) is False
        assert agg.on_isn_complete(0, 30.0, isn=1) is False
        assert agg.on_isn_complete(0, 20.0, isn=2) is True
        assert agg.latencies_ms == [pytest.approx(22.0)]  # 30 - 10 + 2

    def test_per_isn_latencies_recorded(self):
        agg = Aggregator(2, 0.0)
        agg.begin(0, 0.0)
        agg.on_isn_complete(0, 5.0, isn=0)
        agg.on_isn_complete(0, 9.0, isn=1)
        assert sorted(agg.isn_latencies_ms) == [5.0, 9.0]

    def test_interleaved_queries(self):
        agg = Aggregator(2, 0.0)
        agg.begin(0, 0.0)
        agg.begin(1, 1.0)
        agg.on_isn_complete(1, 4.0, isn=0)
        agg.on_isn_complete(0, 5.0, isn=0)
        assert agg.on_isn_complete(1, 6.0, isn=1) is True
        assert agg.inflight == 1
        assert agg.on_isn_complete(0, 7.0, isn=1) is True
        assert agg.completed == 2

    def test_duplicate_begin_rejected(self):
        agg = Aggregator(2, 0.0)
        agg.begin(0, 0.0)
        with pytest.raises(SimulationError):
            agg.begin(0, 1.0)

    def test_unknown_completion_rejected(self):
        agg = Aggregator(2, 0.0)
        with pytest.raises(SimulationError):
            agg.on_isn_complete(5, 1.0, isn=0)

    def test_completion_before_arrival_rejected(self):
        agg = Aggregator(1, 0.0)
        agg.begin(0, 10.0)
        with pytest.raises(SimulationError):
            agg.on_isn_complete(0, 5.0, isn=0)

    def test_duplicate_isn_completion_rejected(self):
        agg = Aggregator(3, 0.0)
        agg.begin(0, 0.0)
        agg.on_isn_complete(0, 5.0, isn=1)
        with pytest.raises(SimulationError):
            agg.on_isn_complete(0, 6.0, isn=1)

    def test_out_of_range_isn_rejected(self):
        agg = Aggregator(2, 0.0)
        agg.begin(0, 0.0)
        with pytest.raises(SimulationError):
            agg.on_isn_complete(0, 1.0, isn=2)

    def test_wait_for_k_answers_early_and_counts_late(self):
        agg = Aggregator(3, network_overhead_ms=0.0, wait_for_k=2)
        agg.begin(0, 0.0)
        assert agg.on_isn_complete(0, 5.0, isn=0) is False
        assert agg.on_isn_complete(0, 8.0, isn=2) is True
        assert agg.latencies_ms == [pytest.approx(8.0)]
        assert agg.k_coverages == [pytest.approx(2.0 / 3.0)]
        # The third replica is tolerated, counted late, still deduped.
        assert agg.on_isn_complete(0, 11.0, isn=1) is False
        assert agg.late_completions == 1
        with pytest.raises(SimulationError):
            agg.on_isn_complete(0, 12.0, isn=1)


class TestClusterExperiment:
    @pytest.fixture(scope="class")
    def small_cluster_result(self, tiny_search_workload, target_table):
        return run_cluster_experiment(
            tiny_search_workload,
            "TPC",
            qps=200.0,
            n_queries=800,
            seed=17,
            cluster_config=ClusterConfig(num_isns=5),
            target_table=target_table,
        )

    def test_all_queries_aggregated(self, small_cluster_result):
        assert len(small_cluster_result.aggregator_latencies_ms) == 800
        assert len(small_cluster_result.isn_latencies_ms) == 800 * 5

    def test_aggregator_waits_for_slowest(self, small_cluster_result):
        """Aggregator latency percentiles dominate ISN percentiles at
        the same level (max of 5 samples stochastically dominates)."""
        for p in (50, 95, 99):
            assert small_cluster_result.aggregator_percentile(
                p
            ) >= small_cluster_result.isn_percentile(p)

    def test_aggregator_p99_maps_to_higher_isn_percentile(
        self, small_cluster_result
    ):
        """Figure 8(b): reducing aggregator P99 requires reducing a much
        higher percentile at each individual ISN."""
        p99 = small_cluster_result.aggregator_percentile(99)
        isn_pct = small_cluster_result.isn_percentile_of_latency(p99)
        assert isn_pct > 99.0

    def test_per_isn_recorders_complete(self, small_cluster_result):
        for recorder in small_cluster_result.isn_recorders:
            assert len(recorder) == 800

    def test_fraction_slower_than(self, small_cluster_result):
        assert small_cluster_result.fraction_slower_than(0.0) == 1.0
        assert small_cluster_result.fraction_slower_than(1e9) == 0.0

    def test_demand_jitter_spreads_isn_latencies(
        self, tiny_search_workload, target_table
    ):
        result = run_cluster_experiment(
            tiny_search_workload,
            "Sequential",
            qps=50.0,
            n_queries=200,
            seed=21,
            cluster_config=ClusterConfig(num_isns=4, demand_jitter_sigma=0.3),
            target_table=target_table,
        )
        # Under light load with Sequential, per-ISN latency ~ demand,
        # so jitter must show up across replicas of the same query.
        lat = result.isn_latencies_ms.reshape(200, 4)
        spreads = lat.max(axis=1) / lat.min(axis=1)
        assert np.median(spreads) > 1.2

    def test_rejects_zero_queries(self, tiny_search_workload, target_table):
        with pytest.raises(ConfigError):
            run_cluster_experiment(
                tiny_search_workload, "TPC", 100.0, 0, 1,
                target_table=target_table,
            )
