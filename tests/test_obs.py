"""Tests for the unified observability layer (repro.obs)."""

import dataclasses
import io
import json

import numpy as np
import pytest

from repro.config import (
    PredictorConfig,
    SearchWorkloadConfig,
    ServerConfig,
)
from repro.core.target_table import TargetTable
from repro.errors import ConfigError, SimulationError
from repro.exec import CellSpec, WorkloadSpec, run_cell
from repro.obs import (
    DecisionLog,
    Histogram,
    MetricRegistry,
    Observation,
    RequestInfo,
    SpanCause,
    TailBucket,
    assemble_spans,
    chrome_trace,
    classify_span,
    observe_cell,
    render_tail_report,
    render_timeline,
    slowest_spans,
    tail_report,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import RequestSpan, Segment
from repro.policies import TPCPolicy
from repro.policies.base import ParallelismPolicy
from repro.sim.engine import Engine
from repro.sim.server import Server
from repro.sim.tracing import attach_tracer

from conftest import LONG_PROFILE, make_request
from test_server import FixedDegreePolicy

TINY_SEARCH = SearchWorkloadConfig(
    num_documents=3_000,
    vocabulary_size=1_500,
    mean_doc_length=120,
    hard_term_pool=150,
    easy_skip_top=15,
)
TINY_TABLE = TargetTable([(0, 40), (8, 65), (16, 90)])


def tiny_cell(policy: str = "TPC", **kwargs) -> CellSpec:
    wspec = WorkloadSpec.search(
        seed=11,
        config=TINY_SEARCH,
        predictor_config=PredictorConfig(num_trees=60, max_depth=4),
        pool_size=1_200,
        use_workload_cache=False,
    )
    kwargs.setdefault("n_requests", 200)
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("target_table", TINY_TABLE)
    return CellSpec.for_experiment(wspec, policy, 300.0, **kwargs)


class TestRegistry:
    def test_counter_and_gauge(self):
        reg = MetricRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = reg.gauge("depth")
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.max_value == 3.0
        snap = reg.snapshot()
        assert snap["hits"] == 5.0
        assert snap["depth.max"] == 3.0

    def test_get_or_create_returns_same_instance(self):
        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert "x" in reg

    def test_type_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError, match="already registered"):
            reg.gauge("x")

    def test_histogram_exact_stats(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(10.0)
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == pytest.approx(2.5)
        assert h.quantile(50.0) == pytest.approx(2.5)

    def test_streaming_matches_exact_aggregates(self):
        rng = np.random.default_rng(7)
        sample = rng.exponential(20.0, size=4_000)
        exact = Histogram("e")
        stream = Histogram("s", streaming=True)
        for v in sample:
            exact.observe(float(v))
            stream.observe(float(v))
        assert stream.count == exact.count
        assert stream.sum == pytest.approx(exact.sum)
        assert stream.min == exact.min
        assert stream.max == exact.max
        # P2 estimators are approximate; a few percent is fine.
        assert stream.quantile(99.0) == pytest.approx(
            exact.quantile(99.0), rel=0.1
        )

    def test_streaming_untracked_quantile_raises(self):
        h = Histogram("s", streaming=True)
        h.observe(1.0)
        with pytest.raises(SimulationError, match="does not track"):
            h.quantile(42.0)

    def test_empty_histogram_raises(self):
        h = Histogram("e")
        with pytest.raises(SimulationError, match="empty"):
            h.quantile(50.0)

    def test_scopes_prefix_names(self):
        reg = MetricRegistry()
        isn = reg.scope("isn3")
        isn.counter("completions").inc()
        nested = isn.scope("disk")
        nested.gauge("util").set(0.5)
        assert reg.get("isn3.completions").value == 1
        assert reg.get("isn3.disk.util").value == 0.5
        with pytest.raises(ConfigError):
            reg.scope("")

    def test_to_json_round_trips(self):
        reg = MetricRegistry()
        reg.counter("n").inc(3)
        doc = json.loads(reg.to_json(extra={"policy": "TPC"}))
        assert doc["metrics"]["n"] == 3.0
        assert doc["policy"] == "TPC"


class TestSpans:
    def test_spans_from_real_run(self):
        server = Server(
            ServerConfig(), FixedDegreePolicy(2), engine=Engine()
        )
        tracer = attach_tracer(server)
        for i in range(5):
            server.submit(make_request(i, 10.0 + i))
        server.run_to_completion(5)
        spans = assemble_spans(tracer)
        assert [s.rid for s in spans] == list(range(5))
        for span in spans:
            assert span.cause is SpanCause.COMPLETED
            assert span.initial_degree == 2
            assert span.response_ms >= span.execution_ms >= 0
            assert not span.corrected

    def test_correction_yields_two_segments(self, speedup_book):
        policy = TPCPolicy(TargetTable.constant(40.0), speedup_book)
        server = Server(ServerConfig(), policy, engine=Engine())
        tracer = attach_tracer(server)
        server.submit(
            make_request(0, 200.0, predicted_ms=10.0, profile=LONG_PROFILE)
        )
        server.run_to_completion(1)
        (span,) = assemble_spans(tracer)
        assert span.corrected
        assert span.degree_raises == 1
        assert span.max_degree > span.initial_degree
        # Segments tile dispatch..end without gaps.
        assert span.segments[0].start_ms == span.dispatch_ms
        assert span.segments[0].end_ms == span.segments[1].start_ms
        assert span.segments[-1].end_ms == span.end_ms

    def test_hedge_superseded_cause(self):
        server = Server(
            ServerConfig(), FixedDegreePolicy(2), engine=Engine()
        )
        tracer = attach_tracer(server)
        req = make_request(0, 50.0)
        server.submit(req)
        server.engine.run_until(10.0)
        server.cancel_request(req, cause="hedge-superseded")
        (span,) = assemble_spans(tracer)
        assert span.cause is SpanCause.HEDGE_SUPERSEDED
        assert span.cause.terminal

    def test_open_span_when_truncated(self):
        server = Server(
            ServerConfig(), FixedDegreePolicy(2), engine=Engine()
        )
        tracer = attach_tracer(server)
        server.submit(make_request(0, 50.0))
        server.engine.run_until(10.0)  # still running: no terminal event
        (span,) = assemble_spans(tracer)
        assert span.cause is SpanCause.OPEN
        assert not span.cause.terminal
        with pytest.raises(SimulationError, match="open"):
            span.response_ms

    def test_slowest_spans_skips_open(self):
        done = RequestSpan(
            rid=0,
            arrival_ms=0.0,
            dispatch_ms=1.0,
            end_ms=9.0,
            cause=SpanCause.COMPLETED,
            segments=(Segment(1.0, 9.0, 2),),
        )
        still_open = dataclasses.replace(
            done, rid=1, end_ms=None, cause=SpanCause.OPEN
        )
        assert slowest_spans([done, still_open], n=2) == [done]


def _span(rid, queue_ms, run_ms, corrected=False):
    dispatch = queue_ms
    end = queue_ms + run_ms
    if corrected:
        segments = (
            Segment(dispatch, dispatch + run_ms / 2, 2),
            Segment(dispatch + run_ms / 2, end, 4),
        )
    else:
        segments = (Segment(dispatch, end, 2),)
    return RequestSpan(
        rid=rid,
        arrival_ms=0.0,
        dispatch_ms=dispatch,
        end_ms=end,
        cause=SpanCause.COMPLETED,
        segments=segments,
    )


class TestAttribution:
    def test_classify_buckets(self):
        good = RequestInfo(predicted_ms=50.0, demand_ms=50.0)
        under = RequestInfo(predicted_ms=10.0, demand_ms=60.0)
        assert (
            classify_span(_span(0, 30.0, 10.0), good) is TailBucket.QUEUEING
        )
        assert (
            classify_span(_span(1, 0.0, 60.0), under)
            is TailBucket.MISPREDICTED_DEGREE
        )
        assert (
            classify_span(_span(2, 0.0, 60.0, corrected=True), under)
            is TailBucket.CORRECTION_TOO_LATE
        )
        assert (
            classify_span(_span(3, 0.0, 60.0), good) is TailBucket.INHERENT
        )
        # No ground truth: everything non-queueing is inherent.
        assert classify_span(_span(4, 0.0, 60.0), None) is TailBucket.INHERENT

    def test_tail_report_counts_sum(self):
        spans = [_span(i, 0.0, float(10 + i)) for i in range(100)]
        report = tail_report(spans, percentiles=(90.0,))
        s = report.slice_at(90.0)
        assert report.n_completed == 100
        assert sum(s.counts.values()) == s.n_tail
        assert s.n_tail >= 10
        with pytest.raises(SimulationError):
            report.slice_at(50.0)

    def test_tail_report_empty(self):
        report = tail_report([])
        assert report.n_completed == 0
        assert "nothing to attribute" in render_tail_report(report)

    def test_render_names_buckets(self):
        spans = [_span(i, 30.0 if i > 95 else 0.0, 10.0) for i in range(100)]
        text = render_tail_report(tail_report(spans, percentiles=(95.0,)))
        assert "queueing" in text
        assert "P95" in text

    def test_decision_log_on_real_tpc_run(self, speedup_book):
        policy = TPCPolicy(TargetTable.constant(40.0), speedup_book)
        log = DecisionLog()
        policy.observer = log
        server = Server(ServerConfig(), policy, engine=Engine())
        server.submit(
            make_request(0, 200.0, predicted_ms=10.0, profile=LONG_PROFILE)
        )
        server.run_to_completion(1)
        decision = log.dispatch_for(0)
        assert decision is not None
        assert decision.predicted_ms == 10.0
        assert decision.demand_ms == 200.0
        assert decision.target_ms == pytest.approx(40.0)
        checks = log.checks_for(0)
        assert checks, "TPC should have run a correction check"
        assert log.corrections_fired >= 1
        fired = [c for c in checks if c.new_degree is not None]
        assert fired[0].elapsed_ms == pytest.approx(40.0, abs=1.0)
        (ratio,) = log.misprediction_ratios()
        assert ratio == pytest.approx(20.0)

    def test_policy_observer_defaults_to_none(self):
        assert ParallelismPolicy.observer is None


class TestChromeTrace:
    def _trace_doc(self):
        server = Server(
            ServerConfig(), FixedDegreePolicy(2), engine=Engine()
        )
        tracer = attach_tracer(server)
        for i in range(4):
            server.submit(make_request(i, 10.0 + 5 * i))
        victim = make_request(4, 100.0)
        server.submit(victim)
        server.engine.run_until(5.0)
        server.cancel_request(victim, cause="hedge-superseded")
        server.run_to_completion(4)
        return chrome_trace(
            assemble_spans(tracer), metrics={"completions": 4.0}
        )

    def test_document_is_json_and_balanced(self, tmp_path):
        doc = self._trace_doc()
        n = validate_chrome_trace(doc)
        assert n == len(doc["traceEvents"])
        path = tmp_path / "trace.json"
        with open(path, "w", encoding="utf-8") as fp:
            write_chrome_trace(fp, doc)
        loaded = json.load(open(path, encoding="utf-8"))
        assert validate_chrome_trace(loaded) == n
        assert loaded["metrics"] == {"completions": 4.0}

    def test_cancellation_gets_instant_marker(self):
        doc = self._trace_doc()
        instants = [
            e for e in doc["traceEvents"] if e["ph"] == "i"
        ]
        assert len(instants) == 1
        assert instants[0]["args"]["cause"] == "hedge-superseded"

    def test_timestamps_monotone_per_thread(self):
        doc = self._trace_doc()
        last = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, float("-inf"))
            last[key] = event["ts"]

    def test_rejects_unbalanced_begin(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "B", "ts": 0, "pid": 0, "tid": 0}
            ]
        }
        with pytest.raises(SimulationError, match="unbalanced"):
            validate_chrome_trace(doc)

    def test_rejects_mismatched_end(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "B", "ts": 0, "pid": 0, "tid": 0},
                {"name": "b", "ph": "E", "ts": 1, "pid": 0, "tid": 0},
            ]
        }
        with pytest.raises(SimulationError, match="nesting"):
            validate_chrome_trace(doc)

    def test_rejects_backwards_timestamps(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "B", "ts": 5, "pid": 0, "tid": 0},
                {"name": "a", "ph": "E", "ts": 1, "pid": 0, "tid": 0},
            ]
        }
        with pytest.raises(SimulationError, match="backwards"):
            validate_chrome_trace(doc)

    def test_rejects_non_document(self):
        with pytest.raises(SimulationError):
            validate_chrome_trace([1, 2, 3])

    def test_render_timeline_shows_phases(self):
        span = _span(7, queue_ms=10.0, run_ms=20.0, corrected=True)
        text = render_timeline(span, width=30)
        assert "rid 7" in text
        assert "queued" in text
        assert "d=2" in text and "d=4" in text
        assert "#" in text and "." in text


class TestObservation:
    def test_observed_run_metrics_match_trace(self, speedup_book):
        policy = TPCPolicy(TargetTable.constant(40.0), speedup_book)
        obs = Observation()
        server = Server(ServerConfig(), policy, engine=Engine())
        obs.attach(server)
        for i in range(10):
            server.submit(
                make_request(
                    i, 30.0 + 10 * i, predicted_ms=30.0, profile=LONG_PROFILE
                )
            )
        server.run_to_completion(10)
        snap = obs.registry.snapshot()
        assert snap["arrivals"] == 10.0
        assert snap["completions"] == 10.0
        assert snap["response_ms.count"] == 10.0
        assert server.policy.observer is obs.decisions
        assert len(obs.decisions.dispatches) == 10
        info = obs.request_info
        assert len(info) == 10
        assert info[0].predicted_ms == 30.0
        report = obs.tail_report(percentiles=(50.0,))
        assert report.n_completed == 10

    def test_named_scope_prefixes_metrics(self):
        obs = Observation()
        server = Server(
            ServerConfig(), FixedDegreePolicy(2), engine=Engine()
        )
        obs.attach(server, name="isn0")
        server.submit(make_request(0, 10.0))
        server.run_to_completion(1)
        snap = obs.registry.snapshot()
        assert snap["isn0.completions"] == 1.0
        assert obs.attached_servers == 1

    def test_cancellation_metrics(self):
        obs = Observation()
        server = Server(
            ServerConfig(), FixedDegreePolicy(2), engine=Engine()
        )
        obs.attach(server)
        req = make_request(0, 50.0)
        server.submit(req)
        server.engine.run_until(5.0)
        server.cancel_request(req, cause="blackout")
        snap = obs.registry.snapshot()
        assert snap["cancellations"] == 1.0
        assert snap["cancelled.blackout"] == 1.0
        assert snap["completions"] == 0.0

    def test_extras_keys(self):
        obs = Observation()
        extras = obs.extras()
        for key in (
            "obs.events_traced",
            "obs.events_dropped",
            "obs.dispatch_decisions",
            "obs.correction_checks",
            "obs.corrections_fired",
        ):
            assert key in extras


class TestObserveCell:
    @pytest.fixture(scope="class")
    def observed_pair(self):
        spec = tiny_cell()
        return spec, run_cell(spec), observe_cell(spec)

    def test_bit_identical_to_run_cell(self, observed_pair):
        _, plain, (observed, _) = observed_pair
        for f in dataclasses.fields(plain):
            a = getattr(plain, f.name)
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, getattr(observed, f.name)), f.name
        assert plain.summary.p99_ms == observed.summary.p99_ms

    def test_extras_and_trace_populated(self, observed_pair):
        spec, _, (observed, obs) = observed_pair
        assert observed.extras["obs.events_traced"] == len(obs.tracer)
        assert observed.extras["obs.events_dropped"] == 0.0
        obs.tracer.validate()
        spans = obs.spans()
        assert len(spans) == spec.n_requests
        doc = obs.chrome_trace()
        assert validate_chrome_trace(doc) > 0
        assert "metrics" in doc
        buf = io.StringIO()
        write_chrome_trace(buf, doc)
        json.loads(buf.getvalue())

    def test_cluster_cells_rejected(self):
        class FakeClusterSpec:
            cluster_config = object()

        with pytest.raises(ConfigError, match="single-server"):
            observe_cell(FakeClusterSpec())


class TestOverheadScenario:
    def test_tracing_overhead_scenario(self):
        from repro.perf.scenarios import run_tracing_overhead

        result = run_tracing_overhead(1_500)
        for key in (
            "events_run",
            "events_per_s",
            "baseline_events_per_s",
            "penalty_fraction",
            "events_traced",
        ):
            assert key in result
        assert result["events_traced"] == 3 * 1_500
        assert result["events_per_s"] > 0

    def test_scenario_registered(self):
        from repro.perf.scenarios import SCENARIOS

        assert "tracing_overhead" in SCENARIOS


class TestCli:
    def test_cli_writes_valid_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        out = tmp_path / "trace.json"
        code = main(
            ["--n-requests", "150", "--seed", "3", "--output", str(out)]
        )
        assert code == 0
        doc = json.load(open(out, encoding="utf-8"))
        assert validate_chrome_trace(doc) > 0
        printed = capsys.readouterr().out
        assert "Tail attribution" in printed
        assert "chrome trace written" in printed

    def test_cli_rejects_unknown_policy(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        out = tmp_path / "trace.json"
        code = main(
            ["--policy", "NOPE", "--n-requests", "50", "--output", str(out)]
        )
        assert code == 2
