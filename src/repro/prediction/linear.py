"""Linear execution-time predictor (the [26]-style baseline).

Macdonald et al. [26] predicted query response times from per-term
statistics with (mostly) linear models; Jeon et al. [21] improved on it
with more features and a boosted-tree regressor.  This ridge-regression
baseline plays [26]'s role: it trains on the same features as the
boosted model, so comparing the two quantifies what the tree ensemble
buys — and lets experiments ask how much predictor quality TPC really
needs (spoiler, per Section 4.6: less than you'd think, thanks to
dynamic correction).
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError

__all__ = ["RidgeRegressionPredictor"]


class RidgeRegressionPredictor:
    """Ridge regression on log demand with standardised features."""

    def __init__(self, l2: float = 1.0) -> None:
        if l2 < 0:
            raise PredictionError("l2 must be >= 0")
        self.l2 = float(l2)
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    def fit(
        self, features: np.ndarray, demands_ms: np.ndarray
    ) -> "RidgeRegressionPredictor":
        """Fit ``log(demand) ~ features`` with an L2 penalty."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(demands_ms, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise PredictionError("features and demands must align")
        if (y <= 0).any():
            raise PredictionError("demands must be positive")
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0
        self._std = std
        Z = (X - self._mean) / self._std
        Z = np.hstack([Z, np.ones((len(Z), 1))])
        target = np.log(y)
        regulariser = self.l2 * np.eye(Z.shape[1])
        regulariser[-1, -1] = 0.0  # never penalise the intercept
        self._weights = np.linalg.solve(
            Z.T @ Z + regulariser, Z.T @ target
        )
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted execution time (ms)."""
        if self._weights is None or self._mean is None or self._std is None:
            raise PredictionError("model is not fitted")
        X = np.asarray(features, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        Z = (X - self._mean) / self._std
        Z = np.hstack([Z, np.ones((len(Z), 1))])
        return np.exp(Z @ self._weights)

    def l1_error(
        self, features: np.ndarray, demands_ms: np.ndarray
    ) -> float:
        """Mean absolute error in milliseconds."""
        predictions = self.predict(features)
        y = np.asarray(demands_ms, dtype=np.float64)
        if len(predictions) != len(y):
            raise PredictionError("features and demands must align")
        return float(np.abs(predictions - y).mean())
