"""Open-loop load generation.

The paper's client "plays queries from a trace of 100K user queries
using a Poisson process in an open loop" and varies load by changing
the arrival rate (queries per second).  :class:`OpenLoopClient`
schedules every arrival up-front on the engine; arrivals are
independent of completions (open loop), so an overloaded server builds
a real queue instead of back-pressuring the client.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import WorkloadError
from .engine import Engine
from .request import Request
from .server import Server

__all__ = ["OpenLoopClient", "replay_trace", "poisson_arrival_times"]


def poisson_arrival_times(
    n: int, qps: float, rng: np.random.Generator
) -> np.ndarray:
    """Cumulative arrival times (ms) of ``n`` Poisson arrivals at ``qps``."""
    if n < 1:
        raise WorkloadError(f"need at least one arrival, got {n}")
    if qps <= 0:
        raise WorkloadError(f"qps must be positive, got {qps}")
    mean_gap_ms = 1000.0 / qps
    gaps = rng.exponential(mean_gap_ms, size=n)
    return np.cumsum(gaps)


class OpenLoopClient:
    """Schedules a request trace onto one or more servers.

    Parameters
    ----------
    servers:
        Target servers.  With one server every request goes to it; with
        several, ``fanout=True`` sends each request to *all* servers
        (partition-aggregate, Figure 1) while ``fanout=False`` is
        round-robin.
    make_replica:
        Cluster hook: called as ``make_replica(request, server_index)``
        to derive the per-ISN replica of a logical request (per-shard
        demand jitter).  Defaults to sending the same Request object,
        which is only valid for a single server.
    """

    def __init__(
        self,
        servers: Sequence[Server],
        fanout: bool = False,
        make_replica: Callable[[Request, int], Request] | None = None,
    ) -> None:
        if not servers:
            raise WorkloadError("at least one server required")
        if fanout and len(servers) > 1 and make_replica is None:
            raise WorkloadError(
                "fanout to multiple servers requires make_replica to clone "
                "requests per ISN"
            )
        self.servers = list(servers)
        self.fanout = fanout
        self.make_replica = make_replica

    def schedule_trace(
        self,
        engine: Engine,
        requests: Iterable[Request],
        qps: float,
        rng: np.random.Generator,
    ) -> int:
        """Schedule all requests as a Poisson process at ``qps``.

        Returns the number of logical requests scheduled.
        """
        request_list = list(requests)
        times = poisson_arrival_times(len(request_list), qps, rng)
        for i, (request, at) in enumerate(zip(request_list, times)):
            self._schedule_one(engine, request, float(at), i)
        return len(request_list)

    def _schedule_one(
        self, engine: Engine, request: Request, at_ms: float, index: int
    ) -> None:
        if self.fanout:
            for s_idx, server in enumerate(self.servers):
                replica = (
                    self.make_replica(request, s_idx)
                    if self.make_replica is not None
                    else request
                )
                engine.schedule_at(at_ms, lambda s=server, r=replica: s.submit(r))
        else:
            server = self.servers[index % len(self.servers)]
            engine.schedule_at(at_ms, lambda s=server, r=request: s.submit(r))


def replay_trace(
    server: Server,
    requests: Sequence[Request],
    qps: float,
    rng: np.random.Generator,
) -> None:
    """Run a full single-server experiment to completion.

    Schedules ``requests`` at ``qps`` on ``server`` and drives the
    engine until every request completes.
    """
    client = OpenLoopClient([server])
    n = client.schedule_trace(server.engine, requests, qps, rng)
    server.run_to_completion(n)
