"""TPC: target-driven parallelism with prediction and correction.

The paper's contribution (Section 3).  At dispatch, TPC behaves exactly
like :class:`~repro.policies.tp.TPPolicy` — predictive parallelism
against the load-dependent target E.  In addition, a timer fires when a
request has been executing for E without completing (a long request
mispredicted as short, or a target miss under transient overload); the
dynamic-correction controller then raises the request's degree using
the idle worker threads, re-checking periodically until the request
completes or reaches the maximum degree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.correction import CorrectionController
from ..core.speedup import SpeedupBook
from ..core.target_table import TargetTable
from ..sim.load import LoadMetric
from .tp import TPPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.request import Request
    from ..sim.server import Server

__all__ = ["TPCPolicy"]


class TPCPolicy(TPPolicy):
    """Predictive parallelism plus dynamic correction (the full TPC).

    Ablation knobs (defaults reproduce the paper):

    ``correction_delay_factor``
        Correction fires after ``factor * E`` of execution instead of
        exactly ``E``.  Firing late (>1) lets mispredicted requests run
        longer before help arrives; firing very early approaches
        load-blind ramp-up.  Section 3 argues E itself is the right
        trigger; the ablation benchmark quantifies that.
    ``resource_signal``
        What counts as spare capacity when ramping: ``"idle_workers"``
        (the paper's choice) or ``"idle_hardware"`` (idle hardware
        contexts), the alternative Section 3.2 mentions.
    """

    name = "TPC"

    def __init__(
        self,
        target_table: TargetTable,
        speedup_book: SpeedupBook,
        load_metric: LoadMetric = LoadMetric.LONG_THREADS,
        correction_recheck_ms: float = 5.0,
        correction_delay_factor: float = 1.0,
        resource_signal: str = "idle_workers",
    ) -> None:
        super().__init__(target_table, speedup_book, load_metric)
        if correction_delay_factor <= 0:
            raise ValueError("correction_delay_factor must be > 0")
        if resource_signal not in ("idle_workers", "idle_hardware"):
            raise ValueError(f"unknown resource signal {resource_signal!r}")
        self._recheck_ms = float(correction_recheck_ms)
        self._delay_factor = float(correction_delay_factor)
        self._resource_signal = resource_signal
        self._controller: CorrectionController | None = None

    def bind(self, server: "Server") -> None:
        self._controller = CorrectionController(
            max_degree=server.config.max_parallelism,
            recheck_ms=self._recheck_ms,
        )

    def first_check_delay(
        self, request: "Request", server: "Server"
    ) -> float | None:
        # The correction timer fires when the request has executed for
        # its target E without completing.
        if request.degree >= server.config.max_parallelism:
            return None  # already maximally parallel; nothing to correct
        if request.target_ms is None:
            return None
        return request.target_ms * self._delay_factor

    def _spare_resources(self, server: "Server") -> int:
        if self._resource_signal == "idle_hardware":
            return max(
                server.config.hardware_threads - server.total_active_threads,
                0,
            )
        return server.idle_workers

    def on_check(
        self, request: "Request", server: "Server"
    ) -> tuple[int | None, float | None]:
        assert self._controller is not None, "policy not bound to a server"
        spare = self._spare_resources(server)
        decision = self._controller.decide(request.degree, spare)
        if decision.new_degree is not None:
            request.corrected = True
        observer = self.observer
        if observer is not None:
            observer.on_correction_check(
                request,
                server,
                elapsed_ms=request.running_for(server.now),
                target_ms=request.target_ms,
                spare_workers=spare,
                new_degree=decision.new_degree,
                will_recheck=decision.recheck_after_ms is not None,
            )
        return (decision.new_degree, decision.recheck_after_ms)
