"""The paper's primary contribution: target-driven parallelism.

Contains the speedup-profile model (Section 2.4), predictive-parallelism
degree selection (Section 3.1), the dynamic-correction controller
(Section 3.2), and target-table construction via greedy gradient descent
(Section 3.3, Algorithm 1).
"""

from .speedup import SpeedupProfile, SpeedupBook, demand_group
from .target_table import TargetTable
from .predictive import select_degree
from .correction import CorrectionController, CorrectionDecision
from .table_builder import build_target_table, heuristic_target_table, TableSearchResult

__all__ = [
    "SpeedupProfile",
    "SpeedupBook",
    "demand_group",
    "TargetTable",
    "select_degree",
    "CorrectionController",
    "CorrectionDecision",
    "build_target_table",
    "heuristic_target_table",
    "TableSearchResult",
]
