"""The finance-server workload of Section 5.1.

Requests price Asian options; 10 % are long (9x the short service
demand — e.g. 9x the Monte Carlo paths), issued Poisson open-loop.
Request execution time is estimated from the iteration structure
(paths x steps), so predictions are near-perfect; execution is
parallelized fork-join per averaging iteration, whose per-iteration
synchronisation cost makes short requests parallelize worse than long
ones (see :func:`finance_profile`).

:class:`FinanceWorkload` implements the same protocol as
:class:`~repro.search.workload.SearchWorkload` (``make_requests``,
``speedup_book``, ``group_weights``), so the single-ISN experiment
runner drives both workloads unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import FinanceConfig
from ..core.speedup import SpeedupBook, SpeedupProfile
from ..errors import WorkloadError
from ..rng import RngFactory
from ..sim.request import Request
from .montecarlo import MonteCarloPricer
from .option import AsianOption

__all__ = ["FinanceWorkload", "build_finance_workload", "finance_profile"]

#: Fixed structural-cost constant: milliseconds per path-step update.
#: (A deployment would measure this once with
#: ``MonteCarloPricer.calibrate_ms_per_path_step``; experiments pin it
#: so results do not depend on host speed.)
MS_PER_PATH_STEP = 5.0e-5

#: Path-steps per request are chosen so a short request costs
#: ``short_demand_ms``: with 100 averaging steps, 10 ms = 2000 paths.
AVERAGING_STEPS = 100


def finance_profile(
    demand_ms: float, config: FinanceConfig, n_steps: int = AVERAGING_STEPS
) -> SpeedupProfile:
    """Speedup profile of a fork-join Monte Carlo request.

    ``T_d = f*L + (1-f)*L/d + c*(d-1)*L/d^2-ish`` would be one choice;
    we use the mechanistic version: a serial fraction, near-linear
    parallel section with a per-thread synchronisation loss, plus a
    fork-join cost per averaging iteration and extra thread.  The
    iteration overhead is *absolute*, so short requests (fewer paths,
    same iteration count) parallelize visibly worse — the reason AP's
    parallelize-everything strategy wastes CPU on this server.
    """
    f = config.serial_fraction
    speedups = [1.0]
    for d in range(2, config.max_parallelism + 1):
        t_d = (
            f * demand_ms
            + (1.0 - f)
            * demand_ms
            / d
            * (1.0 + config.sync_loss_per_thread * (d - 1))
            + n_steps * config.join_overhead_ms * (d - 1)
        )
        speedups.append(max(demand_ms / t_d, speedups[-1]))
    return SpeedupProfile(speedups)


@dataclass
class FinanceWorkload:
    """Bimodal option-pricing request generator."""

    config: FinanceConfig
    speedup_book: SpeedupBook
    group_weights: tuple[float, ...]
    short_profile: SpeedupProfile
    long_profile: SpeedupProfile
    option: AsianOption = field(default_factory=AsianOption)

    @property
    def short_paths(self) -> int:
        """Monte Carlo paths of a short request."""
        return int(
            round(
                self.config.short_demand_ms
                / (MS_PER_PATH_STEP * AVERAGING_STEPS)
            )
        )

    @property
    def long_paths(self) -> int:
        """Monte Carlo paths of a long request."""
        return int(round(self.short_paths * self.config.long_demand_multiplier))

    def structural_time_ms(self, n_paths: int) -> float:
        """The structural estimate: cost is linear in paths x steps."""
        return n_paths * AVERAGING_STEPS * MS_PER_PATH_STEP

    def make_requests(
        self,
        n: int,
        rng: np.random.Generator,
        prediction: str = "model",
        oracle_sigma: float = 0.0,
        rid_offset: int = 0,
    ) -> list[Request]:
        """Sample ``n`` requests (10 % long by default).

        ``prediction="model"`` uses the structural estimate perturbed
        by the (tiny) configured estimation noise; ``"perfect"`` uses
        the true demand; ``"oracle"`` applies ``oracle_sigma`` noise.
        """
        if n < 1:
            raise WorkloadError(f"n must be >= 1, got {n}")
        if prediction not in ("model", "perfect", "oracle"):
            raise WorkloadError(f"unknown prediction mode {prediction!r}")
        cfg = self.config
        is_long = rng.random(n) < cfg.long_fraction
        structural = np.where(
            is_long,
            self.structural_time_ms(self.long_paths),
            self.structural_time_ms(self.short_paths),
        )
        demand_noise = (
            rng.lognormal(0.0, cfg.demand_noise, size=n)
            if cfg.demand_noise > 0
            else np.ones(n)
        )
        demands = structural * demand_noise
        if prediction == "perfect":
            predictions = demands.copy()
        elif prediction == "oracle":
            predictions = demands * rng.lognormal(0.0, oracle_sigma, size=n)
        else:
            pred_noise = (
                rng.lognormal(0.0, cfg.prediction_noise, size=n)
                if cfg.prediction_noise > 0
                else np.ones(n)
            )
            predictions = structural * pred_noise
        return [
            Request(
                rid=rid_offset + i,
                demand_ms=float(demands[i]),
                predicted_ms=float(predictions[i]),
                speedup=self.long_profile if is_long[i] else self.short_profile,
            )
            for i in range(n)
        ]

    def price_request(
        self, is_long: bool, rng: np.random.Generator
    ) -> "object":
        """Actually run the Monte Carlo pricer for one request.

        Returns the :class:`~repro.finance.montecarlo.PricingResult`;
        used by the example application to show the substrate is real,
        not a stub.
        """
        pricer = MonteCarloPricer()
        paths = self.long_paths if is_long else self.short_paths
        return pricer.price(self.option, paths, AVERAGING_STEPS, rng)


def build_finance_workload(
    config: FinanceConfig | None = None,
) -> FinanceWorkload:
    """Assemble the Section 5.1 workload.

    Short and long requests get distinct speedup profiles from the
    fork-join mechanism: the serial fraction and per-iteration join
    cost weigh proportionally more on short requests.
    """
    cfg = config if config is not None else FinanceConfig()
    short_ms = cfg.short_demand_ms
    long_ms = short_ms * cfg.long_demand_multiplier
    short_profile = finance_profile(short_ms, cfg)
    long_profile = finance_profile(long_ms, cfg)
    mid_profile = finance_profile((short_ms + long_ms) / 2.0, cfg)
    book = SpeedupBook([short_profile, mid_profile, long_profile])
    weights = [0.0, 0.0, 0.0]
    weights[book.group_of(short_ms)] += 1.0 - cfg.long_fraction
    weights[book.group_of(long_ms)] += cfg.long_fraction
    return FinanceWorkload(
        config=cfg,
        speedup_book=book,
        group_weights=tuple(weights),
        short_profile=short_profile,
        long_profile=long_profile,
    )
