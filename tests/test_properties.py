"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import ServerConfig
from repro.core.predictive import select_degree
from repro.core.speedup import SpeedupProfile, amdahl_profile, demand_group
from repro.core.target_table import TargetTable
from repro.sim.engine import Engine
from repro.sim.metrics import percentile
from repro.sim.server import Server

from conftest import make_request
from test_server import FixedDegreePolicy


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

speedup_lists = st.lists(
    st.floats(min_value=0.0, max_value=0.9), min_size=1, max_size=7
).map(lambda increments: tuple(np.cumsum([1.0] + increments).tolist()))


@st.composite
def target_tables(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    loads = sorted(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=100),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    targets = draw(
        st.lists(
            st.floats(min_value=1, max_value=500), min_size=n, max_size=n
        )
    )
    return TargetTable(zip(loads, targets))


# ---------------------------------------------------------------------------
# SpeedupProfile invariants
# ---------------------------------------------------------------------------


@given(speedup_lists)
def test_profile_execution_time_antimonotone_in_degree(speedups):
    profile = SpeedupProfile(speedups)
    times = [profile.execution_time(100.0, d) for d in range(1, profile.max_degree + 1)]
    assert all(b <= a + 1e-9 for a, b in zip(times, times[1:]))


@given(speedup_lists, st.integers(min_value=1, max_value=20))
def test_profile_saturation_beyond_max_degree(speedups, extra):
    profile = SpeedupProfile(speedups)
    assert profile.speedup(profile.max_degree + extra) == profile.speedup(
        profile.max_degree
    )


@given(
    st.floats(min_value=0.0, max_value=0.95),
    st.floats(min_value=0.0, max_value=0.2),
    st.integers(min_value=1, max_value=12),
)
def test_amdahl_profile_always_valid(serial, loss, degree):
    profile = amdahl_profile(degree, serial, loss)
    assert profile.speedup(1) == 1.0
    values = profile.speedups
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


# ---------------------------------------------------------------------------
# select_degree invariants
# ---------------------------------------------------------------------------


@given(
    speedup_lists,
    st.floats(min_value=0.1, max_value=1000.0),
    st.floats(min_value=0.1, max_value=500.0),
)
def test_select_degree_is_minimal_and_feasible(speedups, predicted, target):
    profile = SpeedupProfile(speedups)
    degree = select_degree(predicted, target, profile)
    assert 1 <= degree <= profile.max_degree
    meets = profile.execution_time(predicted, degree) <= target
    if degree == 1:
        assert meets or profile.max_degree == 1 or not any(
            profile.execution_time(predicted, d) <= target
            for d in range(1, profile.max_degree + 1)
        ) or predicted <= target
    elif meets:
        # minimality: one fewer thread would miss the target
        assert profile.execution_time(predicted, degree - 1) > target
    else:
        # infeasible target -> maximum degree
        assert degree == profile.max_degree


# ---------------------------------------------------------------------------
# TargetTable invariants
# ---------------------------------------------------------------------------


@given(target_tables(), st.floats(min_value=-10, max_value=1000))
def test_target_lookup_always_returns_a_table_entry(table, load):
    assert table.target_for(load) in table.targets


@given(target_tables(), st.floats(min_value=0, max_value=200))
def test_bump_only_changes_one_entry(table, step):
    for i in range(len(table)):
        bumped = table.bumped(i, step)
        for j in range(len(table)):
            if i == j:
                assert bumped.targets[j] == table.targets[j] + step
            else:
                assert bumped.targets[j] == table.targets[j]


# ---------------------------------------------------------------------------
# demand_group invariants
# ---------------------------------------------------------------------------


@given(st.floats(min_value=0.001, max_value=10_000))
def test_demand_group_is_monotone(demand):
    g1 = demand_group(demand)
    g2 = demand_group(demand * 2)
    assert g2 >= g1


# ---------------------------------------------------------------------------
# Percentile invariants
# ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200),
    st.floats(min_value=1, max_value=99),
)
def test_percentile_within_sample_range(values, p):
    result = percentile(values, p)
    assert min(values) <= result <= max(values)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100))
def test_percentiles_monotone_in_p(values):
    ps = [50, 90, 99, 99.9]
    results = [percentile(values, p) for p in ps]
    assert all(b >= a for a, b in zip(results, results[1:]))


# ---------------------------------------------------------------------------
# Server conservation properties
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.5, max_value=100.0), min_size=1, max_size=30
    ),
    st.integers(min_value=1, max_value=6),
)
def test_server_completes_all_work_exactly(demands, degree):
    """Work conservation: every request completes with zero remaining
    work and non-negative queueing, regardless of demands and degree."""
    server = Server(ServerConfig(), FixedDegreePolicy(degree), engine=Engine())
    profile = SpeedupProfile([1.0] * 6)  # no speedup: timing is exact
    reqs = [
        make_request(i, d, profile=profile) for i, d in enumerate(demands)
    ]
    for r in reqs:
        server.submit(r)
    server.run_to_completion(len(reqs))
    for r in reqs:
        assert r.remaining_work_ms <= 1e-6
        assert r.queueing_ms >= -1e-9
        assert r.finish_ms >= r.arrival_ms


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.5, max_value=50.0), min_size=2, max_size=20
    )
)
def test_sequential_response_at_least_demand(demands):
    """No request can beat its own demand at degree 1."""
    server = Server(ServerConfig(), FixedDegreePolicy(1), engine=Engine())
    profile = SpeedupProfile([1.0])
    reqs = [make_request(i, d, profile=profile) for i, d in enumerate(demands)]
    for r in reqs:
        server.submit(r)
    server.run_to_completion(len(reqs))
    for r in reqs:
        assert r.response_ms >= r.demand_ms - 1e-6
