"""F5 — Figure 5: 99.9th-percentile latency vs load, five policies.

Expected shape (Section 4.3): Pred collapses at P99.9 — its
mispredicted long queries (~0.5 % of all queries, more than 0.1 %)
run sequentially and dominate this percentile — while TPC's dynamic
correction keeps the very high tail low.  The paper reports up to 40 %
reduction over the best prior work at moderate/high load.
"""

from conftest import emit, qps_grid
from repro.experiments.report import format_table

POLICIES = ("Sequential", "WQ-Linear", "AP", "Pred", "TPC")


def test_fig5_p999_vs_load(benchmark, main_sweep):
    sweep = benchmark.pedantic(lambda: main_sweep, rounds=1, iterations=1)
    grid = qps_grid()
    rows = [
        [int(qps)] + [round(sweep[p][i].p999_ms, 1) for p in POLICIES]
        for i, qps in enumerate(grid)
    ]
    emit(
        "fig5_p999",
        format_table(
            ["QPS", *POLICIES],
            rows,
            title="Figure 5 - P99.9 latency (ms) vs load",
        ),
    )

    for i in range(len(grid)):
        # TPC holds the lowest (or tied-lowest) P99.9 at every load.
        best_prior = min(sweep[p][i].p999_ms for p in POLICIES[:-1])
        assert sweep["TPC"][i].p999_ms <= best_prior * 1.10, f"load index {i}"
        # Pred is much worse than TPC at P99.9 — the mispredicted-long
        # effect prediction alone cannot fix.
        assert sweep["Pred"][i].p999_ms > sweep["TPC"][i].p999_ms * 1.25
    # Pred's P99.9 approaches Sequential's (same mechanism: the
    # mispredicted long queries run sequentially).
    mid = len(grid) // 2
    assert sweep["Pred"][mid].p999_ms > sweep["Sequential"][mid].p999_ms * 0.5
