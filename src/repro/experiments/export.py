"""CSV export of figure series.

The benchmarks print paper-style text tables; this module exports the
same series as CSV so users can re-plot the figures with their tool of
choice (the repository deliberately has no plotting dependency).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence

from ..errors import ConfigError

__all__ = ["series_to_csv", "write_series_csv"]


def series_to_csv(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render ``{name: y-values}`` series keyed by x as CSV text."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(x_values)}"
            )
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([x_label, *series.keys()])
    for i, x in enumerate(x_values):
        writer.writerow([x, *(values[i] for values in series.values())])
    return buffer.getvalue()


def write_series_csv(
    path: str | Path,
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
) -> Path:
    """Write the CSV to ``path`` (parents created) and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(series_to_csv(x_label, x_values, series))
    return target
