"""Deterministic per-ISN fault models for the cluster simulation.

A :class:`FaultSpec` is a frozen, picklable value describing *when and
how* individual ISNs misbehave, in three shapes observed in production
partition-aggregate clusters:

* **slowdown** — a transient demand multiplier over ``[t0, t1)``
  (background compaction, co-located batch job, thermal throttling):
  replicas arriving at the ISN inside the window cost
  ``severity``× their nominal demand;
* **degraded** — a shrunken worker pool over ``[t0, t1)`` (cores lost
  to a noisy neighbour or offlined by the OS): the ISN dispatches at
  most ``severity`` workers while the window is open, draining — not
  preempting — any excess already running;
* **blackout** — a crash window over ``[t0, t1)``: replicas in flight
  at ``t0`` are killed, and replicas arriving inside the window are
  dropped without a response.

Because the spec is plain frozen data (dataclasses of scalars), it
participates in :func:`repro.exec.spec.spec_hash` content hashes, so
faulted sweeps cache correctly: the same seed and the same spec is the
same cell.  :func:`sample_fault_spec` draws a random spec from a
:class:`~repro.rng.RngFactory` stream, so randomised fault campaigns
are reproducible from a single experiment seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..rng import RngFactory

__all__ = ["FaultKind", "FaultWindow", "FaultSpec", "sample_fault_spec"]


#: Window kinds (plain strings so specs canonicalise trivially).
class FaultKind:
    """Names of the supported fault shapes."""

    SLOWDOWN = "slowdown"
    DEGRADED = "degraded"
    BLACKOUT = "blackout"

    ALL = (SLOWDOWN, DEGRADED, BLACKOUT)


@dataclass(frozen=True)
class FaultWindow:
    """One fault episode on one ISN over ``[t0_ms, t1_ms)``.

    ``severity`` is kind-specific: the demand multiplier of a slowdown
    (> 1), the remaining worker count of a degraded window (>= 1), and
    unused (fixed at 0.0) for a blackout.
    """

    kind: str
    isn: int
    t0_ms: float
    t1_ms: float
    severity: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.isn < 0:
            raise ConfigError(f"isn must be >= 0, got {self.isn}")
        if not 0 <= self.t0_ms < self.t1_ms:
            raise ConfigError(
                f"fault window needs 0 <= t0 < t1, got [{self.t0_ms}, "
                f"{self.t1_ms})"
            )
        if self.kind == FaultKind.SLOWDOWN and self.severity <= 1.0:
            raise ConfigError(
                f"slowdown severity is a demand multiplier > 1, got "
                f"{self.severity}"
            )
        if self.kind == FaultKind.DEGRADED and (
            self.severity < 1 or self.severity != int(self.severity)
        ):
            raise ConfigError(
                f"degraded severity is a worker count >= 1, got "
                f"{self.severity}"
            )

    def active_at(self, t_ms: float) -> bool:
        """True while the window is open (half-open interval)."""
        return self.t0_ms <= t_ms < self.t1_ms


@dataclass(frozen=True)
class FaultSpec:
    """A frozen set of per-ISN fault windows (canonically ordered)."""

    windows: tuple[FaultWindow, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.windows,
                key=lambda w: (w.t0_ms, w.t1_ms, w.isn, w.kind),
            )
        )
        object.__setattr__(self, "windows", ordered)

    # -- constructors ---------------------------------------------------

    @classmethod
    def none(cls) -> "FaultSpec":
        """The healthy cluster: no fault windows."""
        return cls(())

    @classmethod
    def straggler(
        cls,
        isn: int,
        multiplier: float,
        t0_ms: float = 0.0,
        t1_ms: float = float("inf"),
    ) -> "FaultSpec":
        """One ISN slowed by ``multiplier`` over ``[t0, t1)``."""
        if t1_ms == float("inf"):
            t1_ms = 1e12  # effectively the whole run, but hashable/finite
        return cls(
            (FaultWindow(FaultKind.SLOWDOWN, isn, t0_ms, t1_ms, multiplier),)
        )

    @classmethod
    def degraded(
        cls, isn: int, workers: int, t0_ms: float, t1_ms: float
    ) -> "FaultSpec":
        """One ISN with a shrunken worker pool over ``[t0, t1)``."""
        return cls(
            (FaultWindow(FaultKind.DEGRADED, isn, t0_ms, t1_ms, float(workers)),)
        )

    @classmethod
    def blackout(cls, isn: int, t0_ms: float, t1_ms: float) -> "FaultSpec":
        """One ISN crashed over ``[t0, t1)``."""
        return cls((FaultWindow(FaultKind.BLACKOUT, isn, t0_ms, t1_ms),))

    @classmethod
    def rolling_blackout(
        cls,
        num_isns: int,
        duration_ms: float,
        stagger_ms: float,
        start_ms: float = 0.0,
        count: int | None = None,
    ) -> "FaultSpec":
        """Consecutive ISNs crash one after another (rolling restart).

        ISN ``i`` is down over ``[start + i * stagger, ... + duration)``
        for the first ``count`` ISNs (all of them by default).
        """
        if num_isns < 1:
            raise ConfigError("num_isns must be >= 1")
        if duration_ms <= 0 or stagger_ms < 0:
            raise ConfigError("duration must be > 0 and stagger >= 0")
        count = num_isns if count is None else count
        if not 1 <= count <= num_isns:
            raise ConfigError(f"count must be in [1, num_isns], got {count}")
        return cls(
            tuple(
                FaultWindow(
                    FaultKind.BLACKOUT,
                    isn,
                    start_ms + isn * stagger_ms,
                    start_ms + isn * stagger_ms + duration_ms,
                )
                for isn in range(count)
            )
        )

    def merged_with(self, other: "FaultSpec") -> "FaultSpec":
        """The union of two specs' windows."""
        return FaultSpec(self.windows + other.windows)

    # -- queries --------------------------------------------------------

    @property
    def is_noop(self) -> bool:
        """True when the spec injects nothing."""
        return not self.windows

    @property
    def has_blackouts(self) -> bool:
        """True when any window is a blackout (needs k < n or hedging)."""
        return any(w.kind == FaultKind.BLACKOUT for w in self.windows)

    def validate_for(self, num_isns: int) -> None:
        """Check every window addresses an existing ISN."""
        for w in self.windows:
            if w.isn >= num_isns:
                raise ConfigError(
                    f"fault window targets ISN {w.isn} but the cluster "
                    f"has only {num_isns} ISNs"
                )
        if self.has_blackouts:
            starts = [
                w.t0_ms for w in self.windows if w.kind == FaultKind.BLACKOUT
            ]
            for t in starts:
                down = sum(
                    1 for isn in range(num_isns) if self.is_blacked_out(isn, t)
                )
                if down >= num_isns:
                    raise ConfigError(
                        f"every ISN is blacked out simultaneously at "
                        f"t={t:g} ms; at least one node must stay reachable"
                    )

    def demand_multiplier(self, isn: int, t_ms: float) -> float:
        """Product of all slowdown multipliers open on ``isn`` at ``t``."""
        factor = 1.0
        for w in self.windows:
            if (
                w.kind == FaultKind.SLOWDOWN
                and w.isn == isn
                and w.active_at(t_ms)
            ):
                factor *= w.severity
        return factor

    def worker_limit(self, isn: int, t_ms: float) -> int | None:
        """Smallest degraded-pool cap open on ``isn`` at ``t`` (or None)."""
        limit: int | None = None
        for w in self.windows:
            if (
                w.kind == FaultKind.DEGRADED
                and w.isn == isn
                and w.active_at(t_ms)
            ):
                cap = int(w.severity)
                limit = cap if limit is None else min(limit, cap)
        return limit

    def is_blacked_out(self, isn: int, t_ms: float) -> bool:
        """True while ``isn`` sits inside any blackout window."""
        return any(
            w.kind == FaultKind.BLACKOUT and w.isn == isn and w.active_at(t_ms)
            for w in self.windows
        )

    def transition_times(self, kind: str) -> list[tuple[float, int]]:
        """Sorted, deduplicated ``(time, isn)`` boundaries of one kind.

        The resilient runner schedules a state-recomputation event at
        each boundary (window opening or closing).
        """
        points = {
            (t, w.isn)
            for w in self.windows
            if w.kind == kind
            for t in (w.t0_ms, w.t1_ms)
        }
        return sorted(points)


def sample_fault_spec(
    rngs: RngFactory,
    num_isns: int,
    horizon_ms: float,
    slowdown_probability: float = 0.15,
    slowdown_multiplier: tuple[float, float] = (2.0, 6.0),
    degraded_probability: float = 0.1,
    degraded_workers: int = 8,
    blackout_probability: float = 0.0,
    mean_window_ms: float = 2_000.0,
    stream: str = "faults",
) -> FaultSpec:
    """Draw a random fault campaign from a named RNG stream.

    Each ISN independently suffers at most one window per kind: a
    Bernoulli draw per kind decides whether the episode happens, its
    start is uniform over the horizon, and its length exponential with
    mean ``mean_window_ms`` (clipped to the horizon).  The same
    ``(RngFactory seed, arguments)`` always produces the same spec, so
    sampled campaigns hash — and therefore cache — deterministically.
    """
    if num_isns < 1:
        raise ConfigError("num_isns must be >= 1")
    if horizon_ms <= 0:
        raise ConfigError("horizon_ms must be > 0")
    lo, hi = slowdown_multiplier
    if not 1.0 < lo <= hi:
        raise ConfigError(
            f"slowdown_multiplier must satisfy 1 < lo <= hi, got {lo}, {hi}"
        )
    rng = rngs.get(stream)
    windows: list[FaultWindow] = []
    for isn in range(num_isns):
        for kind, probability in (
            (FaultKind.SLOWDOWN, slowdown_probability),
            (FaultKind.DEGRADED, degraded_probability),
            (FaultKind.BLACKOUT, blackout_probability),
        ):
            # One draw per (isn, kind) regardless of the outcome keeps
            # the stream layout stable when probabilities change.
            u = float(rng.random())
            t0 = float(rng.uniform(0.0, horizon_ms))
            length = float(rng.exponential(mean_window_ms))
            if u >= probability:
                continue
            t1 = min(t0 + max(length, 1.0), horizon_ms)
            if t1 <= t0:
                continue
            if kind == FaultKind.SLOWDOWN:
                severity = float(rng.uniform(lo, hi))
            elif kind == FaultKind.DEGRADED:
                severity = float(degraded_workers)
            else:
                severity = 0.0
            windows.append(FaultWindow(kind, isn, t0, t1, severity))
    spec = FaultSpec(tuple(windows))
    spec.validate_for(num_isns)
    return spec
