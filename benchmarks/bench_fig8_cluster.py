"""F8 — Figure 8: tail latency in a cluster of 40 ISNs at 300 QPS.

(a) CDF of aggregator response time for Sequential/AP/Pred/TPC:
    the paper reports P99 of 132.2 / 108.9 / 77.7 ms for AP / Pred /
    TPC — a 29 % reduction over the best prior work — and TPC with
    <0.4 % of queries over 100 ms vs 3.3 % (AP) and 1.7 % (Pred).
(b) The aggregator's P99 corresponds to a much higher per-ISN
    percentile (~P99.8), because the aggregator waits for the slowest
    of 40 ISNs.
"""

from conftest import (
    BENCH_SEED,
    cluster_isns,
    cluster_queries,
    emit,
)
from repro.cluster import run_cluster_experiment
from repro.config import ClusterConfig
from repro.experiments.report import format_cdf_rows, format_table

POLICIES = ("Sequential", "AP", "Pred", "TPC")
#: The paper runs the cluster at 300 QPS — the operating point where
#: AP has started degrading while Pred/TPC hold.  Our reproduction's
#: AP backs off more gracefully, so the equivalent operating point
#: sits at a somewhat higher load (see EXPERIMENTS.md).
QPS = 450.0


def _run(workload, search_table):
    results = {}
    for policy in POLICIES:
        # workers=None: fan the per-ISN simulations over the exec pool
        # (REPRO_BENCH_WORKERS / cpu count); numbers are bit-identical
        # to the single-process run.
        results[policy] = run_cluster_experiment(
            workload,
            policy,
            QPS,
            cluster_queries(),
            BENCH_SEED,
            cluster_config=ClusterConfig(num_isns=cluster_isns()),
            target_table=search_table,
            workers=None,
        )
    return results


def test_fig8a_cluster_cdf(benchmark, workload, search_table):
    results = benchmark.pedantic(
        lambda: _run(workload, search_table), rounds=1, iterations=1
    )
    latencies = {
        p: results[p].aggregator_latencies_ms for p in POLICIES
    }
    emit(
        "fig8a_cluster_cdf",
        format_cdf_rows(latencies, [95, 98, 99, 99.5, 99.9])
        + "\n\n"
        + format_table(
            ["policy", "P99 (ms)", "% slower than 100ms"],
            [
                [
                    p,
                    round(results[p].aggregator_percentile(99), 1),
                    round(100 * results[p].fraction_slower_than(100.0), 2),
                ]
                for p in POLICIES
            ],
            title=f"Figure 8(a) - aggregator latency, {cluster_isns()} ISNs @ {QPS:g} QPS",
        ),
    )

    p99 = {p: results[p].aggregator_percentile(99) for p in POLICIES}
    # TPC achieves the lowest cluster P99 of all policies.
    best_prior = min(p99[p] for p in POLICIES[:-1])
    assert p99["TPC"] < best_prior
    # TPC leaves the smallest fraction of responses over 100 ms.
    slow = {p: results[p].fraction_slower_than(100.0) for p in POLICIES}
    assert slow["TPC"] <= min(slow[p] for p in POLICIES[:-1])
    # Ordering of the paper: TPC < Pred < AP < Sequential at P99
    # (small tolerance on the Pred/AP middle of the ordering, which is
    # load-point sensitive).
    assert p99["TPC"] < p99["Pred"] * 1.02
    assert p99["Pred"] < p99["AP"] * 1.10
    assert p99["AP"] < p99["Sequential"]

    # Figure 8(b): the aggregator P99 maps to a much higher ISN
    # percentile (paper: ~P99.8 with 40 ISNs).
    tpc = results["TPC"]
    isn_pct = tpc.isn_percentile_of_latency(tpc.aggregator_percentile(99))
    emit(
        "fig8b_percentile_mapping",
        format_table(
            ["quantity", "value"],
            [
                ["aggregator P99 (ms)", round(tpc.aggregator_percentile(99), 1)],
                ["same latency at ISN percentile", round(isn_pct, 2)],
                ["ISN P99 (ms)", round(tpc.isn_percentile(99), 1)],
            ],
            title="Figure 8(b) - aggregator vs ISN percentile",
        ),
    )
    assert isn_pct > 99.4
