"""Tests for the ISN server model: queueing, processor sharing,
mid-flight degree changes, and completion accounting."""

import pytest

from repro.config import ServerConfig
from repro.core.speedup import SpeedupProfile
from repro.errors import SchedulingError, SimulationError
from repro.policies.base import ParallelismPolicy
from repro.sim.engine import Engine
from repro.sim.request import Request, RequestState
from repro.sim.server import Server

from conftest import LONG_PROFILE, make_request


class FixedDegreePolicy(ParallelismPolicy):
    """Test helper: every request starts at a fixed degree."""

    name = "Fixed"

    def __init__(self, degree: int = 1):
        self.degree = degree

    def initial_degree(self, request, server):
        return self.degree


class TimedRampPolicy(ParallelismPolicy):
    """Test helper: raise to a target degree after a delay."""

    name = "TimedRamp"

    def __init__(self, delay_ms: float, to_degree: int):
        self.delay_ms = delay_ms
        self.to_degree = to_degree

    def initial_degree(self, request, server):
        return 1

    def first_check_delay(self, request, server):
        return self.delay_ms

    def on_check(self, request, server):
        return (self.to_degree, None)


def make_server(policy, **config_kwargs) -> Server:
    cfg = ServerConfig(**config_kwargs) if config_kwargs else ServerConfig()
    return Server(cfg, policy, engine=Engine())


LINEAR6 = SpeedupProfile([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])


class TestSequentialExecution:
    def test_single_request_latency_equals_demand(self):
        server = make_server(FixedDegreePolicy(1))
        req = make_request(0, demand_ms=20.0)
        server.submit(req)
        server.run_to_completion(1)
        assert req.response_ms == pytest.approx(20.0)
        assert req.queueing_ms == pytest.approx(0.0)

    def test_fifo_order_preserved(self):
        server = make_server(FixedDegreePolicy(1), worker_threads=1,
                             max_parallelism=1)
        first = make_request(0, 10.0)
        second = make_request(1, 10.0)
        server.submit(first)
        server.submit(second)
        server.run_to_completion(2)
        assert first.finish_ms == pytest.approx(10.0)
        assert second.queueing_ms == pytest.approx(10.0)
        assert second.finish_ms == pytest.approx(20.0)

    def test_states_transition_correctly(self):
        server = make_server(FixedDegreePolicy(1))
        req = make_request(0, 5.0)
        assert req.state is RequestState.CREATED
        server.submit(req)
        assert req.state is RequestState.RUNNING  # worker was idle
        server.run_to_completion(1)
        assert req.state is RequestState.COMPLETED

    def test_double_submit_rejected(self):
        server = make_server(FixedDegreePolicy(1))
        req = make_request(0, 5.0)
        server.submit(req)
        with pytest.raises(SimulationError):
            server.submit(req)


class TestParallelExecution:
    def test_parallel_request_speeds_up_by_profile(self):
        server = make_server(FixedDegreePolicy(4))
        req = make_request(0, demand_ms=100.0, profile=LINEAR6)
        server.submit(req)
        server.run_to_completion(1)
        assert req.response_ms == pytest.approx(25.0)
        assert req.initial_degree == 4

    def test_degree_clamped_to_max_parallelism(self):
        server = make_server(FixedDegreePolicy(10))
        req = make_request(0, 60.0, profile=LINEAR6)
        server.submit(req)
        server.run_to_completion(1)
        assert req.initial_degree == 6

    def test_degree_clamped_to_idle_workers(self):
        server = make_server(
            FixedDegreePolicy(6), worker_threads=8, hardware_threads=8,
            physical_cores=8,
        )
        a = make_request(0, 100.0, profile=LINEAR6)
        b = make_request(1, 100.0, profile=LINEAR6)
        server.submit(a)
        server.submit(b)  # only 2 workers left
        assert a.degree == 6
        assert b.degree == 2

    def test_zero_degree_policy_rejected(self):
        server = make_server(FixedDegreePolicy(0))
        with pytest.raises(SchedulingError):
            server.submit(make_request(0, 10.0))


class TestProcessorSharing:
    def test_no_contention_below_physical_cores(self):
        server = make_server(FixedDegreePolicy(1))
        reqs = [make_request(i, 30.0) for i in range(12)]
        for r in reqs:
            server.submit(r)
        server.run_to_completion(12)
        for r in reqs:
            assert r.response_ms == pytest.approx(30.0)

    def test_smt_contention_slows_execution(self):
        # 24 concurrent sequential requests on 12 cores with SMT yield
        # 0.35: total rate 16.2, per-thread factor 16.2/24 = 0.675.
        server = make_server(FixedDegreePolicy(1))
        reqs = [make_request(i, 30.0) for i in range(24)]
        for r in reqs:
            server.submit(r)
        server.run_to_completion(24)
        expected = 30.0 / (16.2 / 24)
        for r in reqs:
            assert r.response_ms == pytest.approx(expected, rel=1e-6)

    def test_work_conservation_under_contention(self):
        """Total completed work equals total demand regardless of the
        interleaving (fluid simulation conserves work)."""
        server = make_server(FixedDegreePolicy(1))
        demands = [10.0, 25.0, 40.0, 5.0, 60.0]
        reqs = [make_request(i, d) for i, d in enumerate(demands)]
        for r in reqs:
            server.submit(r)
        server.run_to_completion(len(reqs))
        for r in reqs:
            assert r.remaining_work_ms <= 1e-6

    def test_completion_order_by_remaining_work(self):
        server = make_server(FixedDegreePolicy(1))
        short = make_request(0, 10.0)
        long = make_request(1, 50.0)
        server.submit(long)
        server.submit(short)
        server.run_to_completion(2)
        assert short.finish_ms < long.finish_ms


class TestDegreeChanges:
    def test_rampup_accelerates_remaining_work(self):
        # 100 ms of work; at t=20 the degree jumps to 4 (linear
        # profile): total = 20 + (80 + penalty)/4.
        server = make_server(TimedRampPolicy(20.0, 4))
        req = make_request(0, 100.0, profile=LINEAR6)
        server.submit(req)
        server.run_to_completion(1)
        penalty = ServerConfig().rampup_penalty_ms
        assert req.response_ms == pytest.approx(20.0 + (80.0 + penalty) / 4.0)
        assert req.max_degree_seen == 4
        assert req.degree_changes == 1

    def test_rampup_penalty_charged_once_per_increase(self):
        cfg_penalty = ServerConfig().rampup_penalty_ms
        server = make_server(TimedRampPolicy(10.0, 2))
        req = make_request(0, 50.0, profile=LINEAR6)
        server.submit(req)
        server.run_to_completion(1)
        assert req.response_ms == pytest.approx(10.0 + (40.0 + cfg_penalty) / 2.0)

    def test_raise_degree_limited_by_idle_workers(self):
        server = make_server(
            FixedDegreePolicy(1), worker_threads=3, hardware_threads=8,
            physical_cores=8, max_parallelism=3,
        )
        a = make_request(0, 100.0, profile=LINEAR6)
        b = make_request(1, 100.0, profile=LINEAR6)
        server.submit(a)
        server.submit(b)
        granted = server.raise_degree(a, 6)
        assert granted == 2  # only one idle worker existed
        assert server.idle_workers == 0

    def test_raise_degree_on_completed_request_rejected(self):
        server = make_server(FixedDegreePolicy(1))
        req = make_request(0, 10.0)
        server.submit(req)
        server.run_to_completion(1)
        with pytest.raises(SchedulingError):
            server.raise_degree(req, 2)

    def test_lower_degree_request_ignored(self):
        server = make_server(FixedDegreePolicy(4))
        req = make_request(0, 100.0, profile=LINEAR6)
        server.submit(req)
        assert server.raise_degree(req, 2) == 4  # no decrease applied


class TestLoadSurface:
    def test_thread_accounting(self):
        server = make_server(FixedDegreePolicy(3))
        req = make_request(0, 100.0, predicted_ms=120.0, profile=LINEAR6)
        server.submit(req)
        assert server.total_active_threads == 3
        assert server.active_long_threads == 3  # predicted 120 > 80
        assert server.idle_workers == ServerConfig().worker_threads - 3

    def test_short_predicted_requests_not_counted_long(self):
        server = make_server(FixedDegreePolicy(2))
        req = make_request(0, 100.0, predicted_ms=20.0, profile=LINEAR6)
        server.submit(req)
        assert server.active_long_threads == 0
        assert server.total_active_threads == 2

    def test_queue_length_counts_waiting_only(self):
        server = make_server(
            FixedDegreePolicy(1), worker_threads=1, max_parallelism=1
        )
        server.submit(make_request(0, 50.0))
        server.submit(make_request(1, 50.0))
        server.submit(make_request(2, 50.0))
        assert server.queue_length == 2
        assert server.running_count == 1

    def test_completion_callback_invoked(self):
        seen = []
        cfg = ServerConfig()
        server = Server(
            cfg, FixedDegreePolicy(1), engine=Engine(),
            completion_callback=lambda r: seen.append(r.rid),
        )
        server.submit(make_request(7, 10.0))
        server.run_to_completion(1)
        assert seen == [7]

    def test_cpu_utilization_tracks_busy_fraction(self):
        server = make_server(FixedDegreePolicy(1))
        # Keep 6 of 12 physical cores busy for several sample windows.
        reqs = [make_request(i, 200.0) for i in range(6)]
        for r in reqs:
            server.submit(r)
        server.engine.run_until(150.0)
        assert 0.2 < server.cpu_utilization < 0.5  # ~6/16.2 = 0.37

    def test_cpu_utilization_resets_when_idle(self):
        server = make_server(FixedDegreePolicy(1))
        server.submit(make_request(0, 10.0))
        server.run_to_completion(1)
        server.engine.run()  # let the sampler drain
        assert server.cpu_utilization == 0.0


class TestRecorderIntegration:
    def test_recorder_captures_all_fields(self):
        server = make_server(FixedDegreePolicy(2))
        req = make_request(0, 40.0, predicted_ms=50.0, profile=LINEAR6)
        server.submit(req)
        server.run_to_completion(1)
        rec = server.recorder
        assert len(rec) == 1
        assert rec.demands_ms[0] == 40.0
        assert rec.predictions_ms[0] == 50.0
        assert rec.initial_degrees[0] == 2
        assert rec.max_degrees[0] == 2
        assert rec.corrected[0] is False

    def test_run_to_completion_raises_on_drained_engine(self):
        server = make_server(FixedDegreePolicy(1))
        with pytest.raises(SimulationError):
            server.run_to_completion(1)


class TestSamplerIdleShutdown:
    """The CPU sampler unsubscribes while fully idle and re-arms on
    the next submit — no event churn in idle tails."""

    def test_engine_drains_after_completion(self):
        server = make_server(FixedDegreePolicy(1))
        server.submit(make_request(0, 10.0))
        server.run_to_completion(1)
        # Let any final sampler event fire: the engine must then drain
        # completely instead of a sampler re-arming itself forever.
        assert server.engine.run(max_events=10) <= 1
        assert server.engine.pending == 0

    def test_sampler_rearms_on_next_submit(self):
        server = make_server(FixedDegreePolicy(1))
        server.submit(make_request(0, 10.0))
        server.run_to_completion(1)
        server.engine.run()
        idle_events = server.engine.events_run
        # A long idle gap, then a second burst: sampling resumes and
        # utilisation is measured over the new window, not the gap.
        server.engine.run_until(server.engine.now + 10_000.0)
        assert server.engine.events_run == idle_events
        server.submit(make_request(1, 200.0))
        server.engine.run_until(server.engine.now + 150.0)
        assert server.cpu_utilization > 0.0
        server.run_to_completion(2)
