"""Discrete-event simulation substrate.

This package models one index-serving node (ISN): a multi-core server
with a fixed worker-thread pool, a FIFO waiting queue, processor sharing
across active threads, and per-request parallelism degrees that a policy
may change mid-flight.  It replaces the paper's physical 24-hardware-
thread Xeon testbed (see DESIGN.md for the substitution argument).
"""

from .engine import Engine, EventHandle
from .request import Request, RequestState
from .server import Server
from .client import OpenLoopClient, replay_trace
from .metrics import (
    LatencyRecorder,
    ResilienceStats,
    StreamingLatencyRecorder,
    StreamingQuantile,
    percentile,
    weighted_tail_latency,
)
from .load import LoadMetric, load_value
from .tracing import RequestTracer, attach_tracer

__all__ = [
    "LoadMetric",
    "load_value",
    "RequestTracer",
    "attach_tracer",
    "Engine",
    "EventHandle",
    "Request",
    "RequestState",
    "Server",
    "OpenLoopClient",
    "replay_trace",
    "LatencyRecorder",
    "StreamingLatencyRecorder",
    "StreamingQuantile",
    "ResilienceStats",
    "percentile",
    "weighted_tail_latency",
]
