"""Trace exporters: Chrome trace-event JSON and plain-text timelines.

:func:`chrome_trace` turns request spans into the Chrome/Perfetto
trace-event format (load the file at ``chrome://tracing`` or
https://ui.perfetto.dev): one thread track per request, a ``request``
duration span wrapping a ``queued`` sub-span and one ``run @ d=N``
sub-span per execution segment, plus an instant marker on
cancellation.  All duration events are emitted as balanced B/E pairs
with microsecond timestamps.

:func:`render_timeline` draws the same structure as fixed-width ASCII
for terminals and docs.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Mapping

from ..errors import SimulationError
from .spans import RequestSpan, SpanCause

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "render_timeline",
    "render_timelines",
]

#: Trace-event timestamps are microseconds; simulation time is ms.
_US_PER_MS = 1000.0


def _span_close_ms(span: RequestSpan) -> float:
    """Time to close a span's track at (end, or last known instant)."""
    if span.end_ms is not None:
        return span.end_ms
    if span.segments:
        return span.segments[-1].end_ms
    if span.dispatch_ms is not None:
        return span.dispatch_ms
    return span.arrival_ms


def chrome_trace(
    spans: Iterable[RequestSpan],
    metrics: Mapping[str, float] | None = None,
    process_name: str = "repro-sim",
) -> dict:
    """Build a Chrome trace-event document from request spans.

    Each request gets its own thread (tid = rid) in one process, so the
    trace viewer stacks requests vertically with queue/run phases nested
    inside the request span.  ``metrics`` (a registry snapshot) rides
    along under the top-level ``metrics`` key.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        rid = span.rid
        close_ms = _span_close_ms(span)
        common = {"cat": "request", "pid": 0, "tid": rid}

        def _begin(name: str, ts_ms: float, **args) -> None:
            events.append(
                {
                    "name": name,
                    "ph": "B",
                    "ts": ts_ms * _US_PER_MS,
                    **common,
                    **({"args": args} if args else {}),
                }
            )

        def _end(name: str, ts_ms: float) -> None:
            events.append(
                {"name": name, "ph": "E", "ts": ts_ms * _US_PER_MS, **common}
            )

        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rid,
                "args": {"name": f"rid {rid}"},
            }
        )
        # Events are emitted in temporal order per thread, with the
        # queue/run sub-spans properly nested inside the request span.
        outer = f"request {rid}"
        _begin(
            outer,
            span.arrival_ms,
            cause=span.cause.value,
            max_degree=span.max_degree,
        )
        queue_end = (
            span.dispatch_ms if span.dispatch_ms is not None else close_ms
        )
        _begin("queued", span.arrival_ms)
        _end("queued", queue_end)
        for segment in span.segments:
            name = f"run @ d={segment.degree}"
            _begin(name, segment.start_ms, degree=segment.degree)
            _end(name, segment.end_ms)
        if span.cause in (SpanCause.CANCELLED, SpanCause.HEDGE_SUPERSEDED):
            events.append(
                {
                    "name": "cancelled",
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": rid,
                    "ts": close_ms * _US_PER_MS,
                    "args": {"cause": span.cause.value},
                }
            )
        _end(outer, close_ms)
    doc: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        doc["metrics"] = dict(metrics)
    return doc


def write_chrome_trace(fp: IO[str], doc: Mapping[str, object]) -> None:
    """Serialize a trace document (validating it first)."""
    validate_chrome_trace(doc)
    json.dump(doc, fp, indent=1)


def validate_chrome_trace(doc: object) -> int:
    """Structurally validate a Chrome trace document.

    Checks that ``traceEvents`` is a list of well-formed events and
    that, per thread, every B has a matching E with non-decreasing
    timestamps (proper stack nesting).  Returns the event count;
    raises :class:`SimulationError` on any violation.
    """
    if not isinstance(doc, Mapping):
        raise SimulationError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise SimulationError("trace document needs a traceEvents list")
    stacks: dict[tuple[int, int], list[tuple[str, float]]] = {}
    last_ts: dict[tuple[int, int], float] = {}
    for i, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise SimulationError(f"traceEvents[{i}] is not an object")
        phase = event.get("ph")
        name = event.get("name")
        if not isinstance(phase, str) or not isinstance(name, str):
            raise SimulationError(f"traceEvents[{i}] lacks ph/name strings")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            raise SimulationError(f"traceEvents[{i}] lacks a numeric ts")
        key = (event.get("pid", 0), event.get("tid", 0))
        if ts < last_ts.get(key, float("-inf")):
            raise SimulationError(
                f"traceEvents[{i}]: timestamp {ts} goes backwards on "
                f"thread {key}"
            )
        last_ts[key] = float(ts)
        if phase == "B":
            stacks.setdefault(key, []).append((name, float(ts)))
        elif phase == "E":
            stack = stacks.get(key)
            if not stack:
                raise SimulationError(
                    f"traceEvents[{i}]: E {name!r} with no open B on "
                    f"thread {key}"
                )
            open_name, open_ts = stack.pop()
            if open_name != name:
                raise SimulationError(
                    f"traceEvents[{i}]: E {name!r} closes B {open_name!r} "
                    f"on thread {key} (improper nesting)"
                )
            if ts < open_ts:
                raise SimulationError(
                    f"traceEvents[{i}]: {name!r} ends before it begins"
                )
        elif phase not in ("i", "I", "C"):
            raise SimulationError(
                f"traceEvents[{i}]: unsupported phase {phase!r}"
            )
    for key, stack in stacks.items():
        if stack:
            names = ", ".join(repr(n) for n, _ in stack)
            raise SimulationError(
                f"thread {key} has unbalanced B events: {names}"
            )
    return len(events)


def render_timeline(span: RequestSpan, width: int = 60) -> str:
    """Fixed-width ASCII rendering of one request span.

    One row per phase (queue wait, then each execution segment), all on
    a shared time axis from arrival to termination.
    """
    close_ms = _span_close_ms(span)
    total = close_ms - span.arrival_ms
    scale = (width / total) if total > 0 else 0.0

    def _bar(start_ms: float, end_ms: float, char: str) -> str:
        lo = int(round((start_ms - span.arrival_ms) * scale))
        hi = int(round((end_ms - span.arrival_ms) * scale))
        hi = max(hi, lo + 1) if end_ms > start_ms else hi
        return " " * lo + char * (hi - lo) + " " * (width - hi)

    header = (
        f"rid {span.rid}  arrival={span.arrival_ms:.1f}ms  "
        f"cause={span.cause.value}"
    )
    if span.cause.terminal:
        header += (
            f"  response={span.response_ms:.1f}ms"
            f"  queue={span.queue_wait_ms:.1f}ms"
        )
    lines = [header]
    queue_end = span.dispatch_ms if span.dispatch_ms is not None else close_ms
    lines.append(
        f"  {'queued':<8} |{_bar(span.arrival_ms, queue_end, '.')}| "
        f"{queue_end - span.arrival_ms:7.1f} ms"
    )
    for segment in span.segments:
        label = f"d={segment.degree}"
        lines.append(
            f"  {label:<8} |{_bar(segment.start_ms, segment.end_ms, '#')}| "
            f"{segment.duration_ms:7.1f} ms"
        )
    return "\n".join(lines)


def render_timelines(spans: Iterable[RequestSpan], width: int = 60) -> str:
    """Render several spans separated by blank lines."""
    return "\n\n".join(render_timeline(s, width) for s in spans)
