"""F9 — Figure 9: P99 of TPC under different system-load metrics.

Expected shape (Section 4.6): the number of active threads of long
queries (LongT) is the best instantaneous-load proxy; counting all
threads (AllT) is close; the sampled, EMA-smoothed CPU utilisation
(CpuUtil) is a lagging moving average and performs worst, degrading
further as load grows.
"""

from conftest import BENCH_SEED, bench_queries, emit, exec_kwargs, qps_grid
from repro.experiments import run_load_sweep
from repro.experiments.report import format_table
from repro.sim.load import LoadMetric

METRICS = {
    "LongT": LoadMetric.LONG_THREADS,
    "AllT": LoadMetric.ALL_THREADS,
    "CpuUtil": LoadMetric.CPU_UTIL,
}


def _run(workload, search_table):
    grid = qps_grid()
    series = {}
    for name, metric in METRICS.items():
        sweep = run_load_sweep(
            workload, ["TPC"], grid,
            n_requests=bench_queries(), seed=BENCH_SEED,
            target_table=search_table, load_metric=metric,
            **exec_kwargs(),
        )
        series[name] = [r.p99_ms for r in sweep["TPC"]]
    return series


def test_fig9_load_metrics(benchmark, workload, search_table):
    series = benchmark.pedantic(
        lambda: _run(workload, search_table), rounds=1, iterations=1
    )
    grid = qps_grid()
    rows = [
        [int(qps)] + [round(series[m][i], 1) for m in METRICS]
        for i, qps in enumerate(grid)
    ]
    emit(
        "fig9_load_metrics",
        format_table(
            ["QPS", *METRICS.keys()],
            rows,
            title="Figure 9 - TPC P99 (ms) by load metric",
        ),
    )

    import numpy as np

    mean = {m: float(np.mean(series[m])) for m in METRICS}
    # Thread-count metrics beat the lagging CPU counter on average.
    assert mean["LongT"] <= mean["CpuUtil"] * 1.02
    assert mean["AllT"] <= mean["CpuUtil"] * 1.05
    # LongT is the best (or tied-best) metric overall.
    assert mean["LongT"] <= min(mean.values()) * 1.03
