"""Latency recording, percentiles and tail-latency summaries.

The paper reports the 99th- and 99.9th-percentile of query response
time (Section 4.1).  :class:`LatencyRecorder` collects per-request
outcomes from a server run; the module-level helpers compute
percentiles, CDFs and the weighted tail sum used by MeasureTail in
Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .request import Request

__all__ = [
    "LatencyRecorder",
    "StreamingLatencyRecorder",
    "StreamingQuantile",
    "LatencySummary",
    "DistributionStats",
    "ResilienceStats",
    "percentile",
    "cdf_points",
    "weighted_tail_latency",
    "degree_distribution",
    "distribution_stats",
]


def percentile(latencies_ms: Sequence[float] | np.ndarray, p: float) -> float:
    """The ``p``-th percentile (0 < p < 100) of a latency sample."""
    arr = np.asarray(latencies_ms, dtype=np.float64)
    if arr.size == 0:
        raise SimulationError("cannot take a percentile of an empty sample")
    if not 0 < p < 100:
        raise SimulationError(f"percentile must be in (0, 100), got {p}")
    return float(np.percentile(arr, p))


def cdf_points(
    latencies_ms: Sequence[float] | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as ``(sorted_latencies, cumulative_fraction)``."""
    arr = np.sort(np.asarray(latencies_ms, dtype=np.float64))
    if arr.size == 0:
        raise SimulationError("cannot build a CDF of an empty sample")
    fractions = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, fractions


def weighted_tail_latency(
    samples: Sequence[Sequence[float] | np.ndarray],
    weights: Sequence[float],
    p: float,
) -> float:
    """Weighted sum of the ``p``-th percentile across several runs.

    This is the objective MeasureTail returns in Algorithm 1: a
    predefined experiment covers all production load ranges and the
    builder minimises the weighted sum of their tail latencies.
    """
    if len(samples) != len(weights):
        raise SimulationError("one weight per sample required")
    return float(
        sum(w * percentile(s, p) for s, w in zip(samples, weights))
    )


@dataclass(frozen=True)
class LatencySummary:
    """Headline statistics of one run."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    p999_ms: float
    max_ms: float

    def as_row(self) -> dict[str, float]:
        """Summary as a flat dict (handy for tabular reports)."""
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "max_ms": self.max_ms,
        }


@dataclass(frozen=True)
class DistributionStats:
    """Shape statistics of a millisecond sample in the paper's terms.

    Section 2 characterises the production demand distribution by its
    mean, median, tail percentile and the fractions of short (<15 ms)
    and long (>80 ms) queries; the fidelity gate re-derives the same
    statistics from simulated samples and checks them against bands.
    """

    count: int
    mean_ms: float
    median_ms: float
    p99_ms: float
    short_fraction: float
    long_fraction: float

    @property
    def p99_over_mean(self) -> float:
        """Tail heaviness: how far the 99th percentile sits above the mean."""
        return self.p99_ms / self.mean_ms

    @property
    def p99_over_median(self) -> float:
        """Tail heaviness relative to the median (paper: ~56x)."""
        return self.p99_ms / self.median_ms

    def as_row(self) -> dict[str, float]:
        """Flat dict for tabular reports and JSON export."""
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "median_ms": self.median_ms,
            "p99_ms": self.p99_ms,
            "short_fraction": self.short_fraction,
            "long_fraction": self.long_fraction,
            "p99/mean": self.p99_over_mean,
            "p99/median": self.p99_over_median,
        }


def distribution_stats(
    values_ms: Sequence[float] | np.ndarray,
    short_threshold_ms: float = 15.0,
    long_threshold_ms: float = 80.0,
) -> DistributionStats:
    """Compute :class:`DistributionStats` for a millisecond sample."""
    arr = np.asarray(values_ms, dtype=np.float64)
    if arr.size == 0:
        raise SimulationError("cannot summarise an empty sample")
    return DistributionStats(
        count=int(arr.size),
        mean_ms=float(arr.mean()),
        median_ms=float(np.median(arr)),
        p99_ms=percentile(arr, 99),
        short_fraction=float((arr < short_threshold_ms).mean()),
        long_fraction=float((arr > long_threshold_ms).mean()),
    )


@dataclass(frozen=True)
class ResilienceStats:
    """Mitigation bookkeeping of one resilient cluster run.

    Quantifies the cost/benefit trade-off of request hedging and
    partial-wait aggregation (cf. Poloczek & Ciucu; Wang, Joshi &
    Wornell): how often the hedge timer fired, how many hedges were
    issued and won, and how much replica work was thrown away by
    tied-request cancellation, blackout kills, and redundant
    completions.
    """

    #: Logical queries aggregated.
    queries: int
    num_isns: int
    #: Hedge replicas issued across all queries.
    hedges_issued: int
    #: Queries that issued at least one hedge.
    hedged_queries: int
    #: Hedges that completed before the primary replica they backed up.
    hedge_wins: int
    #: Hedge timers that fired on a still-incomplete query.
    timeout_fires: int
    #: Replicas withdrawn mid-flight (ties and blackout kills).
    cancelled_replicas: int
    #: Replicas never issued because the target ISN was blacked out.
    dropped_replicas: int
    #: Completions of a shard whose result was already delivered by the
    #: other member of a hedge pair (tie cancellation disabled).
    redundant_completions: int
    #: Replica completions arriving after the aggregator had already
    #: answered the query (wait-for-k < n only).
    late_completions: int
    #: Work (ms of sequential demand) executed by cancelled or
    #: redundant replicas — pure overhead of the mitigation.
    wasted_work_ms: float
    #: Work executed by replicas whose result reached the aggregator.
    useful_work_ms: float
    #: Mean over queries of (replica completions seen when the
    #: aggregator answered) / num_isns; 1.0 under wait-for-all.
    k_coverage_mean: float

    @property
    def hedge_rate(self) -> float:
        """Fraction of queries that issued at least one hedge."""
        return self.hedged_queries / self.queries if self.queries else 0.0

    @property
    def timeout_rate(self) -> float:
        """Fraction of queries whose hedge timer fired."""
        return self.timeout_fires / self.queries if self.queries else 0.0

    @property
    def wasted_work_fraction(self) -> float:
        """Wasted work as a fraction of all work executed."""
        total = self.wasted_work_ms + self.useful_work_ms
        return self.wasted_work_ms / total if total > 0 else 0.0

    def as_row(self) -> dict[str, float]:
        """Flat dict for tabular reports and JSON export."""
        return {
            "queries": self.queries,
            "num_isns": self.num_isns,
            "hedges_issued": self.hedges_issued,
            "hedged_queries": self.hedged_queries,
            "hedge_wins": self.hedge_wins,
            "timeout_fires": self.timeout_fires,
            "cancelled_replicas": self.cancelled_replicas,
            "dropped_replicas": self.dropped_replicas,
            "redundant_completions": self.redundant_completions,
            "late_completions": self.late_completions,
            "wasted_work_ms": self.wasted_work_ms,
            "useful_work_ms": self.useful_work_ms,
            "hedge_rate": self.hedge_rate,
            "timeout_rate": self.timeout_rate,
            "wasted_work_fraction": self.wasted_work_fraction,
            "k_coverage_mean": self.k_coverage_mean,
        }


@dataclass
class LatencyRecorder:
    """Accumulates completed-request outcomes from one server run.

    Stores response/queueing/execution latency, demand, prediction,
    initial and maximum parallelism degree and whether dynamic
    correction fired — everything the paper's tables and figures need.
    """

    responses_ms: list[float] = field(default_factory=list)
    queueing_ms: list[float] = field(default_factory=list)
    executions_ms: list[float] = field(default_factory=list)
    demands_ms: list[float] = field(default_factory=list)
    predictions_ms: list[float] = field(default_factory=list)
    initial_degrees: list[int] = field(default_factory=list)
    max_degrees: list[int] = field(default_factory=list)
    corrected: list[bool] = field(default_factory=list)

    def record(self, request: "Request") -> None:
        """Record one completed request.

        Hot path: the latency decompositions are computed from the raw
        timestamps directly — the very subtractions the ``Request``
        properties perform — so callers must pass completed requests.
        """
        arrival = request.arrival_ms
        start = request.start_ms
        finish = request.finish_ms
        self.responses_ms.append(finish - arrival)
        self.queueing_ms.append(start - arrival)
        self.executions_ms.append(finish - start)
        self.demands_ms.append(request.demand_ms)
        self.predictions_ms.append(request.predicted_ms)
        self.initial_degrees.append(request.initial_degree)
        self.max_degrees.append(request.max_degree_seen)
        self.corrected.append(request.corrected)

    def __len__(self) -> int:
        return len(self.responses_ms)

    @property
    def responses(self) -> np.ndarray:
        """Response times as a numpy array."""
        return np.asarray(self.responses_ms, dtype=np.float64)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of response time."""
        return percentile(self.responses_ms, p)

    def correction_rate(self) -> float:
        """Fraction of requests whose degree was raised by correction."""
        if not self.corrected:
            return 0.0
        return sum(self.corrected) / len(self.corrected)

    def summary(self) -> LatencySummary:
        """Headline latency statistics of the run."""
        arr = self.responses
        if arr.size == 0:
            raise SimulationError("no requests recorded")
        return LatencySummary(
            count=int(arr.size),
            mean_ms=float(arr.mean()),
            p50_ms=percentile(arr, 50),
            p95_ms=percentile(arr, 95),
            p99_ms=percentile(arr, 99),
            p999_ms=percentile(arr, 99.9),
            max_ms=float(arr.max()),
        )


class StreamingQuantile:
    """One-pass quantile estimation (P² algorithm) in O(1) memory.

    Jain & Chlamtac's P² estimator maintains five markers whose heights
    track the quantile ``q`` as observations stream in, refined by
    piecewise-parabolic interpolation.  Small samples are kept exactly:
    until ``exact_threshold`` observations arrive the estimator buffers
    them and :meth:`value` returns the same linearly-interpolated
    percentile as ``np.percentile``; at the threshold crossing the five
    markers are initialised from the buffered empirical quantiles
    (tighter than the classic five-observation bootstrap) and the
    buffer is dropped.

    This is the opt-in backing store of
    :class:`StreamingLatencyRecorder`; the default full-sample
    :class:`LatencyRecorder` API is unchanged.
    """

    __slots__ = (
        "q",
        "exact_threshold",
        "count",
        "_buffer",
        "_heights",
        "_positions",
        "_desired",
        "_increments",
    )

    def __init__(self, q: float, exact_threshold: int = 500) -> None:
        if not 0.0 < q < 1.0:
            raise SimulationError(f"quantile must be in (0, 1), got {q}")
        if exact_threshold < 5:
            raise SimulationError("exact_threshold must be >= 5")
        self.q = float(q)
        self.exact_threshold = int(exact_threshold)
        self.count = 0
        self._buffer: list[float] | None = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def _init_markers(self) -> None:
        buf = self._buffer
        assert buf is not None
        arr = np.asarray(buf, dtype=np.float64)
        n = arr.size
        self._heights = [
            float(np.percentile(arr, 100.0 * frac)) for frac in self._increments
        ]
        self._positions = [
            1.0 + round((n - 1) * frac) for frac in self._increments
        ]
        # Marker positions must stay strictly increasing for the
        # parabolic update; nudge duplicates apart (possible when the
        # threshold is small relative to the quantile spacing).
        for i in range(1, 5):
            if self._positions[i] <= self._positions[i - 1]:
                self._positions[i] = self._positions[i - 1] + 1.0
        self._desired = [1.0 + (n - 1) * frac for frac in self._increments]
        self._buffer = None

    def add(self, x: float) -> None:
        """Feed one observation."""
        self.count += 1
        if self._buffer is not None:
            self._buffer.append(x)
            if self.count >= self.exact_threshold:
                self._init_markers()
            return

        heights = self._heights
        positions = self._positions
        # Locate the cell containing x, extending the extremes.
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        increments = self._increments
        for i in range(5):
            desired[i] += increments[i]

        # Adjust the three interior markers toward their desired
        # positions with parabolic (falling back to linear)
        # interpolation, keeping heights monotone.
        for i in range(1, 4):
            d = desired[i] - positions[i]
            if (d >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                d <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate of the ``q``-quantile."""
        if self.count == 0:
            raise SimulationError("no observations recorded")
        if self._buffer is not None:
            return float(
                np.percentile(
                    np.asarray(self._buffer, dtype=np.float64), 100.0 * self.q
                )
            )
        return self._heights[2]


class StreamingLatencyRecorder(LatencyRecorder):
    """O(1)-memory recorder: P² tail estimates instead of full samples.

    Drop-in for :class:`LatencyRecorder` where only the headline
    statistics are needed (long soak runs, perf benchmarks): response
    times feed one :class:`StreamingQuantile` per tracked percentile
    plus running mean/max, and nothing is appended to the sample lists.
    :meth:`summary` and :meth:`percentile` therefore return *estimates*
    beyond ``exact_threshold`` observations (exact below it), and the
    full-sample surfaces — :attr:`responses` and the per-request lists
    — are unavailable.
    """

    #: Percentiles tracked by default, matching :class:`LatencySummary`.
    DEFAULT_QUANTILES = (50.0, 95.0, 99.0, 99.9)

    def __init__(
        self,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        exact_threshold: int = 500,
    ) -> None:
        super().__init__()
        self._estimators = {
            float(p): StreamingQuantile(p / 100.0, exact_threshold)
            for p in quantiles
        }
        self._count = 0
        self._sum_ms = 0.0
        self._max_ms = float("-inf")
        self._corrected_count = 0

    def record(self, request: "Request") -> None:
        response = request.finish_ms - request.arrival_ms
        self._count += 1
        self._sum_ms += response
        if response > self._max_ms:
            self._max_ms = response
        if request.corrected:
            self._corrected_count += 1
        for est in self._estimators.values():
            est.add(response)

    def __len__(self) -> int:
        return self._count

    @property
    def responses(self) -> np.ndarray:
        raise SimulationError(
            "StreamingLatencyRecorder keeps no full sample; "
            "use percentile()/summary() or a LatencyRecorder"
        )

    def percentile(self, p: float) -> float:
        est = self._estimators.get(float(p))
        if est is None:
            raise SimulationError(
                f"percentile {p} not tracked; tracked: "
                f"{sorted(self._estimators)}"
            )
        return est.value()

    def correction_rate(self) -> float:
        if self._count == 0:
            return 0.0
        return self._corrected_count / self._count

    def summary(self) -> LatencySummary:
        if self._count == 0:
            raise SimulationError("no requests recorded")
        return LatencySummary(
            count=self._count,
            mean_ms=self._sum_ms / self._count,
            p50_ms=self.percentile(50.0),
            p95_ms=self.percentile(95.0),
            p99_ms=self.percentile(99.0),
            p999_ms=self.percentile(99.9),
            max_ms=self._max_ms,
        )


def degree_distribution(
    recorder: LatencyRecorder,
    long_threshold_ms: float,
    max_degree: int,
    use_max_degree: bool = True,
) -> dict[str, list[float]]:
    """Parallelism-degree distribution by true demand class (Table 2).

    Returns ``{"short": [...], "long": [...]}`` where each list holds
    the percentage of that class executed at degree 1..max_degree.
    ``use_max_degree`` counts the highest degree a request attained
    (capturing dynamic correction); set False for the initial degree.
    """
    degrees = recorder.max_degrees if use_max_degree else recorder.initial_degrees
    counts = {"short": [0] * max_degree, "long": [0] * max_degree}
    for demand, degree in zip(recorder.demands_ms, degrees):
        key = "long" if demand > long_threshold_ms else "short"
        counts[key][min(degree, max_degree) - 1] += 1
    result: dict[str, list[float]] = {}
    for key, row in counts.items():
        total = sum(row)
        result[key] = [100.0 * c / total if total else 0.0 for c in row]
    return result
