"""Tests for system-load metrics (Section 4.6)."""

import pytest

from repro.config import ServerConfig
from repro.sim.engine import Engine
from repro.sim.load import LoadMetric, load_value
from repro.sim.server import Server

from conftest import make_request
from test_server import FixedDegreePolicy


@pytest.fixture()
def busy_server():
    server = Server(ServerConfig(), FixedDegreePolicy(2), engine=Engine())
    # Two predicted-long requests (degree 2 each) + one predicted-short.
    server.submit(make_request(0, 200.0, predicted_ms=150.0))
    server.submit(make_request(1, 200.0, predicted_ms=90.0))
    server.submit(make_request(2, 200.0, predicted_ms=10.0))
    return server


class TestLoadValue:
    def test_long_threads_counts_predicted_long_only(self, busy_server):
        assert load_value(busy_server, LoadMetric.LONG_THREADS) == 4.0

    def test_all_threads_counts_everything(self, busy_server):
        assert load_value(busy_server, LoadMetric.ALL_THREADS) == 6.0

    def test_queue_length_metric(self, busy_server):
        assert load_value(busy_server, LoadMetric.QUEUE_LENGTH) == 0.0

    def test_cpu_util_scaled_to_thread_equivalents(self, busy_server):
        busy_server.engine.run_until(100.0)
        value = load_value(busy_server, LoadMetric.CPU_UTIL)
        cap = busy_server.config.hardware_threads
        assert 0.0 <= value <= cap

    def test_cpu_util_lags_instantaneous_load(self):
        """CpuUtil is a laggy EMA: right after load arrives it still
        reads near zero while thread counts see it instantly."""
        server = Server(ServerConfig(), FixedDegreePolicy(2), engine=Engine())
        server.submit(make_request(0, 500.0, predicted_ms=400.0))
        instant = load_value(server, LoadMetric.ALL_THREADS)
        lagging = load_value(server, LoadMetric.CPU_UTIL)
        assert instant == 2.0
        assert lagging == 0.0  # no sample window has elapsed yet

    def test_unknown_metric_rejected(self, busy_server):
        with pytest.raises(ValueError):
            load_value(busy_server, "not-a-metric")  # type: ignore[arg-type]
