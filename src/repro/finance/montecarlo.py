"""Monte Carlo pricer for Asian options.

Simulates geometric-Brownian-motion paths with antithetic variates and
discounts the average payoff.  Request processing "is CPU-bound, has a
regular structure, and consists of iterations" (Section 5.1): the work
is exactly ``paths x steps`` path-step updates, so sequential execution
time is an accurate linear function of the request structure — which is
why the finance predictor is near-perfect and dynamic correction never
fires there.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .option import AsianOption

__all__ = ["PricingResult", "MonteCarloPricer"]


@dataclass(frozen=True)
class PricingResult:
    """Estimated option value and sampling error."""

    price: float
    std_error: float
    n_paths: int
    n_steps: int

    @property
    def path_steps(self) -> int:
        """Total path-step updates performed (the work metric)."""
        return self.n_paths * self.n_steps


class MonteCarloPricer:
    """Prices Asian options by simulating GBM paths."""

    def __init__(self, antithetic: bool = True) -> None:
        self.antithetic = antithetic

    def price(
        self,
        option: AsianOption,
        n_paths: int,
        n_steps: int,
        rng: np.random.Generator,
    ) -> PricingResult:
        """Estimate the option value with ``n_paths`` GBM paths.

        With antithetic variates enabled, half the paths are mirrored
        draws of the other half, halving variance for smooth payoffs.
        """
        if n_paths < 2 or n_steps < 1:
            raise ConfigError("need n_paths >= 2 and n_steps >= 1")
        dt = option.maturity_years / n_steps
        drift = (option.rate - 0.5 * option.volatility**2) * dt
        vol = option.volatility * np.sqrt(dt)

        half = n_paths // 2 if self.antithetic else n_paths
        normals = rng.standard_normal((half, n_steps))
        if self.antithetic:
            normals = np.vstack([normals, -normals])
        log_paths = np.cumsum(drift + vol * normals, axis=1)
        prices = option.spot * np.exp(log_paths)
        averages = prices.mean(axis=1)

        if option.is_call:
            payoffs = np.maximum(averages - option.strike, 0.0)
        else:
            payoffs = np.maximum(option.strike - averages, 0.0)
        discount = np.exp(-option.rate * option.maturity_years)
        discounted = discount * payoffs
        if self.antithetic:
            # Antithetic pairs are negatively correlated; the unbiased
            # error estimate treats each (path, mirror) pair-average as
            # one independent sample.
            pair_means = (discounted[:half] + discounted[half:]) / 2.0
            std_error = float(pair_means.std(ddof=1) / np.sqrt(half))
        else:
            std_error = float(
                discounted.std(ddof=1) / np.sqrt(len(discounted))
            )
        return PricingResult(
            price=float(discounted.mean()),
            std_error=std_error,
            n_paths=len(discounted),
            n_steps=n_steps,
        )

    def calibrate_ms_per_path_step(
        self,
        option: AsianOption | None = None,
        n_paths: int = 20_000,
        n_steps: int = 100,
        repeats: int = 3,
    ) -> float:
        """Measure wall-clock cost per path-step of the real pricer.

        Demonstrates how the structural cost model's constant would be
        obtained on a deployment machine; deterministic experiments use
        the fixed constant in :class:`~repro.finance.workload.FinanceWorkload`
        instead so results do not depend on host speed.
        """
        opt = option if option is not None else AsianOption()
        rng = np.random.default_rng(0)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            self.price(opt, n_paths, n_steps, rng)
            best = min(best, time.perf_counter() - start)
        return best * 1000.0 / (n_paths * n_steps)
