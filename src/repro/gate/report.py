"""The gate's artifact: ``BENCH_gate.json`` and the human summary.

A :class:`GateReport` is versioned (schema), attributed (git SHA,
mode, environment), and self-contained: every check's status, every
measurement with its effective band and baseline, and the execution
timings (cells run vs served from cache) needed to audit a CI run
from the artifact alone.
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .bands import EvaluatedMeasurement

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "CheckReport",
    "GateReport",
    "git_sha",
]

REPORT_SCHEMA_VERSION = 1


def git_sha(repo_root: str | Path | None = None) -> str:
    """The current commit hash, or ``"unknown"`` outside a checkout."""
    root = Path(repo_root) if repo_root is not None else Path.cwd()
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _environment() -> dict[str, Any]:
    import numpy

    import repro

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": getattr(repro, "__version__", "unknown"),
        "platform": platform.platform(),
    }


@dataclass
class CheckReport:
    """Outcome of one gate check."""

    name: str
    description: str
    paper_ref: str
    status: str  # "pass" | "fail" | "error"
    wall_time_s: float
    measurements: list[EvaluatedMeasurement] = field(default_factory=list)
    error: str = ""

    @property
    def violations(self) -> list[EvaluatedMeasurement]:
        """The measurements that fell outside their bands."""
        return [m for m in self.measurements if not m.passed]

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "paper_ref": self.paper_ref,
            "status": self.status,
            "wall_time_s": round(self.wall_time_s, 4),
            "measurements": [m.as_dict() for m in self.measurements],
            "error": self.error,
        }


@dataclass
class GateReport:
    """The full gate outcome, serialisable as ``BENCH_gate.json``."""

    mode: str
    checks: list[CheckReport]
    total_wall_time_s: float
    cells_total: int
    cells_executed: int
    cells_from_cache: int
    payload_hits: int
    sha: str = "unknown"
    baselines_used: bool = False
    environment: dict[str, Any] = field(default_factory=_environment)

    @property
    def passed(self) -> bool:
        """True iff every executed check passed."""
        return all(c.status == "pass" for c in self.checks)

    @property
    def status(self) -> str:
        if any(c.status == "error" for c in self.checks):
            return "error"
        return "pass" if self.passed else "fail"

    def check(self, name: str) -> CheckReport:
        """Look up one check's report by name."""
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(f"no check named {name!r} in this report")

    def to_json_dict(self) -> dict[str, Any]:
        counts = {
            "passed": sum(1 for c in self.checks if c.status == "pass"),
            "failed": sum(1 for c in self.checks if c.status == "fail"),
            "errored": sum(1 for c in self.checks if c.status == "error"),
        }
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "generated_by": "repro.gate",
            "git_sha": self.sha,
            "mode": self.mode,
            "status": self.status,
            "counts": counts,
            "timing": {
                "total_wall_time_s": round(self.total_wall_time_s, 4),
                "cells_total": self.cells_total,
                "cells_executed": self.cells_executed,
                "cells_from_cache": self.cells_from_cache,
                "payload_hits": self.payload_hits,
            },
            "baselines_used": self.baselines_used,
            "environment": self.environment,
            "checks": [c.as_dict() for c in self.checks],
        }

    def to_json(self) -> str:
        """Canonical serialisation (stable key order, trailing newline)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write ``BENCH_gate.json`` to ``path``; returns the path."""
        target = Path(path)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json(), encoding="utf-8")
        return target

    def render_summary(self) -> str:
        """The human-readable verdict printed after a run."""
        lines = [
            f"repro.gate — mode={self.mode}  git={self.sha[:12]}  "
            f"status={self.status.upper()}",
            f"cells: {self.cells_total} total, "
            f"{self.cells_executed} simulated, "
            f"{self.cells_from_cache} from cache, "
            f"{self.payload_hits} payload hits; "
            f"wall {self.total_wall_time_s:.1f}s",
            "",
        ]
        for c in self.checks:
            mark = {"pass": "PASS", "fail": "FAIL", "error": "ERROR"}[c.status]
            lines.append(
                f"[{mark}] {c.name} ({c.wall_time_s:.2f}s) — {c.description}"
            )
            if c.error:
                lines.append(f"       error: {c.error}")
            for m in c.violations:
                lines.append(f"       {m.describe()}")
        if self.status == "pass":
            lines.append("")
            lines.append("All checks passed: the reproduction still "
                         "matches the paper's headline numbers.")
        return "\n".join(lines)
