"""On-disk result cache keyed by cell content hash.

Re-running a benchmark, or re-evaluating the same candidate table
inside the Algorithm 1 search, repeats simulations whose outcome is a
pure function of the :class:`~repro.exec.spec.CellSpec`.  The cache
turns those repeats into a file read.

The cache is **opt-in**: pass a :class:`ResultCache` to the pool
runner, or set ``REPRO_EXEC_CACHE=1`` to let :func:`default_cache`
supply one rooted at ``REPRO_EXEC_CACHE_DIR`` (default
``~/.cache/repro-tpc/exec``).  Entries are pickled
:class:`~repro.exec.spec.CellResult` payloads written atomically;
corrupt or unreadable entries degrade to cache misses.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from typing import Any, Callable

from .spec import CellResult, CellSpec

__all__ = ["ResultCache", "default_cache", "DEFAULT_CACHE_DIR"]

#: Default cache root (override with ``REPRO_EXEC_CACHE_DIR``).
DEFAULT_CACHE_DIR = os.path.join(
    os.path.expanduser("~"), ".cache", "repro-tpc", "exec"
)


class ResultCache:
    """Filesystem cache of executed cells, keyed by spec hash."""

    def __init__(self, directory: str | Path | None = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_EXEC_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: CellSpec) -> Path:
        """Where the given cell's result lives (whether or not present)."""
        return self.directory / f"cell-{spec.content_hash}.pkl"

    def get(self, spec: CellSpec) -> CellResult | None:
        """Load a previously stored result, or None on a miss."""
        path = self.path_for(spec)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(result, CellResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: CellSpec, result: CellResult) -> Path | None:
        """Store a result atomically (tmp file + rename).

        Returns None if the entry could not be written (unwritable
        directory, disk full, ...) — a failed write must not discard
        the simulation work that produced the result.
        """
        path = self.path_for(spec)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            return None
        return path

    def payload_path(self, key: str) -> Path:
        """Where a generic payload entry lives (whether or not present)."""
        if not key or any(c in key for c in "/\\"):
            raise ValueError(f"invalid payload key {key!r}")
        return self.directory / f"payload-{key}.pkl"

    def get_payload(self, key: str) -> Any | None:
        """Load a generic cached payload, or None on a miss.

        Payloads extend the cache beyond :class:`CellResult`: any
        picklable value whose content is a pure function of a
        caller-computed key (conventionally a
        :func:`~repro.exec.spec.spec_hash`) can be memoised — e.g. the
        cluster-run summaries of the fidelity gate, which do not
        decompose into individual cells.
        """
        try:
            with self.payload_path(key).open("rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put_payload(self, key: str, payload: Any) -> Path | None:
        """Store a generic payload atomically; None if unwritable."""
        path = self.payload_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            return None
        return path

    def memoise_payload(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached payload for ``key``, computing it on a miss."""
        payload = self.get_payload(key)
        if payload is None:
            payload = compute()
            self.put_payload(key, payload)
        return payload

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for pattern in ("cell-*.pkl", "payload-*.pkl"):
                for entry in self.directory.glob(pattern):
                    try:
                        entry.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def default_cache() -> ResultCache | None:
    """The environment-selected cache: enabled iff ``REPRO_EXEC_CACHE=1``."""
    if os.environ.get("REPRO_EXEC_CACHE", "0") != "1":
        return None
    return ResultCache()
