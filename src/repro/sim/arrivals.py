"""Time-varying arrival processes.

Production load is not stationary — Section 3.3 motivates the target
table precisely because "instantaneous load on a server varies over
time".  This module generates non-homogeneous Poisson arrivals from a
piecewise-constant rate profile (e.g. a diurnal pattern), used by the
load-drift experiments that evaluate periodic target-table
recomputation (a future-work item the paper sketches in Section 3.3,
remark 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = ["RateProfile", "nonhomogeneous_arrival_times", "diurnal_profile"]


@dataclass(frozen=True)
class RateProfile:
    """Piecewise-constant arrival-rate profile.

    ``rates_qps[i]`` applies for ``segment_ms`` starting at
    ``i * segment_ms``; the profile repeats cyclically.
    """

    rates_qps: tuple[float, ...]
    segment_ms: float

    def __post_init__(self) -> None:
        if not self.rates_qps:
            raise WorkloadError("profile needs at least one rate")
        if any(r <= 0 for r in self.rates_qps):
            raise WorkloadError("rates must be positive")
        if self.segment_ms <= 0:
            raise WorkloadError("segment_ms must be positive")

    def rate_at(self, time_ms: float) -> float:
        """Arrival rate (QPS) at an absolute simulated time."""
        if time_ms < 0:
            raise WorkloadError("time must be >= 0")
        cycle = self.segment_ms * len(self.rates_qps)
        index = int((time_ms % cycle) // self.segment_ms)
        return self.rates_qps[index]

    @property
    def peak_qps(self) -> float:
        """The maximum rate of the profile."""
        return max(self.rates_qps)

    @property
    def mean_qps(self) -> float:
        """Time-average rate over one cycle."""
        return sum(self.rates_qps) / len(self.rates_qps)


def diurnal_profile(
    low_qps: float, high_qps: float, segments: int = 8,
    segment_ms: float = 5_000.0,
) -> RateProfile:
    """A smooth low-high-low cycle approximating a diurnal load curve."""
    if segments < 2:
        raise WorkloadError("need at least 2 segments")
    phases = np.linspace(0, np.pi, segments)
    rates = low_qps + (high_qps - low_qps) * np.sin(phases) ** 2
    rates = np.maximum(rates, min(low_qps, high_qps))
    return RateProfile(tuple(float(r) for r in rates), segment_ms)


def nonhomogeneous_arrival_times(
    n: int, profile: RateProfile, rng: np.random.Generator
) -> np.ndarray:
    """``n`` arrival times (ms) of a non-homogeneous Poisson process.

    Uses thinning against the profile's peak rate: candidate arrivals
    are drawn at the peak rate and accepted with probability
    ``rate(t) / peak`` — exact for piecewise-constant profiles.
    """
    if n < 1:
        raise WorkloadError("n must be >= 1")
    peak = profile.peak_qps
    times = np.empty(n)
    t = 0.0
    produced = 0
    mean_gap_ms = 1000.0 / peak
    while produced < n:
        t += rng.exponential(mean_gap_ms)
        if rng.random() < profile.rate_at(t) / peak:
            times[produced] = t
            produced += 1
    return times
