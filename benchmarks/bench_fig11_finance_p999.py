"""F11 — Figure 11: 99.9th-percentile latency on the finance server.

Expected shape (Section 5.1): same ordering as P99 and — because the
structural execution-time estimate is near-perfect — P99.9 sits just
above P99 for TPC (paper: P99 = 37 ms, P99.9 = 41 ms at 200 RPS) and
dynamic correction never fires at the paper's operating loads.
"""

from conftest import BENCH_SEED, bench_queries, emit
from repro.experiments import run_search_experiment
from repro.experiments.report import format_table
from repro.experiments.scenarios import DEFAULT_RPS_GRID_FINANCE

from bench_fig10_finance_p99 import POLICIES, run_finance_sweep


def test_fig11_finance_p999(benchmark, finance, finance_table,
                            finance_server_config, finance_policy_config):
    results = benchmark.pedantic(
        lambda: run_finance_sweep(
            finance, finance_table, finance_server_config,
            finance_policy_config,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [int(rps)] + [round(results[p][i].p999_ms, 1) for p in POLICIES]
        for i, rps in enumerate(DEFAULT_RPS_GRID_FINANCE)
    ]
    emit(
        "fig11_finance_p999",
        format_table(
            ["RPS", *POLICIES],
            rows,
            title="Figure 11 - finance server P99.9 (ms) vs load",
        ),
    )

    i200 = DEFAULT_RPS_GRID_FINANCE.index(200)
    tpc200 = results["TPC"][i200]
    # P99.9 close to P99: accurate structural prediction leaves no
    # misprediction tail (paper: 37 vs 41 ms).
    assert tpc200.p999_ms < tpc200.p99_ms * 1.5
    # Dynamic correction (nearly) never fires at the paper's loads —
    # the structural estimate is accurate (Section 5.1).
    assert tpc200.recorder.correction_rate() < 0.01
    # Same winner ordering as Figure 10 at moderate load.
    assert (
        tpc200.p999_ms
        <= min(results[p][i200].p999_ms for p in POLICIES[:-1]) * 1.10
    )


def test_finance_concurrency_matches_paper(benchmark, finance):
    """Paper: 'At 200 RPS, with TPC, there are on average 3.5
    concurrent requests in the system.'  Mean demand 18 ms x 200 RPS
    = 3.6 by Little's law."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cfg = finance.config
    mean_demand_ms = (
        (1 - cfg.long_fraction) * cfg.short_demand_ms
        + cfg.long_fraction * cfg.short_demand_ms * cfg.long_demand_multiplier
    )
    concurrency = 200.0 * mean_demand_ms / 1000.0
    assert abs(concurrency - 3.5) < 0.3
