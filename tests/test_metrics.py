"""Tests for latency metrics and percentile utilities."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.metrics import (
    LatencyRecorder,
    cdf_points,
    degree_distribution,
    percentile,
    weighted_tail_latency,
)
from repro.sim.request import RequestState

from conftest import make_request


def completed_request(rid, demand, pred=None, degree=1, max_degree=None,
                      corrected=False, arrival=0.0, start=0.0, finish=None):
    req = make_request(rid, demand, pred)
    req.state = RequestState.COMPLETED
    req.arrival_ms = arrival
    req.start_ms = start
    req.finish_ms = finish if finish is not None else start + demand
    req.initial_degree = degree
    req.max_degree_seen = max_degree if max_degree is not None else degree
    req.corrected = corrected
    return req


class TestPercentile:
    def test_median_of_known_sample(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_p99_of_uniform_grid(self):
        values = list(range(1, 1001))
        assert percentile(values, 99) == pytest.approx(990.01)

    def test_empty_sample_rejected(self):
        with pytest.raises(SimulationError):
            percentile([], 99)

    @pytest.mark.parametrize("p", [0, 100, -5, 101])
    def test_out_of_range_percentile_rejected(self, p):
        with pytest.raises(SimulationError):
            percentile([1.0], p)


class TestCdf:
    def test_cdf_is_sorted_and_reaches_one(self):
        xs, fs = cdf_points([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(xs, [1.0, 2.0, 3.0])
        assert fs[-1] == 1.0
        assert all(b >= a for a, b in zip(fs, fs[1:]))

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            cdf_points([])


class TestWeightedTail:
    def test_weighted_sum_of_percentiles(self):
        s1 = [10.0] * 100
        s2 = [20.0] * 100
        total = weighted_tail_latency([s1, s2], [1.0, 2.0], 99)
        assert total == pytest.approx(10.0 + 40.0)

    def test_weight_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            weighted_tail_latency([[1.0]], [1.0, 2.0], 99)


class TestLatencyRecorder:
    def test_record_and_summary(self):
        rec = LatencyRecorder()
        for i, demand in enumerate([10.0, 20.0, 30.0]):
            rec.record(completed_request(i, demand))
        summary = rec.summary()
        assert summary.count == 3
        assert summary.mean_ms == pytest.approx(20.0)
        assert summary.max_ms == 30.0

    def test_queueing_separated_from_execution(self):
        rec = LatencyRecorder()
        rec.record(completed_request(0, 10.0, arrival=0.0, start=5.0, finish=15.0))
        assert rec.queueing_ms[0] == pytest.approx(5.0)
        assert rec.executions_ms[0] == pytest.approx(10.0)
        assert rec.responses_ms[0] == pytest.approx(15.0)

    def test_correction_rate(self):
        rec = LatencyRecorder()
        rec.record(completed_request(0, 10.0, corrected=True))
        rec.record(completed_request(1, 10.0, corrected=False))
        assert rec.correction_rate() == pytest.approx(0.5)

    def test_correction_rate_empty_is_zero(self):
        assert LatencyRecorder().correction_rate() == 0.0

    def test_summary_empty_rejected(self):
        with pytest.raises(SimulationError):
            LatencyRecorder().summary()

    def test_summary_as_row_keys(self):
        rec = LatencyRecorder()
        rec.record(completed_request(0, 10.0))
        row = rec.summary().as_row()
        assert set(row) >= {"count", "mean_ms", "p99_ms", "p999_ms"}


class TestDegreeDistribution:
    def test_percentages_split_by_true_demand_class(self):
        rec = LatencyRecorder()
        # Two short at degree 1, one short at 2; one long at 6.
        rec.record(completed_request(0, 10.0, degree=1))
        rec.record(completed_request(1, 12.0, degree=1))
        rec.record(completed_request(2, 14.0, degree=2))
        rec.record(completed_request(3, 150.0, degree=6))
        dist = degree_distribution(rec, long_threshold_ms=80.0, max_degree=6)
        assert dist["short"][0] == pytest.approx(100 * 2 / 3)
        assert dist["short"][1] == pytest.approx(100 / 3)
        assert dist["long"][5] == pytest.approx(100.0)

    def test_rows_sum_to_100(self):
        rec = LatencyRecorder()
        for i in range(10):
            rec.record(completed_request(i, 10.0 + i * 20, degree=(i % 6) + 1))
        dist = degree_distribution(rec, 80.0, 6)
        assert sum(dist["short"]) == pytest.approx(100.0)
        assert sum(dist["long"]) == pytest.approx(100.0)

    def test_max_degree_mode_captures_correction(self):
        rec = LatencyRecorder()
        rec.record(completed_request(0, 150.0, degree=1, max_degree=6))
        by_max = degree_distribution(rec, 80.0, 6, use_max_degree=True)
        by_initial = degree_distribution(rec, 80.0, 6, use_max_degree=False)
        assert by_max["long"][5] == 100.0
        assert by_initial["long"][0] == 100.0

    def test_empty_class_yields_zero_row(self):
        rec = LatencyRecorder()
        rec.record(completed_request(0, 10.0, degree=1))
        dist = degree_distribution(rec, 80.0, 6)
        assert sum(dist["long"]) == 0.0
