"""Event loop and simulation clock.

A minimal, fast discrete-event engine: callbacks are scheduled at
absolute simulated times (milliseconds), stored in a binary heap, and
executed in time order with FIFO tie-breaking.  Cancellation is lazy —
cancelled handles stay in the heap and are skipped when popped — which
keeps scheduling O(log n) with no removal cost.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..errors import SimulationError

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """A scheduled event that can be cancelled.

    Attributes
    ----------
    time:
        Absolute simulated time (ms) the event fires at.
    cancelled:
        True once :meth:`cancel` has been called; the engine skips it.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback: Callable[[], None] | None = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        self.callback = None  # break reference cycles early

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class Engine:
    """Discrete-event loop with a millisecond clock starting at 0."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._events_run = 0

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return sum(1 for h in self._heap if not h.cancelled)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.now - 1e-9:
            raise SimulationError(
                f"cannot schedule event in the past: {time:.6f} < now={self.now:.6f}"
            )
        handle = EventHandle(max(time, self.now), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` ms of simulated time."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.now + delay, callback)

    def step(self) -> bool:
        """Run the next live event.  Returns False when the heap is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = handle.time
            callback = handle.callback
            handle.callback = None
            self._events_run += 1
            assert callback is not None
            callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run events until the heap drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        executed = 0
        while max_events is None or executed < max_events:
            if not self.step():
                break
            executed += 1
        return executed

    def run_until(self, time: float) -> None:
        """Run all events scheduled at or before ``time``, then advance
        the clock to ``time`` even if no event lands exactly there."""
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > time:
                break
            self.step()
        self.now = max(self.now, time)
