"""Target-table construction (Section 3.3, Algorithm 1).

``build_target_table`` is a faithful implementation of
BUILDTARGETTABLE: starting from an initial table whose targets are all
set to the smallest achievable value, it repeatedly bumps one entry's
target by the step size, measures the resulting weighted tail latency
with an injected ``measure_tail`` procedure, keeps the single bump that
helps most, and stops at the first iteration where no bump helps.  The
search is greedy gradient descent: at most ``m * E_max / step``
measurements instead of exhaustive search's ``(E_max / step) ** m``.

``measure_tail`` is experiment-dependent (it runs a predefined workload
across the production load range and returns a weighted sum of tail
latencies), so it is passed in as a callable; the standard search-
workload implementation lives in :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import TargetTableError
from .target_table import TargetTable

__all__ = ["build_target_table", "heuristic_target_table", "TableSearchResult"]


@dataclass(frozen=True)
class TableSearchResult:
    """Outcome of one BUILDTARGETTABLE run."""

    table: TargetTable
    tail_latency_ms: float
    iterations: int
    measurements: int
    #: (iteration, bumped_index, tail_latency) trace of accepted bumps.
    history: tuple[tuple[int, int, float], ...]


def build_target_table(
    initial_table: TargetTable,
    step_ms: float,
    measure_tail: Callable[[TargetTable], float],
    max_iterations: int = 200,
    max_target_ms: float = 1_000.0,
    measure_tail_batch: (
        Callable[[Sequence[TargetTable]], Sequence[float]] | None
    ) = None,
) -> TableSearchResult:
    """Algorithm 1: greedy gradient-descent search for target values.

    Parameters
    ----------
    initial_table:
        Table with small initial targets (e.g. the unloaded, fully
        parallelized latency — the smallest target ever achievable).
    step_ms:
        Search step size delta (the paper uses 1 ms, the smallest unit
        of its tail-latency measurements).
    measure_tail:
        Experimental procedure: runs the predefined experiment with the
        candidate table and returns the weighted tail-latency sum.
    max_iterations:
        Safety bound on while-loop iterations (the paper's bound is
        ``E_max / delta``).
    max_target_ms:
        Targets are never bumped beyond this ceiling.
    measure_tail_batch:
        Optional batched form of ``measure_tail``: given the iteration's
        candidate tables it returns their tail latencies, in order.  The
        candidates within one greedy iteration are independent, so an
        implementation backed by :mod:`repro.exec` can fan them out
        across worker processes; the greedy selection (and therefore the
        result) is bit-identical to the serial path.

    Returns
    -------
    :class:`TableSearchResult` with the final table (the first local
    minimum along the greedy path), its measured tail latency, and
    search statistics.
    """
    if step_ms <= 0:
        raise TargetTableError(f"step_ms must be > 0, got {step_ms}")
    if max_iterations < 1:
        raise TargetTableError("max_iterations must be >= 1")

    table = initial_table
    m = len(table)
    current_latency = float(measure_tail(table))
    measurements = 1
    history: list[tuple[int, int, float]] = []

    for iteration in range(max_iterations):
        best_index = -1
        best_latency = current_latency
        bumpable = [
            i for i in range(m) if table.targets[i] + step_ms <= max_target_ms
        ]
        candidates = [table.bumped(i, step_ms) for i in bumpable]
        if measure_tail_batch is not None and len(candidates) > 1:
            latencies = [float(v) for v in measure_tail_batch(candidates)]
            if len(latencies) != len(candidates):
                raise TargetTableError(
                    "measure_tail_batch returned "
                    f"{len(latencies)} values for {len(candidates)} candidates"
                )
        else:
            latencies = [float(measure_tail(c)) for c in candidates]
        measurements += len(candidates)
        for i, latency in zip(bumpable, latencies):
            if latency < best_latency - 1e-12:
                best_latency = latency
                best_index = i
        if best_index < 0:
            # No bump improves the objective: the current table is the
            # final target table (Algorithm 1 line 15).
            return TableSearchResult(
                table=table,
                tail_latency_ms=current_latency,
                iterations=iteration,
                measurements=measurements,
                history=tuple(history),
            )
        table = table.bumped(best_index, step_ms)
        current_latency = best_latency
        history.append((iteration, best_index, best_latency))

    return TableSearchResult(
        table=table,
        tail_latency_ms=current_latency,
        iterations=max_iterations,
        measurements=measurements,
        history=tuple(history),
    )


def build_target_table_multistart(
    load_grid: Sequence[float],
    initial_levels_ms: Sequence[float],
    step_ms: float,
    measure_tail: Callable[[TargetTable], float],
    max_iterations: int = 200,
    max_target_ms: float = 1_000.0,
    measure_tail_batch: (
        Callable[[Sequence[TargetTable]], Sequence[float]] | None
    ) = None,
) -> TableSearchResult:
    """Algorithm 1 restarted from several flat initial levels.

    The greedy inner search only *increases* one target at a time, so a
    coordinated shift of the whole table (e.g. flat-25 -> flat-40) is
    invisible to it: each single bump makes things worse even though
    the shifted table is better.  Restarting from a few flat levels and
    keeping the best final table crosses those valleys.  This is a
    practical extension of the paper's procedure; the inner loop is the
    published Algorithm 1 unchanged.
    """
    if not initial_levels_ms:
        raise TargetTableError("need at least one initial level")
    best: TableSearchResult | None = None
    total_measurements = 0
    for level in initial_levels_ms:
        initial = TargetTable.uniform(load_grid, level)
        result = build_target_table(
            initial,
            step_ms,
            measure_tail,
            max_iterations,
            max_target_ms,
            measure_tail_batch=measure_tail_batch,
        )
        total_measurements += result.measurements
        if best is None or result.tail_latency_ms < best.tail_latency_ms:
            best = result
    assert best is not None
    return TableSearchResult(
        table=best.table,
        tail_latency_ms=best.tail_latency_ms,
        iterations=best.iterations,
        measurements=total_measurements,
        history=best.history,
    )


def heuristic_target_table(
    load_grid: Sequence[float],
    base_target_ms: float,
    hardware_threads: int = 24,
    load_sensitivity: float = 1.0,
) -> TargetTable:
    """A closed-form table for when a full Algorithm 1 search is overkill.

    The target grows linearly with load: ``e_i = E0 * (1 + s * d_i /
    C)``.  Rationale: at load ``d_i`` equivalent active threads, only
    ``C - d_i`` hardware contexts remain, so meeting a tighter target
    would require parallelism the machine cannot supply; relaxing the
    target proportionally lets TPC reserve spare capacity for the
    longest requests — the qualitative shape Algorithm 1 converges to.
    """
    if base_target_ms <= 0:
        raise TargetTableError("base_target_ms must be > 0")
    if hardware_threads < 1:
        raise TargetTableError("hardware_threads must be >= 1")
    if load_sensitivity < 0:
        raise TargetTableError("load_sensitivity must be >= 0")
    entries = [
        (float(d), base_target_ms * (1.0 + load_sensitivity * d / hardware_threads))
        for d in load_grid
    ]
    return TargetTable(entries)
