"""Task-pool parallel execution model -> per-query speedup profiles.

The paper parallelizes a query by partitioning its index work into a
pool of tasks executed by ``d`` worker threads [20], with three
overhead sources it measures but does not decompose (Section 2.4):

* a **serial phase** (query parsing, top-k rescoring) that no thread
  count accelerates;
* **fixed parallel-orchestration cost** ``h`` (task-pool setup and
  join synchronisation), paid once whenever ``d > 1``;
* **speculative/wasted work**: a sequential run stops scanning as soon
  as the top-k stabilises, while parallel threads speculatively process
  chunks that hindsight proves unnecessary.  Short queries terminate
  early more often, so their relative waste is larger — modelled as a
  waste fraction ``w(L) = a / (1 + L / b)`` per extra thread;
* **load imbalance**: with ``n`` equal-grain tasks, ``d`` workers need
  ``ceil(n / d)`` rounds, which bites when ``n`` is small.

``T_d = serial + h + ceil(n/d)/n * parallel * (1 + w(L)(d-1)) + per-task overhead``
and ``S_d = L / T_d`` (clamped monotone, ``S_1 = 1``).

The three free parameters ``(h, a, b)`` are fitted once against the
published Figure 2 curves by :func:`fit_parallel_model`; everything
else (serial work, task grain) comes from the workload configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from ..core.speedup import SpeedupProfile
from ..errors import CalibrationError

__all__ = [
    "ParallelExecutionModel",
    "fit_parallel_model",
    "FIGURE2_TARGETS",
]

#: Published Figure 2 speedups we fit the mechanism to:
#: {representative sequential time (ms): {degree: speedup}}.
#: Long queries (mean 168 ms) reach ~4.1x on 6 threads, mid ~2.05x,
#: short ~1.16x.
FIGURE2_TARGETS: dict[float, dict[int, float]] = {
    168.0: {2: 1.8, 3: 2.5, 4: 3.2, 5: 3.7, 6: 4.1},
    50.0: {2: 1.4, 3: 1.6, 4: 1.8, 5: 1.95, 6: 2.05},
    8.0: {2: 1.05, 3: 1.09, 4: 1.12, 5: 1.14, 6: 1.16},
}


@dataclass(frozen=True)
class ParallelExecutionModel:
    """Fitted task-pool execution model (parameters in milliseconds)."""

    startup_overhead_ms: float
    waste_amplitude: float
    waste_halflife_ms: float
    task_grain_ms: float
    task_overhead_ms: float

    def waste_fraction(self, total_ms: float) -> float:
        """Per-extra-thread speculative-waste fraction ``w(L)``."""
        return self.waste_amplitude / (1.0 + total_ms / self.waste_halflife_ms)

    def parallel_time(
        self, total_ms: float, serial_ms: float, degree: int
    ) -> float:
        """Wall-clock execution time ``T_d`` at parallelism ``degree``."""
        if total_ms <= 0:
            raise CalibrationError(f"total_ms must be > 0, got {total_ms}")
        serial_ms = min(serial_ms, total_ms)
        if degree <= 1:
            return total_ms
        parallel_ms = total_ms - serial_ms
        if parallel_ms <= 0:
            return total_ms
        n_tasks = max(1, math.ceil(parallel_ms / self.task_grain_ms))
        rounds = math.ceil(n_tasks / degree)
        inflated = parallel_ms * (
            1.0 + self.waste_fraction(total_ms) * (degree - 1)
        )
        makespan = (rounds / n_tasks) * inflated + rounds * self.task_overhead_ms
        return serial_ms + self.startup_overhead_ms + makespan

    def profile(
        self, total_ms: float, serial_ms: float, max_degree: int
    ) -> SpeedupProfile:
        """Per-query speedup profile ``{S_1..S_P}``.

        Clamped monotone non-decreasing: a scheduler never *loses* by
        holding extra threads idle, so ``S_d >= S_{d-1}`` effectively.
        """
        speedups = [1.0]
        for d in range(2, max_degree + 1):
            s = total_ms / self.parallel_time(total_ms, serial_ms, d)
            speedups.append(max(s, speedups[-1]))
        return SpeedupProfile(speedups)


def fit_parallel_model(
    serial_ms: float,
    task_grain_ms: float,
    task_overhead_ms: float,
    targets: dict[float, dict[int, float]] | None = None,
) -> ParallelExecutionModel:
    """Fit ``(h, a, b)`` so the model reproduces Figure 2.

    Parameters
    ----------
    serial_ms:
        Representative serial work per query (parse + rescore).
    task_grain_ms / task_overhead_ms:
        Task-pool granularity, taken from the workload configuration.
    targets:
        ``{L_ms: {degree: speedup}}`` to fit; defaults to
        :data:`FIGURE2_TARGETS`.

    Returns the fitted :class:`ParallelExecutionModel`.
    """
    goal = targets if targets is not None else FIGURE2_TARGETS
    points = [
        (load_ms, degree, speedup)
        for load_ms, curve in goal.items()
        for degree, speedup in curve.items()
    ]
    if not points:
        raise CalibrationError("no fit targets supplied")

    def residuals(x: np.ndarray) -> np.ndarray:
        h, a, b = x
        model = ParallelExecutionModel(
            startup_overhead_ms=h,
            waste_amplitude=a,
            waste_halflife_ms=b,
            task_grain_ms=task_grain_ms,
            task_overhead_ms=task_overhead_ms,
        )
        out = []
        for load_ms, degree, target in points:
            predicted = load_ms / model.parallel_time(load_ms, serial_ms, degree)
            out.append(predicted - target)
        return np.asarray(out)

    result = least_squares(
        residuals,
        x0=np.array([0.5, 1.0, 20.0]),
        bounds=(np.array([0.0, 0.0, 1.0]), np.array([10.0, 10.0, 500.0])),
    )
    if not result.success:  # pragma: no cover - optimizer rarely fails
        raise CalibrationError(f"parallel-model fit failed: {result.message}")
    h, a, b = (float(v) for v in result.x)
    return ParallelExecutionModel(
        startup_overhead_ms=h,
        waste_amplitude=a,
        waste_halflife_ms=b,
        task_grain_ms=task_grain_ms,
        task_overhead_ms=task_overhead_ms,
    )
